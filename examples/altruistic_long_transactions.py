"""Altruistic locking for long-lived transactions (the paper's Section 5).

Reproduces the Fig. 4 wake scenario, then measures what altruism buys: a
long sweep transaction under strict 2PL blocks every short transaction until
it commits, while under altruistic locking the short ones run in its wake.

Run:  python examples/altruistic_long_transactions.py
"""

from repro.core import StructuralState, is_serializable
from repro.policies import (
    Access,
    AltruisticPolicy,
    TwoPhasePolicy,
    check_altruistic_schedule,
)
from repro.sim import Simulator, WorkloadItem, long_transaction_workload
from repro.viz import render_schedule


def fig4_walkthrough() -> None:
    print("=" * 70)
    print("Fig. 4: a transaction in another's wake")
    print("=" * 70)
    items = [
        WorkloadItem("T1", [Access(1), Access(2), Access(3)]),
        WorkloadItem("T2", [Access(1), Access(2), Access(4)]),
    ]
    init = StructuralState.of(1, 2, 3, 4)
    result = Simulator(AltruisticPolicy(), seed=7).run(items, init)
    print(render_schedule(result.schedule, ["T1", "T2"]))
    print("\nT1 donates 1 and 2 before its locked point (its lock of 3);")
    print("T2 picks them up inside the wake and must wait for entity 4")
    print("until the wake dissolves.")
    print("serializable?", is_serializable(result.schedule))
    print("AL1-AL3 violations:", check_altruistic_schedule(result.schedule) or "none")


def long_vs_short() -> None:
    print("\n" + "=" * 70)
    print("Sweep transaction + late-arriving short transactions: 2PL vs AL")
    print("=" * 70)
    print("Shorts touch the leading third of the sweep's footprint and")
    print("arrive after the sweep has passed it (start_tick > 0).\n")
    import statistics

    header = f"{'sweep length':>12} {'2PL short-latency':>18} {'AL short-latency':>17} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for n in (8, 16, 24, 32):
        means = {}
        for policy in (TwoPhasePolicy(), AltruisticPolicy()):
            lat = []
            for seed in range(8):
                items, init = long_transaction_workload(
                    n, 5, short_length=2, seed=seed,
                    region="leading", short_start=int(n * 2.5),
                )
                result = Simulator(policy, seed=seed).run(items, init)
                assert is_serializable(result.schedule)
                lat.append(statistics.fmean(
                    rec.latency
                    for name, rec in result.metrics.records.items()
                    if name != "LONG"
                ))
            means[policy.name] = statistics.fmean(lat)
        print(f"{n:>12} {means['2PL']:>18.1f} {means['Altruistic']:>17.1f} "
              f"{means['2PL'] / means['Altruistic']:>8.2f}x")
    print(
        "\nThe longer the sweep, the more altruism pays: under strict 2PL the"
        "\nlate shorts queue behind the sweep's whole lifetime, while under"
        "\naltruistic locking they run in its wake."
    )


if __name__ == "__main__":
    fig4_walkthrough()
    long_vs_short()
