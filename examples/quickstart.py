"""Quickstart: the dynamic-database model in five minutes.

Reproduces the Section 2 walk-through of the paper: proper vs improper
schedules, well-formed locked transactions, legality, serializability, and a
first taste of the safety deciders.

Run:  python examples/quickstart.py
"""

from repro import (
    Schedule,
    StructuralState,
    Transaction,
    decide_safety,
    is_serializable,
    serializability_graph,
    two_phase_locked,
)
from repro.viz import render_schedule


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Transactions over a dynamic database (Section 2's example).
    # ------------------------------------------------------------------
    t1 = Transaction.from_text("T1", "(I a) (I b) (W c) (I d)")
    t2 = Transaction.from_text("T2", "(R a) (D b) (I c)")
    print("Two plain transactions:")
    print(" ", t1)
    print(" ", t2)

    # The paper's proper interleaving, starting from the empty database:
    proper = Schedule.from_order([t1, t2], ["T1", "T1", "T2", "T2", "T2", "T1", "T1"])
    print("\nProper interleaving (every step defined when it executes):")
    print(render_schedule(proper, ["T1", "T2"]))
    print("  proper?", proper.is_proper())

    # The serial execution is NOT proper: T1 writes c before anyone inserts it.
    improper = Schedule.serial([t1, t2])
    print("\nSerial execution is improper:", improper.properness_violation())

    # ------------------------------------------------------------------
    # 2. Locked transactions: well-formedness and legality.
    # ------------------------------------------------------------------
    l1, l2 = two_phase_locked(t1), two_phase_locked(t2)
    print("\nStrict-2PL locked versions:")
    print(" ", l1)
    print(" ", l2)
    print("  well-formed?", l1.is_well_formed(), "| two-phase?", l1.is_two_phase())

    # ------------------------------------------------------------------
    # 3. Serializability via the conflict graph D(S).
    # ------------------------------------------------------------------
    schedule = Schedule.from_order(
        [l1, l2], ["T1"] * 4 + ["T2"] * 3 + ["T1"] * (len(l1) - 4) + ["T2"] * (len(l2) - 3)
    )
    print("\nAn interleaving of the locked transactions:")
    print("  legal?", schedule.is_legal(), "| proper?", schedule.is_proper())
    print("  D(S) =", serializability_graph(schedule))
    print("  serializable?", is_serializable(schedule))

    # ------------------------------------------------------------------
    # 4. Safety of the whole system, decided both ways (Theorem 1).
    # ------------------------------------------------------------------
    verdict = decide_safety([l1, l2])
    print("\nSafety of {T1, T2} under strict 2PL:")
    print("  brute force says safe:", verdict.safe_bruteforce)
    print("  canonical-schedule search says safe:", verdict.safe_canonical)
    print("  deciders agree (Theorem 1):", verdict.agree)

    # A non-two-phase variant is unsafe when a and b pre-exist:
    u1 = Transaction.from_text("U1", "(LX a) (W a) (UX a) (LX b) (W b) (UX b)")
    u2 = Transaction.from_text("U2", "(LX b) (W b) (UX b) (LX a) (W a) (UX a)")
    verdict = decide_safety([u1, u2], StructuralState.of("a", "b"))
    print("\nSafety of the early-release pair {U1, U2}:")
    print("  safe?", verdict.safe, "| deciders agree:", verdict.agree)
    if verdict.canonical_witness is not None:
        print(verdict.canonical_witness.describe())


if __name__ == "__main__":
    main()
