"""Using Theorem 1 as a working tool: verify a locking policy.

Demonstrates the full verification workflow on a *broken* policy (altruistic
locking with rule AL2 removed): the dynamic verifier finds a nonserializable
run, and the canonicalisation pipeline of Theorem 1 compresses it into a
canonical witness — a serial schedule of prefixes plus one lock step — that
a human can actually read.

Run:  python examples/policy_verifier.py
"""

from repro.core import StructuralState
from repro.policies import (
    Access,
    AltruisticPolicy,
    BrokenAltruisticPolicy,
    check_altruistic_schedule,
)
from repro.sim import WorkloadItem
from repro.verify import verify_policy, verify_system
from repro.viz import render_schedule


def factory(seed):
    items = [
        WorkloadItem("LONG", [Access("a"), Access("b"), Access("c")]),
        WorkloadItem("S", [Access("c"), Access("a")]),
    ]
    return items, StructuralState.of("a", "b", "c")


def main() -> None:
    print("=" * 70)
    print("Verifying altruistic locking (the real one)")
    print("=" * 70)
    report = verify_policy(
        AltruisticPolicy(),
        factory,
        seeds=range(60),
        auditors=[lambda r: check_altruistic_schedule(r.schedule)],
    )
    print(report.summary())

    print("\n" + "=" * 70)
    print("Verifying the broken variant (rule AL2 removed)")
    print("=" * 70)
    report = verify_policy(BrokenAltruisticPolicy(), factory, seeds=range(60))
    print(report.summary())
    if report.counterexample is not None:
        print("\nThe offending schedule:")
        print(render_schedule(report.counterexample))

    print("\n" + "=" * 70)
    print("Exact check of a fixed transaction system (both deciders)")
    print("=" * 70)
    if report.counterexample is not None:
        txns = list(report.counterexample.transactions.values())
        verdict = verify_system(txns, StructuralState.of("a", "b", "c"))
        print("brute-force safe:", verdict.safe_bruteforce)
        print("canonical safe:  ", verdict.safe_canonical)
        print("agree (Theorem 1):", verdict.agree)


if __name__ == "__main__":
    main()
