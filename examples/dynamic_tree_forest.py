"""The dynamic tree (DTR) policy and its database forest (Section 6).

Reproduces the Fig. 5 scenario: the forest grows as transactions declare
their access sets (rules DT1/DT2) and shrinks again once they commit (rule
DT3), while every transaction stays tree-locked.

Run:  python examples/dynamic_tree_forest.py
"""

from repro.core import StructuralState, is_serializable
from repro.core.transactions import Transaction
from repro.policies import Access, DtrPolicy, check_tree_locked
from repro.sim import Simulator, WorkloadItem, random_access_workload
from repro.viz import render_forest, render_schedule


def fig5_walkthrough() -> None:
    print("=" * 70)
    print("Fig. 5: the database forest under DT0-DT3")
    print("=" * 70)
    ctx = DtrPolicy().create_context()

    print("\nDT0 - initially the forest is empty:")
    print(render_forest(ctx.forest))

    s1 = ctx.begin("T1", [Access(1), Access(2), Access(3)])
    print("\nT1 accesses {1,2,3}; DT2 builds its tree (Fig. 5a):")
    print(render_forest(ctx.forest))

    s2 = ctx.begin("T2", [Access(2), Access(4)])
    print("\nT2 accesses {2,4}; DT1 adds node 4 under the root (Fig. 5b):")
    print(render_forest(ctx.forest))

    # Each session's locked transaction is precomputed and tree-locked:
    for name, session in (("T1", s1), ("T2", s2)):
        txn = Transaction(name, tuple(session._steps))
        violations = check_tree_locked(txn, ctx.plan_parents[name])
        print(f"\n{name} locked transaction: {txn}")
        print(f"  tree-locked? {'yes' if not violations else violations}")

    # Run T2 to completion; DT3 then deletes node 4.
    while s2.peek() is not None:
        s2.executed()
    s2.on_commit()
    print("\nT2 commits; DT3 deletes node 4 (T1 stays tree-locked in G(4)):")
    print(render_forest(ctx.forest))
    while s1.peek() is not None:
        s1.executed()
    s1.on_commit()
    print("\nT1 commits; the forest cleans up entirely:")
    print(render_forest(ctx.forest))
    print("\ndeletion log:", ctx.delete_log)


def concurrent_run() -> None:
    print("\n" + "=" * 70)
    print("Concurrent DTR run over random access sets")
    print("=" * 70)
    items, init = random_access_workload(8, 6, 3, seed=11)
    result = Simulator(DtrPolicy(), seed=11).run(items, init)
    print(render_schedule(result.schedule))
    m = result.metrics
    print(f"\ncommitted={len(result.committed)} ticks={m.ticks} "
          f"mean concurrency={m.mean_active:.2f}")
    print("serializable?", is_serializable(result.schedule))
    print("forest after the run:", render_forest(result.context.forest))


if __name__ == "__main__":
    fig5_walkthrough()
    concurrent_run()
