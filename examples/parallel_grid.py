"""Parallel experiment grids: fan a policy × workload × seed grid out
over worker processes.

The paper's claims are comparative, so reproduction quality is bounded by
how many (policy, workload, seed) cells the harness can afford.  A
:class:`~repro.sim.GridSpec` names the cells declaratively — policy
constructors and registered workload factory names, never live objects —
and :func:`~repro.sim.run_grid` executes every seed-run over a
multiprocessing pool, streaming per-seed summaries back to the parent.
``workers=0`` is the in-process reference path: identical rows, one
process.

Run:  python examples/parallel_grid.py
"""

import time

from repro.policies import AltruisticPolicy, DdagPolicy, TwoPhasePolicy
from repro.sim import GridSpec, PolicySpec, WorkloadSpec, format_table, run_grid


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Declare the grid: 2PL vs DDAG on traversals, 2PL vs altruistic
    #    on the long-transaction scenario (pairs, not a cross product —
    #    each comparison has its own natural workload).
    # ------------------------------------------------------------------
    two_pl = PolicySpec(TwoPhasePolicy)
    traversals = WorkloadSpec(
        "traversal", {"nodes": 10, "edge_prob": 0.25, "num_txns": 6,
                      "walk_length": 5},
    )
    long_sweep = WorkloadSpec(
        "long_transaction",
        {"num_entities": 24, "num_short": 5, "short_length": 2,
         "region": "leading", "short_start": 60},
        label="long-sweep",
    )
    spec = GridSpec(
        pairs=(
            (PolicySpec(DdagPolicy), traversals),
            (two_pl, traversals),
            (PolicySpec(AltruisticPolicy), long_sweep),
            (two_pl, long_sweep),
        ),
        seeds=tuple(range(8)),
    )

    # ------------------------------------------------------------------
    # 2. Run it twice: in-process reference, then a 2-worker pool.  The
    #    rows must be identical — parallelism changes wall-clock only.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    serial = run_grid(spec, workers=0)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_grid(
        spec, workers=2,
        progress=lambda cell: print(f"  done: {cell.policy} × {cell.workload}"),
    )
    parallel_s = time.perf_counter() - start

    assert serial == parallel, "worker count must not change the results"

    print()
    print(format_table(
        [c.row() for c in serial],
        ["policy", "workload", "runs", "failures", "serializable",
         "ticks", "mean_latency", "wait_fraction"],
    ))
    print(f"\nserial: {serial_s:.2f}s   2 workers: {parallel_s:.2f}s   "
          f"(identical rows either way)")


if __name__ == "__main__":
    main()
