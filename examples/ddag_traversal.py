"""DDAG policy on a knowledge-base-style graph (the paper's Section 4).

Walks through the Fig. 3 scenario — two traversal transactions crabbing down
a rooted DAG, one of which inserts the edge (2, 4) and forces the other to
abort under rule L5 — then runs a batch of concurrent traversals with node
insertions and verifies every recorded schedule.

Run:  python examples/ddag_traversal.py
"""

from repro.core import is_serializable
from repro.graphs import random_rooted_dag
from repro.policies import Access, DdagPolicy, InsertEdge, Unlock, check_ddag_schedule
from repro.sim import (
    Simulator,
    WorkloadItem,
    dag_structural_state,
    dynamic_traversal_workload,
    fig3_dag,
    fig3_workload,
)
from repro.sim.workloads import ddag_restart_from_cone
from repro.viz import render_dag, render_schedule


def fig3_walkthrough() -> None:
    print("=" * 70)
    print("Fig. 3: DDAG walk-through (graph 1->2->3->4->5)")
    print("=" * 70)
    dag = fig3_dag()
    print(render_dag(dag))

    # Plain scenario: T1 locks 2,3,4, unlocks as it goes; T2 follows 3->4.
    items, init = fig3_workload()
    result = Simulator(
        DdagPolicy(auto_release=False), seed=0, context_kwargs={"dag": fig3_dag()}
    ).run(items, init)
    print("\nWithout the edge insert, both commit:", result.committed)
    print(render_schedule(result.schedule, ["T1", "T2"]))
    print("serializable?", is_serializable(result.schedule))
    print("rule violations:", check_ddag_schedule(result.schedule, fig3_dag()) or "none")

    # With the edge insert (2,4): T2's lock of 4 now needs 2 (rule L5).
    t1 = [Access(2), Access(3), Access(4), Unlock(3), InsertEdge(2, 4),
          Unlock(4), Unlock(2)]
    t2 = [Access(3), Access(4)]
    items = [
        WorkloadItem("T1", t1),
        WorkloadItem("T2", t2, restart=ddag_restart_from_cone([3, 4])),
    ]
    for seed in range(40):
        result = Simulator(
            DdagPolicy(auto_release=False), seed=seed,
            context_kwargs={"dag": fig3_dag()},
        ).run(items, dag_structural_state(fig3_dag()))
        if result.metrics.aborted:
            print(
                f"\nWith the (2,4) edge insert, seed {seed}: T2 hit rule L5, "
                f"aborted {result.metrics.aborted} time(s), restarted from the "
                f"dominator cone, and the run still commits {result.committed}."
            )
            print("serializable?", is_serializable(result.schedule))
            break


def concurrent_batch() -> None:
    print("\n" + "=" * 70)
    print("Concurrent dynamic traversals on a random rooted DAG")
    print("=" * 70)
    dag = random_rooted_dag(12, 0.25, seed=42)
    print(render_dag(dag))
    items, init = dynamic_traversal_workload(dag, num_txns=6, walk_length=4,
                                             insert_prob=0.5, seed=42)
    result = Simulator(
        DdagPolicy(), seed=42, context_kwargs={"dag": dag.snapshot()}
    ).run(items, init)
    m = result.metrics
    print(f"\ncommitted={len(result.committed)}  aborts={m.aborted} "
          f"deadlocks={m.deadlocks}  ticks={m.ticks} "
          f"mean concurrency={m.mean_active:.2f}")
    print("serializable?", is_serializable(result.schedule))
    if not result.aborted:
        print("L1-L5 violations:", check_ddag_schedule(result.schedule, dag) or "none")


if __name__ == "__main__":
    fig3_walkthrough()
    concurrent_batch()
