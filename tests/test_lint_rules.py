"""The ``repro.lint`` static-analysis subsystem: rule fixtures, the
suppression/baseline machinery, the CLI surface, and the fixture-injection
guard the CI lint job relies on."""

import json
import os
import shutil

import pytest

from repro.analysis import analyze_file, analyze_paths, load_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.core import all_rules
from repro.analysis.engine import module_name_for

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(HERE)
FIXTURES = os.path.join(HERE, "lint_fixtures")

RULE_CODES = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006")


def fixture(name):
    return os.path.join(FIXTURES, name)


def codes_in(path):
    return {f.code for f in analyze_file(path)}


class TestRuleFixtures:
    """Each rule has one fixture that triggers it and one that does not."""

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_positive_fixture_triggers_exactly_its_rule(self, code):
        found = codes_in(fixture(f"{code.lower()}_bad.py"))
        assert found == {code}

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_negative_fixture_is_clean(self, code):
        assert analyze_file(fixture(f"{code.lower()}_good.py")) == []

    def test_rpr001_covers_all_four_hazards(self):
        messages = " | ".join(
            f.message for f in analyze_file(fixture("rpr001_bad.py"))
        )
        assert "iteration over a set" in messages
        assert "random.choice" in messages
        assert "wall-clock read" in messages
        assert "id()" in messages

    def test_rpr006_covers_reads_writes_and_mutators(self, tmp_path):
        path = tmp_path / "frag.py"
        path.write_text(
            "# repro-lint-module: repro.sim.frag\n"
            "def shard_phase(fn):\n"
            "    fn.__shard_phase__ = True\n"
            "    return fn\n"
            "@shard_phase\n"
            "def phase(run, names, buf):\n"
            "    n = run.metrics.ticks          # global read\n"
            "    run.cache.runnable.add(n)      # global mutator\n"
            "    run.live['x'] = 1              # non-buffer assignment\n"
            "    local = []\n"
            "    local.append(n)                # local mutation: sanctioned\n"
            "    buf.decisions.append(n)        # buffer write: sanctioned\n"
        )
        messages = [f.message for f in analyze_file(str(path))]
        assert all("phase" in m for m in messages)
        assert any("'.metrics'" in m for m in messages)
        assert any("mutator" in m for m in messages)
        assert any("assigns" in m for m in messages)
        assert not any("local" in m and "sanctioned" in m for m in messages)

    def test_rpr006_ignores_undecorated_functions(self, tmp_path):
        path = tmp_path / "frag.py"
        path.write_text(
            "# repro-lint-module: repro.sim.frag\n"
            "def apply_all(run, names):\n"
            "    for n in names:\n"
            "        run.cache.runnable.add(n)\n"
        )
        assert analyze_file(str(path)) == []

    def test_rpr006_in_tree_shard_phases_are_clean(self):
        path = os.path.join(REPO_ROOT, "src", "repro", "sim", "executor.py")
        assert codes_in(path) == set()

    def test_registry_has_exactly_the_documented_rules(self):
        assert set(all_rules()) == set(RULE_CODES)


class TestSuppressions:
    def _write(self, tmp_path, text):
        path = tmp_path / "frag.py"
        path.write_text(text)
        return str(path)

    def test_noqa_with_reason_suppresses(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-lint-module: repro.sim.frag\n"
            "S = {1, 2}\n"
            "OUT = [x for x in S]  # repro: noqa[RPR001] order never observed\n",
        )
        assert analyze_file(path) == []

    def test_noqa_without_reason_is_rpr000(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-lint-module: repro.sim.frag\n"
            "S = {1, 2}\n"
            "OUT = [x for x in S]  # repro: noqa[RPR001]\n",
        )
        assert {f.code for f in analyze_file(path)} == {"RPR000"}

    def test_noqa_for_other_code_does_not_suppress(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-lint-module: repro.sim.frag\n"
            "S = {1, 2}\n"
            "OUT = [x for x in S]  # repro: noqa[RPR005] wrong code entirely\n",
        )
        assert "RPR001" in {f.code for f in analyze_file(path)}

    def test_syntax_error_reports_rpr000_instead_of_crashing(self, tmp_path):
        path = self._write(tmp_path, "def broken(:\n")
        findings = analyze_file(path)
        assert [f.code for f in findings] == ["RPR000"]
        assert "does not parse" in findings[0].message


class TestModuleNames:
    def test_derived_from_src_layout(self):
        assert (
            module_name_for("src/repro/sim/scheduler.py", []) == "repro.sim.scheduler"
        )
        assert module_name_for("src/repro/sim/__init__.py", []) == "repro.sim"

    def test_override_comment_wins(self):
        lines = ["# repro-lint-module: repro.policies.synthetic"]
        assert module_name_for("anywhere/at/all.py", lines) == "repro.policies.synthetic"


class TestBaseline:
    def test_baseline_grandfathers_then_new_findings_fail(self, tmp_path):
        src = tmp_path / "tree"
        src.mkdir()
        shutil.copy(fixture("rpr005_bad.py"), src / "rpr005_bad.py")
        baseline = tmp_path / "baseline.json"

        assert lint_main(
            [str(src), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert len(load_baseline(str(baseline))) == 1
        assert lint_main([str(src), "--baseline", str(baseline)]) == 0

        shutil.copy(fixture("rpr003_bad.py"), src / "rpr003_bad.py")
        assert lint_main([str(src), "--baseline", str(baseline)]) == 1

    def test_committed_baseline_has_no_sim_or_policies_entries(self):
        fps = load_baseline(os.path.join(REPO_ROOT, "lint_baseline.json"))
        offenders = [
            fp for fp in fps if "/sim/" in fp or "/policies/" in fp
        ]
        assert offenders == []


class TestCli:
    def test_clean_tree_exits_zero(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src"]) == 0

    def test_json_format_shape(self, capsys):
        rc = lint_main(
            [fixture("rpr003_bad.py"), "--format", "json", "--no-baseline"]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["counts"] == {"RPR003": 1}
        (finding,) = doc["findings"]
        assert finding["code"] == "RPR003"
        assert finding["line"] == 4

    def test_select_filters_rules(self, capsys):
        rc = lint_main(
            [fixture("rpr001_bad.py"), "--select", "RPR003", "--no-baseline"]
        )
        assert rc == 0

    def test_unknown_select_is_usage_error(self, capsys):
        assert lint_main([fixture("rpr001_bad.py"), "--select", "RPR999"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_CODES:
            assert code in out


class TestInjectionGuard:
    """The CI lint job's smoke test in miniature: dropping a known-bad
    fixture into an otherwise-clean tree must fail the gate (guards
    against the linter silently passing everything)."""

    def test_injected_violation_fails_a_clean_tree(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "clean.py").write_text(
            '"""A clean module."""\n\nVALUE = sorted({1, 2, 3})\n'
        )
        assert lint_main([str(tmp_path / "src"), "--no-baseline"]) == 0

        shutil.copy(fixture("rpr001_bad.py"), tree / "injected.py")
        assert lint_main([str(tmp_path / "src"), "--no-baseline"]) == 1
        findings, _ = analyze_paths([str(tmp_path / "src")])
        assert {f.code for f in findings} == {"RPR001"}
