"""The ``repro.lint`` static-analysis subsystem: rule fixtures, the
suppression/baseline machinery, the CLI surface, and the fixture-injection
guard the CI lint job relies on."""

import glob
import json
import os
import re
import shutil

import pytest

from repro.analysis import analyze_file, analyze_paths, load_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.core import all_rules
from repro.analysis.engine import module_name_for

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(HERE)
FIXTURES = os.path.join(HERE, "lint_fixtures")

RULE_CODES = (
    "RPR001",
    "RPR002",
    "RPR003",
    "RPR004",
    "RPR005",
    "RPR006",
    "RPR007",
    "RPR008",
    "RPR009",
)

#: Auto-discovered fixture pairs: every ``rprNNN_bad.py`` in the corpus,
#: as its rule code.  New rules cannot ship without honest fixtures —
#: the discovery test below cross-checks this set against the registry.
DISCOVERED_CODES = tuple(
    sorted(
        m.group(1).upper()
        for p in glob.glob(os.path.join(FIXTURES, "rpr*_bad.py"))
        for m in [re.match(r"(rpr\d+)_bad\.py$", os.path.basename(p))]
        if m
    )
)


def fixture(name):
    return os.path.join(FIXTURES, name)


def codes_in(path):
    return {f.code for f in analyze_file(path)}


class TestRuleFixtures:
    """Each rule has one fixture that triggers it and one that does not.

    The pairs are auto-discovered from ``tests/lint_fixtures/`` so a new
    rule's fixtures are exercised the moment they land — and a rule
    *without* fixtures fails the registry cross-check."""

    def test_every_registered_rule_has_a_fixture_pair(self):
        assert DISCOVERED_CODES == tuple(sorted(all_rules()))
        for code in DISCOVERED_CODES:
            assert os.path.exists(fixture(f"{code.lower()}_good.py")), (
                f"{code} has a _bad fixture but no _good twin"
            )

    @pytest.mark.parametrize("code", DISCOVERED_CODES)
    def test_positive_fixture_triggers_exactly_its_rule(self, code):
        found = codes_in(fixture(f"{code.lower()}_bad.py"))
        assert found == {code}

    @pytest.mark.parametrize("code", DISCOVERED_CODES)
    def test_negative_fixture_is_clean(self, code):
        assert analyze_file(fixture(f"{code.lower()}_good.py")) == []

    def test_rpr001_covers_all_four_hazards(self):
        messages = " | ".join(
            f.message for f in analyze_file(fixture("rpr001_bad.py"))
        )
        assert "iteration over a set" in messages
        assert "random.choice" in messages
        assert "wall-clock read" in messages
        assert "id()" in messages

    def test_rpr004_covers_the_process_executor_seam(self):
        """The spawn-safety rule extends past grid specs to the process
        executor's worker protocol: Process targets and shipped payloads
        (send/send_bytes/submit/dumps) must be module-level picklable."""
        messages = [
            f.message for f in analyze_file(fixture("rpr004_bad.py"))
        ]
        joined = " | ".join(messages)
        assert "Process target" in joined
        assert "'local_loop'" in joined
        assert "'LocalDelta'" in joined
        assert "dumps() payload" in joined
        assert "send() payload" in joined
        assert "submit() payload" in joined

    def test_rpr004_in_tree_executor_seam_is_clean(self):
        """The real process executor ships module-level payloads only —
        the extended rule must not flag it (nor the asyncio service's
        dict-literal ``conn.send`` frames)."""
        for rel in (
            ("src", "repro", "sim", "executor.py"),
            ("src", "repro", "service", "server.py"),
        ):
            path = os.path.join(REPO_ROOT, *rel)
            if os.path.exists(path):
                findings = [
                    f for f in analyze_file(path) if f.code == "RPR004"
                ]
                assert findings == [], f"{path}: {findings}"

    def test_rpr006_covers_reads_writes_and_mutators(self, tmp_path):
        path = tmp_path / "frag.py"
        path.write_text(
            "# repro-lint-module: repro.sim.frag\n"
            "def shard_phase(fn):\n"
            "    fn.__shard_phase__ = True\n"
            "    return fn\n"
            "@shard_phase\n"
            "def phase(run, names, buf):\n"
            "    n = run.metrics.ticks          # global read\n"
            "    run.cache.runnable.add(n)      # global mutator\n"
            "    run.live['x'] = 1              # non-buffer assignment\n"
            "    local = []\n"
            "    local.append(n)                # local mutation: sanctioned\n"
            "    buf.decisions.append(n)        # buffer write: sanctioned\n"
        )
        messages = [f.message for f in analyze_file(str(path))]
        assert all("phase" in m for m in messages)
        assert any("'.metrics'" in m for m in messages)
        assert any("mutator" in m for m in messages)
        assert any("assigns" in m for m in messages)
        assert not any("local" in m and "sanctioned" in m for m in messages)

    def test_rpr006_ignores_undecorated_functions(self, tmp_path):
        path = tmp_path / "frag.py"
        path.write_text(
            "# repro-lint-module: repro.sim.frag\n"
            "def apply_all(run, names):\n"
            "    for n in names:\n"
            "        run.cache.runnable.add(n)\n"
        )
        assert analyze_file(str(path)) == []

    def test_rpr006_in_tree_shard_phases_are_clean(self):
        path = os.path.join(REPO_ROOT, "src", "repro", "sim", "executor.py")
        assert codes_in(path) == set()

    def test_registry_has_exactly_the_documented_rules(self):
        assert set(all_rules()) == set(RULE_CODES)


class TestProjectRules:
    """The whole-program rules (RPR007-RPR009): cross-module resolution,
    the exact hole RPR006 cannot see, and in-tree cleanliness."""

    SHARD_PHASE_DEF = (
        "def shard_phase(fn):\n"
        "    fn.__shard_phase__ = True\n"
        "    return fn\n"
    )

    def test_rpr007_sees_transitive_impurity_across_modules(self, tmp_path):
        """A pure-looking @shard_phase wrapper calling an impure helper
        in ANOTHER module: invisible to RPR006, caught by RPR007."""
        tree = tmp_path / "src" / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "helpers.py").write_text(
            "def bump_totals(stats, name):\n"
            "    stats.seen.append(name)\n"
        )
        (tree / "worker.py").write_text(
            "from .helpers import bump_totals\n"
            + self.SHARD_PHASE_DEF
            + "@shard_phase\n"
            "def classify_slice(live, names, stats, buf):\n"
            "    for name in names:\n"
            "        bump_totals(stats, name)\n"
            "        buf.decisions.append(live[name])\n"
            "    return buf\n"
        )
        findings, _ = analyze_paths([str(tmp_path / "src")])
        assert {f.code for f in findings} == {"RPR007"}
        (finding,) = findings
        assert finding.path.endswith("worker.py")  # anchored at the root
        assert "bump_totals" in finding.message

    def test_rpr006_alone_misses_the_transitive_hole(self, tmp_path):
        """The motivating gap: the same wrapper is clean under the
        one-body-deep file rules."""
        path = tmp_path / "worker.py"
        path.write_text(
            "# repro-lint-module: repro.sim.worker\n"
            + self.SHARD_PHASE_DEF
            + "def bump_totals(stats, name):\n"
            "    stats.seen.append(name)\n"
            "@shard_phase\n"
            "def classify_slice(names, stats, buf):\n"
            "    for name in names:\n"
            "        bump_totals(stats, name)\n"
        )
        findings, _ = analyze_paths([str(path)], select=["RPR006"])
        assert findings == []
        findings, _ = analyze_paths([str(path)], select=["RPR007"])
        assert {f.code for f in findings} == {"RPR007"}

    def test_rpr007_suppressible_at_the_root_def_line(self, tmp_path):
        path = tmp_path / "worker.py"
        path.write_text(
            "# repro-lint-module: repro.sim.worker\n"
            + self.SHARD_PHASE_DEF
            + "def bump_totals(stats, name):\n"
            "    stats.seen.append(name)\n"
            "@shard_phase\n"
            "def classify_slice(names, stats, buf):  # repro: noqa[RPR007] stats is a worker-local scratchpad\n"
            "    for name in names:\n"
            "        bump_totals(stats, name)\n"
        )
        findings, _ = analyze_paths([str(path)])
        assert findings == []

    def test_rpr008_flags_both_racing_sites(self):
        findings = analyze_file(fixture("rpr008_bad.py"))
        assert [f.code for f in findings] == ["RPR008", "RPR008"]
        lines = {f.line for f in findings}
        assert len(lines) == 2  # one finding per racing write site
        assert all("tally" in f.message for f in findings)

    def test_rpr008_part_routed_writes_do_not_race(self):
        assert analyze_file(fixture("rpr008_good.py")) == []

    def test_rpr009_points_at_the_stray_mutation_site(self):
        (finding,) = analyze_file(fixture("rpr009_bad.py"))
        assert finding.code == "RPR009"
        assert "cache.runnable" in finding.message
        with open(fixture("rpr009_bad.py")) as fh:
            line_text = fh.read().splitlines()[finding.line - 1]
        assert "runnable.add" in line_text

    def test_in_tree_executor_and_scheduler_are_clean(self):
        """The acceptance bar: the real worker/coordinator split passes
        the whole-program rules with zero findings (not baselined)."""
        sim = os.path.join(REPO_ROOT, "src", "repro", "sim")
        findings, _ = analyze_paths(
            [sim], select=["RPR007", "RPR008", "RPR009"]
        )
        assert findings == []


class TestSuppressions:
    def _write(self, tmp_path, text):
        path = tmp_path / "frag.py"
        path.write_text(text)
        return str(path)

    def test_noqa_with_reason_suppresses(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-lint-module: repro.sim.frag\n"
            "S = {1, 2}\n"
            "OUT = [x for x in S]  # repro: noqa[RPR001] order never observed\n",
        )
        assert analyze_file(path) == []

    def test_noqa_without_reason_is_rpr000(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-lint-module: repro.sim.frag\n"
            "S = {1, 2}\n"
            "OUT = [x for x in S]  # repro: noqa[RPR001]\n",
        )
        assert {f.code for f in analyze_file(path)} == {"RPR000"}

    def test_noqa_for_other_code_does_not_suppress(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-lint-module: repro.sim.frag\n"
            "S = {1, 2}\n"
            "OUT = [x for x in S]  # repro: noqa[RPR005] wrong code entirely\n",
        )
        assert "RPR001" in {f.code for f in analyze_file(path)}

    def test_syntax_error_reports_rpr000_instead_of_crashing(self, tmp_path):
        path = self._write(tmp_path, "def broken(:\n")
        findings = analyze_file(path)
        assert [f.code for f in findings] == ["RPR000"]
        assert "does not parse" in findings[0].message


class TestModuleNames:
    def test_derived_from_src_layout(self):
        assert (
            module_name_for("src/repro/sim/scheduler.py", []) == "repro.sim.scheduler"
        )
        assert module_name_for("src/repro/sim/__init__.py", []) == "repro.sim"

    def test_override_comment_wins(self):
        lines = ["# repro-lint-module: repro.policies.synthetic"]
        assert module_name_for("anywhere/at/all.py", lines) == "repro.policies.synthetic"


class TestBaseline:
    def test_baseline_grandfathers_then_new_findings_fail(self, tmp_path):
        src = tmp_path / "tree"
        src.mkdir()
        shutil.copy(fixture("rpr005_bad.py"), src / "rpr005_bad.py")
        baseline = tmp_path / "baseline.json"

        assert lint_main(
            [str(src), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert len(load_baseline(str(baseline))) == 1
        assert lint_main([str(src), "--baseline", str(baseline)]) == 0

        shutil.copy(fixture("rpr003_bad.py"), src / "rpr003_bad.py")
        assert lint_main([str(src), "--baseline", str(baseline)]) == 1

    def test_committed_baseline_has_no_sim_or_policies_entries(self):
        fps = load_baseline(os.path.join(REPO_ROOT, "lint_baseline.json"))
        offenders = [
            fp for fp in fps if "/sim/" in fp or "/policies/" in fp
        ]
        assert offenders == []

    def test_selective_write_baseline_keeps_unselected_entries(self, tmp_path):
        """The --write-baseline --select round trip: snapshotting one
        rule must not discard the other rules' grandfathered entries."""
        src = tmp_path / "tree"
        src.mkdir()
        shutil.copy(fixture("rpr005_bad.py"), src / "rpr005_bad.py")
        shutil.copy(fixture("rpr003_bad.py"), src / "rpr003_bad.py")
        baseline = tmp_path / "baseline.json"

        # Full snapshot grandfathers both rules.
        assert lint_main(
            [str(src), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        full = load_baseline(str(baseline))
        assert {fp.split(":", 1)[0] for fp in full} == {"RPR003", "RPR005"}

        # A selective rewrite of RPR005 must carry the RPR003 entry over.
        assert lint_main(
            [
                str(src),
                "--baseline",
                str(baseline),
                "--write-baseline",
                "--select",
                "RPR005",
            ]
        ) == 0
        assert load_baseline(str(baseline)) == full
        assert lint_main([str(src), "--baseline", str(baseline)]) == 0

        # ... and dropping the RPR005 violation then re-snapshotting
        # RPR005 selectively burns down only RPR005's entries.
        (src / "rpr005_bad.py").unlink()
        assert lint_main(
            [
                str(src),
                "--baseline",
                str(baseline),
                "--write-baseline",
                "--select",
                "RPR005",
            ]
        ) == 0
        remaining = load_baseline(str(baseline))
        assert {fp.split(":", 1)[0] for fp in remaining} == {"RPR003"}
        assert lint_main([str(src), "--baseline", str(baseline)]) == 0


class TestCli:
    def test_clean_tree_exits_zero(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src"]) == 0

    def test_json_format_shape(self, capsys):
        rc = lint_main(
            [fixture("rpr003_bad.py"), "--format", "json", "--no-baseline"]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["counts"] == {"RPR003": 1}
        (finding,) = doc["findings"]
        assert finding["code"] == "RPR003"
        assert finding["line"] == 4

    def test_select_filters_rules(self, capsys):
        rc = lint_main(
            [fixture("rpr001_bad.py"), "--select", "RPR003", "--no-baseline"]
        )
        assert rc == 0

    def test_unknown_select_is_usage_error(self, capsys):
        assert lint_main([fixture("rpr001_bad.py"), "--select", "RPR999"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_CODES:
            assert code in out

    def test_github_format_emits_error_annotations(self, capsys):
        rc = lint_main(
            [fixture("rpr003_bad.py"), "--format", "github", "--no-baseline"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        lines = out.splitlines()
        annotations = [l for l in lines if l.startswith("::error ")]
        assert len(annotations) == 1
        (ann,) = annotations
        assert "file=" in ann and ",line=4," in ann
        assert "title=RPR003" in ann
        assert "::" in ann.split("title=RPR003", 1)[1]
        assert lines[-1] == "1 finding(s)"

    def test_github_format_escapes_message_newlines_and_percent(self):
        from repro.analysis.cli import render_github
        from repro.analysis.core import Finding

        f = Finding(
            code="RPR001",
            path="src/x.py",
            line=3,
            col=1,
            message="bad 100%\nsecond line",
        )
        rendered = render_github(f)
        assert "\n" not in rendered
        assert "%25" in rendered and "%0A" in rendered

    def test_github_format_clean_tree_exits_zero(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src", "--format", "github"]) == 0
        out = capsys.readouterr().out
        assert not any(l.startswith("::error") for l in out.splitlines())


class TestInjectionGuard:
    """The CI lint job's smoke test in miniature: dropping a known-bad
    fixture into an otherwise-clean tree must fail the gate (guards
    against the linter silently passing everything)."""

    def test_injected_violation_fails_a_clean_tree(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "clean.py").write_text(
            '"""A clean module."""\n\nVALUE = sorted({1, 2, 3})\n'
        )
        assert lint_main([str(tmp_path / "src"), "--no-baseline"]) == 0

        shutil.copy(fixture("rpr001_bad.py"), tree / "injected.py")
        assert lint_main([str(tmp_path / "src"), "--no-baseline"]) == 1
        findings, _ = analyze_paths([str(tmp_path / "src")])
        assert {f.code for f in findings} == {"RPR001"}

    def test_injected_transitive_impurity_fails_a_clean_tree(self, tmp_path):
        """The CI smoke's second planting: a pure-looking @shard_phase
        wrapper in one module calling an impure helper in another."""
        tree = tmp_path / "src" / "repro" / "sim"
        tree.mkdir(parents=True)
        (tree / "clean.py").write_text(
            '"""A clean module."""\n\nVALUE = sorted({1, 2, 3})\n'
        )
        assert lint_main([str(tmp_path / "src"), "--no-baseline"]) == 0

        (tree / "impure_helper.py").write_text(
            "def bump_totals(stats, name):\n"
            "    stats.seen.append(name)\n"
        )
        (tree / "pure_wrapper.py").write_text(
            "from .impure_helper import bump_totals\n"
            "def shard_phase(fn):\n"
            "    fn.__shard_phase__ = True\n"
            "    return fn\n"
            "@shard_phase\n"
            "def classify_slice(live, names, stats, buf):\n"
            "    for name in names:\n"
            "        bump_totals(stats, name)\n"
            "        buf.decisions.append(live[name])\n"
            "    return buf\n"
        )
        assert lint_main([str(tmp_path / "src"), "--no-baseline"]) == 1
        findings, _ = analyze_paths([str(tmp_path / "src")])
        assert {f.code for f in findings} == {"RPR007"}
