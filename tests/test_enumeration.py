"""Tests for schedule enumeration and the random-system generators."""

import pytest

from repro import Schedule, StructuralState, Transaction
from repro.enumeration import (
    corpus_initial_state,
    count_schedules,
    enumerate_schedules,
    fig2_proper_schedule,
    fig2_system,
    lock_wrap,
    random_data_steps,
    random_locked_system,
    random_schedule,
)
from repro.exceptions import SearchBudgetExceeded

import math
import random


class TestEnumeration:
    def test_counts_match_interleaving_formula_without_filters(self):
        # Two disjoint transactions of lengths 3 and 3: C(6,3) = 20 orders.
        t1 = Transaction.from_text("T1", "(LX a) (I a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX b) (I b) (UX b)")
        n = count_schedules([t1, t2], legal_only=False, proper_only=False)
        assert n == math.comb(6, 3)

    def test_legality_prunes(self, simple_locked_pair):
        free = count_schedules(simple_locked_pair, legal_only=False, proper_only=False)
        legal = count_schedules(simple_locked_pair, legal_only=True, proper_only=False)
        assert legal < free

    def test_enumerate_yields_valid_schedules(self, simple_locked_pair):
        for s in enumerate_schedules(simple_locked_pair):
            assert s.is_complete
            assert s.is_legal()
            assert s.is_proper()

    def test_enumerate_limit(self, simple_locked_pair):
        out = list(enumerate_schedules(simple_locked_pair, limit=1))
        assert len(out) == 1

    def test_budget_guard(self):
        txns = [
            Transaction.from_text(f"T{i}", f"(LX e{i}) (I e{i}) (UX e{i})")
            for i in range(7)
        ]
        with pytest.raises(SearchBudgetExceeded):
            count_schedules(txns, budget=100)

    def test_random_schedule_valid(self, simple_locked_pair):
        s = random_schedule(simple_locked_pair, seed=5)
        assert s is not None
        assert s.is_complete and s.is_legal() and s.is_proper()

    def test_random_schedule_none_when_impossible(self):
        t = Transaction.from_text("T", "(LX z) (W z) (UX z)")
        assert random_schedule([t], seed=0) is None


class TestGenerators:
    def test_lock_wrap_well_formed_all_styles(self):
        rng = random.Random(1)
        for style in ("2pl", "early", "chaotic"):
            for seed in range(10):
                rng = random.Random(seed)
                data = random_data_steps(["a", "b", "c"], 4, rng)
                txn = lock_wrap("T", data, style, rng)
                assert txn.is_well_formed(), (style, seed, str(txn))
                assert txn.locks_entity_at_most_once()
                assert txn.unlocked_projection().steps == tuple(data)

    def test_2pl_style_is_two_phase(self):
        rng = random.Random(2)
        data = random_data_steps(["a", "b"], 4, rng)
        assert lock_wrap("T", data, "2pl", rng).is_two_phase()

    def test_random_locked_system_deterministic(self):
        a = random_locked_system(2, 2, 3, style="mixed", seed=7)
        b = random_locked_system(2, 2, 3, style="mixed", seed=7)
        assert [str(t) for t in a] == [str(t) for t in b]

    def test_corpus_initial_state(self):
        assert corpus_initial_state(3).entities == frozenset({"a", "b", "c"})


class TestFig2System:
    def test_sp_is_legal_proper_nonserializable(self, fig2_sp):
        from repro import is_serializable

        assert fig2_sp.is_legal()
        assert fig2_sp.is_proper()
        assert not is_serializable(fig2_sp)

    def test_transactions_well_formed(self, fig2_txns):
        for t in fig2_txns:
            assert t.is_well_formed()
            assert t.locks_entity_at_most_once()
            assert not t.is_two_phase()  # condition 1 material

    def test_no_proper_pair_schedules(self, fig2_txns):
        # Every two-transaction subsystem is improper from the empty DB.
        for i in range(3):
            for j in range(3):
                if i == j:
                    continue
                pair = [fig2_txns[i], fig2_txns[j]]
                assert count_schedules(pair, legal_only=True, proper_only=True) == 0
