"""Tests for canonical witnesses and the Theorem-1 witness search."""

import pytest

from repro import (
    CanonicalWitness,
    LockMode,
    StructuralState,
    find_canonical_witness,
    is_serializable,
)
from repro.core.canonical import WitnessSearchStats

#: The non-two-phase pair operates on pre-existing entities a and b.
AB = StructuralState.of("a", "b")


@pytest.fixture
def unsafe_pair(nontwophase_pair):
    return nontwophase_pair


class TestWitnessChecking:
    def _witness(self, txns, c, entity, lengths, mode=LockMode.EXCLUSIVE):
        return CanonicalWitness(
            transactions=tuple(txns),
            c_index=c,
            entity=entity,
            lock_mode=mode,
            prefix_lengths=lengths,
        )

    def test_valid_witness_for_classic_cycle(self, unsafe_pair):
        t1, t2 = unsafe_pair
        # The Only-If construction's witness: T_c = T1 with prefix
        # (LX a)(W a)(UX a), pending (LX b); T2 runs in full (its unlock of b
        # makes it the unique conflicting sink).  S' = T1' then T2.
        witness = self._witness([t1, t2], 0, "b", {"T1": 3, "T2": 6})
        assert witness.problems(AB) == []
        assert witness.is_valid(AB)

    def test_tc_must_not_be_sink(self, unsafe_pair):
        t1, t2 = unsafe_pair
        # With T2's prefix stopping before it touches entity a, the prefixes
        # share no entity, so T'_c is (also) a sink: invalid.
        witness = self._witness([t2, t1], 1, "b", {"T2": 3, "T1": 3})
        problems = witness.problems(AB)
        assert any("sink" in p for p in problems)

    def test_condition1_rejects_two_phase_tc(self, simple_locked_pair):
        t1, t2 = simple_locked_pair
        witness = self._witness([t2, t1], 1, "a", {"T2": 3, "T1": 0})
        problems = witness.problems()
        assert problems  # T1 never unlocked before locking a

    def test_condition2a_rejects_nonunlocking_sink(self, unsafe_pair):
        t1, t2 = unsafe_pair
        # T2 prefix of length 5 locks a but never unlocks b... prefix of
        # length 2 holds b without unlocking: the sink check must fire.
        witness = self._witness([t1, t2], 0, "b", {"T1": 3, "T2": 2})
        problems = witness.problems(AB)
        assert any("2a" in p or "sink" in p for p in problems)

    def test_wrong_entity_rejected(self, unsafe_pair):
        t1, t2 = unsafe_pair
        witness = self._witness([t1, t2], 0, "zzz", {"T1": 3, "T2": 6})
        assert witness.problems(AB)

    def test_k_greater_than_one_required(self, unsafe_pair):
        t1, _ = unsafe_pair
        witness = self._witness([t1], 0, "b", {"T1": 3})
        assert any("k > 1" in p for p in witness.problems(AB))

    def test_realize_produces_nonserializable_completion(self, unsafe_pair):
        t1, t2 = unsafe_pair
        witness = self._witness([t1, t2], 0, "b", {"T1": 3, "T2": 6})
        schedule = witness.realize(AB)
        assert schedule.is_complete and schedule.is_legal()
        assert schedule.is_proper(AB)
        assert not is_serializable(schedule)

    def test_describe_mentions_tc_and_graph(self, unsafe_pair):
        t1, t2 = unsafe_pair
        witness = self._witness([t1, t2], 0, "b", {"T1": 3, "T2": 6})
        text = witness.describe()
        assert "T_c = T1" in text and "D(S')" in text

    def test_lock_step_accessor(self, unsafe_pair):
        t1, t2 = unsafe_pair
        witness = self._witness([t1, t2], 0, "b", {"T1": 3, "T2": 6})
        step = witness.lock_step()
        assert step.is_lock and step.entity == "b"


class TestWitnessSearch:
    def test_finds_witness_for_unsafe_pair(self, unsafe_pair):
        witness = find_canonical_witness(unsafe_pair, AB)
        assert witness is not None
        assert witness.is_valid(AB)
        assert witness.satisfies_exclusive_variant()

    def test_no_witness_for_two_phase_system(self, simple_locked_pair):
        assert find_canonical_witness(simple_locked_pair) is None

    def test_no_witness_when_properness_blocks_cycle(self, unsafe_pair):
        # From the empty database the pair cannot execute any data step, so
        # the system is (vacuously) safe and no witness may be reported.
        assert find_canonical_witness(unsafe_pair, StructuralState.empty()) is None

    def test_finds_witness_for_fig2(self, fig2_txns):
        witness = find_canonical_witness(fig2_txns)
        assert witness is not None and witness.is_valid()
        # Fig 2's point: the witness involves all three transactions —
        # no two-transaction subsystem has any proper schedule.
        assert len(witness.transactions) == 3

    def test_stats_populated(self, unsafe_pair):
        stats = WitnessSearchStats()
        find_canonical_witness(unsafe_pair, AB, stats=stats)
        assert stats.candidates_considered > 0

    def test_max_partners_bound(self, fig2_txns):
        # Fig 2 needs k = 3; with partners capped at 1 no witness exists.
        assert find_canonical_witness(fig2_txns, max_partners=1) is None
