"""Property-based tests (hypothesis) for the core invariants.

These are the empirical counterparts of the paper's lemmas:

* Lemma 1 — transposing adjacent non-conflicting steps of different
  transactions preserves legality, properness, and ``D(S)``.
* Lemma 2 — ``move(S, S', T')`` with ``T'`` a sink of ``D(S')`` preserves
  legality, properness, and ``D(S)``.
* 2PL safety — every legal proper schedule of two-phase transactions is
  serializable (the condition-1 shortcut of Theorem 1).
* Generator soundness — ``lock_wrap`` always yields well-formed, lock-once
  transactions whose data projection is the input.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Schedule,
    StructuralState,
    is_serializable,
    move,
    serializability_graph,
    transpose,
)
from repro.core.serializability import is_serializable_by_definition
from repro.enumeration import (
    corpus_initial_state,
    lock_wrap,
    random_data_steps,
    random_locked_system,
    random_schedule,
)

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _system(seed: int, style: str, num_txns: int = 2):
    return random_locked_system(
        num_txns=num_txns, num_entities=3, steps_per_txn=3, style=style, seed=seed
    )


def _sample_schedule(seed: int, style: str, num_txns: int = 2):
    txns = _system(seed, style, num_txns)
    initial = corpus_initial_state(3)
    schedule = random_schedule(txns, initial, seed=seed)
    return schedule, initial


@given(seed=st.integers(0, 10_000), style=st.sampled_from(["2pl", "early", "chaotic"]))
@_SETTINGS
def test_lemma1_transpose_preserves_everything(seed, style):
    schedule, initial = _sample_schedule(seed, style)
    if schedule is None:
        return
    g = serializability_graph(schedule)
    for pos in range(len(schedule) - 1):
        a, b = schedule.events[pos], schedule.events[pos + 1]
        if a.txn == b.txn or a.conflicts_with(b):
            continue
        swapped = transpose(schedule, pos)
        assert swapped.is_legal()
        assert swapped.is_proper(initial)
        assert serializability_graph(swapped).edges == g.edges


@given(seed=st.integers(0, 10_000), style=st.sampled_from(["early", "chaotic"]))
@_SETTINGS
def test_lemma2_move_preserves_everything(seed, style):
    schedule, initial = _sample_schedule(seed, style, num_txns=3)
    if schedule is None:
        return
    g = serializability_graph(schedule)
    for prefix_len in range(1, len(schedule) + 1):
        prefix_graph = serializability_graph(schedule.prefix(prefix_len))
        for sink in prefix_graph.sinks():
            moved = move(schedule, prefix_len, sink)
            assert moved.is_legal(), f"prefix {prefix_len}, sink {sink}"
            assert moved.is_proper(initial)
            assert serializability_graph(moved).edges == g.edges
        break  # one prefix per example keeps runtime sane


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_two_phase_schedules_always_serializable(seed):
    schedule, _ = _sample_schedule(seed, "2pl", num_txns=3)
    if schedule is None:
        return
    assert is_serializable(schedule)


@given(seed=st.integers(0, 10_000), style=st.sampled_from(["2pl", "early", "chaotic"]))
@_SETTINGS
def test_graph_serializability_matches_definition(seed, style):
    schedule, _ = _sample_schedule(seed, style)
    if schedule is None:
        return
    assert is_serializable(schedule) == is_serializable_by_definition(schedule)


@given(
    seed=st.integers(0, 10_000),
    style=st.sampled_from(["2pl", "early", "chaotic"]),
    length=st.integers(1, 6),
    shared=st.booleans(),
)
@_SETTINGS
def test_lock_wrap_always_well_formed(seed, style, length, shared):
    rng = random.Random(seed)
    data = random_data_steps(["a", "b", "c"], length, rng)
    txn = lock_wrap("T", data, style, rng, use_shared=shared)
    assert txn.is_well_formed()
    assert txn.locks_entity_at_most_once()
    assert txn.unlocked_projection().steps == tuple(data)
    if style == "2pl":
        assert txn.is_two_phase()


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_random_schedules_respect_filters(seed):
    txns = _system(seed, "chaotic", num_txns=3)
    initial = corpus_initial_state(3)
    schedule = random_schedule(txns, initial, seed=seed)
    if schedule is None:
        return
    assert schedule.is_complete
    assert schedule.is_legal()
    assert schedule.is_proper(initial)


@given(seed=st.integers(0, 10_000))
@_SETTINGS
def test_structural_state_insert_delete_alternate(seed):
    """Properness forces INSERT/DELETE alternation per entity, so the final
    structural state depends only on the multiset of executed steps."""
    schedule, initial = _sample_schedule(seed, "chaotic")
    if schedule is None:
        return
    state = initial
    present = {e: (e in initial) for e in ("a", "b", "c")}
    for event in schedule.events:
        step = event.step
        if step.op.requires_absent:
            assert not present.get(step.entity, False)
            present[step.entity] = True
        elif step.op.is_structural:
            assert present.get(step.entity, False)
            present[step.entity] = False
        state = state.apply(step)
    assert {e for e, p in present.items() if p} == set(state.entities)
