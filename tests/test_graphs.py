"""Tests for the graph substrate, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.graphs import (
    DiGraph,
    Forest,
    RootedDag,
    chain,
    diamond,
    dominates,
    dominator_sets,
    immediate_dominators,
    layered_dag,
    random_rooted_dag,
    random_subdag_walk,
    random_tree,
)


class TestDiGraph:
    def test_add_remove_nodes_edges(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert g.nodes() == {1, 2, 3}
        assert g.has_edge(1, 2)
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        g.remove_node(2)
        assert g.nodes() == {1, 3}

    def test_remove_missing_edge_raises(self):
        g = DiGraph(edges=[(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(2, 1)

    def test_degrees_roots_leaves(self):
        g = DiGraph(edges=[(1, 2), (1, 3), (3, 4)])
        assert g.out_degree(1) == 2 and g.in_degree(4) == 1
        assert g.roots() == {1}
        assert g.leaves() == {2, 4}

    def test_reachability(self):
        g = DiGraph(edges=[(1, 2), (2, 3), (4, 3)])
        assert g.reachable_from(1) == {1, 2, 3}
        assert g.reaching(3) == {1, 2, 3, 4}
        assert g.has_path(1, 3) and not g.has_path(3, 1)

    def test_acyclicity(self):
        assert DiGraph(edges=[(1, 2), (2, 3)]).is_acyclic()
        assert not DiGraph(edges=[(1, 2), (2, 1)]).is_acyclic()

    def test_topological_order_agrees_with_networkx(self):
        edges = [(1, 2), (1, 3), (2, 4), (3, 4), (4, 5)]
        g = DiGraph(edges=edges)
        order = g.topological_order()
        nxg = nx.DiGraph(edges)
        pos = {n: i for i, n in enumerate(order)}
        for u, v in nxg.edges:
            assert pos[u] < pos[v]

    def test_copy_independent(self):
        g = DiGraph(edges=[(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert not g.has_edge(2, 3)


class TestDominators:
    @pytest.mark.parametrize("seed", range(5))
    def test_dominator_sets_match_networkx(self, seed):
        dag = random_rooted_dag(10, 0.3, seed=seed)
        doms = dominator_sets(dag.graph, dag.root)
        nxg = nx.DiGraph(list(dag.edges()))
        nxg.add_nodes_from(dag.nodes())
        idom = nx.immediate_dominators(nxg, dag.root)

        def nx_dom_set(node):
            out = {node}
            while node != dag.root:
                node = idom[node]
                out.add(node)
            return out

        for node in dag.nodes():
            assert doms[node] == nx_dom_set(node), f"node {node}"

    def test_root_dominates_everything(self):
        dag = diamond()
        for node in dag.nodes():
            assert dag.root in dominator_sets(dag.graph, dag.root)[node]

    def test_dominates_definitional(self):
        dag = diamond()  # 1 -> {2,3} -> 4
        assert dominates(dag.graph, 1, 1, [2, 3, 4])
        assert not dominates(dag.graph, 1, 2, [4])  # path 1-3-4 avoids 2
        assert dominates(dag.graph, 1, 4, [4])

    def test_immediate_dominators(self):
        dag = diamond()
        idom = immediate_dominators(dag.graph, 1)
        assert idom[1] is None
        assert idom[4] == 1  # both paths merge at the root


class TestRootedDag:
    def test_invariants_enforced(self):
        with pytest.raises(ValueError, match="cycle"):
            RootedDag(1, [(1, 2), (2, 1)])
        with pytest.raises(ValueError, match="unreachable|predecessors"):
            RootedDag(1, [(2, 3)])

    def test_mutations(self):
        dag = chain(3)  # 1->2->3
        dag.insert_node(4, parents=[3])
        assert 4 in dag
        dag.insert_edge(1, 4)
        assert dag.graph.has_edge(1, 4)
        dag.delete_edge(1, 4)
        dag.delete_node(4)
        assert 4 not in dag

    def test_cycle_inserting_edge_rejected(self):
        dag = chain(3)
        with pytest.raises(ValueError, match="cycle"):
            dag.insert_edge(3, 1)

    def test_cannot_delete_root(self):
        with pytest.raises(ValueError):
            chain(2).delete_node(1)

    def test_ancestor_descendant_queries(self):
        dag = diamond()
        assert dag.is_ancestor(1, 4)
        assert dag.descendants(2) == {2, 4}
        assert dag.ancestors(4) == {1, 2, 3, 4}
        assert dag.between(1, 4) == {1, 2, 3, 4}

    def test_snapshot_isolation(self):
        dag = chain(3)
        snap = dag.snapshot()
        dag.insert_node(9, parents=[3])
        assert 9 not in snap


class TestForest:
    def test_build_and_query(self):
        f = Forest()
        f.add_root(1)
        f.add_child(1, 2)
        f.add_child(1, 3)
        assert f.roots() == {1}
        assert f.parent(2) == 1 and f.parent(1) is None
        assert f.children(1) == {2, 3}
        assert f.path_from_root(2) == [1, 2]
        assert f.is_ancestor(1, 3)
        assert f.descendants(1) == {1, 2, 3}

    def test_join(self):
        f = Forest()
        f.add_root(1)
        f.add_root(10)
        f.add_child(10, 11)
        f.join(1, 10)
        assert f.roots() == {1}
        assert f.root_of(11) == 1

    def test_join_nonroot_rejected(self):
        f = Forest()
        f.add_root(1)
        f.add_child(1, 2)
        f.add_root(3)
        with pytest.raises(ValueError):
            f.join(3, 2)

    def test_delete_promotes_children(self):
        f = Forest()
        f.add_root(1)
        f.add_child(1, 2)
        f.add_child(2, 3)
        f.delete_node(2)
        assert f.roots() == {1, 3}
        assert f.parent(3) is None

    def test_without_is_nondestructive(self):
        f = Forest()
        f.add_root(1)
        f.add_child(1, 2)
        g = f.without(2)
        assert 2 in f and 2 not in g


class TestGenerators:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_rooted_dag_invariants(self, seed):
        dag = random_rooted_dag(12, 0.3, seed=seed)
        assert dag.invariant_violation() is None

    def test_random_tree_every_node_one_parent(self):
        dag = random_tree(10, seed=3)
        for node in dag.nodes():
            if node != dag.root:
                assert len(dag.predecessors(node)) == 1

    def test_layered_dag_shape(self):
        dag = layered_dag([1, 3, 4], density=0.5, seed=1)
        assert dag.invariant_violation() is None
        assert len(dag.nodes()) == 8

    def test_layered_dag_requires_single_root_layer(self):
        with pytest.raises(ValueError):
            layered_dag([2, 3])

    def test_subdag_walk_respects_l5_shape(self):
        dag = random_rooted_dag(10, 0.4, seed=7)
        walk = random_subdag_walk(dag, dag.root, 6, seed=7)
        visited = set()
        for node in walk:
            if visited:
                assert all(p in visited for p in dag.predecessors(node))
            visited.add(node)

    def test_determinism(self):
        a = random_rooted_dag(10, 0.3, seed=5)
        b = random_rooted_dag(10, 0.3, seed=5)
        assert a.edges() == b.edges()
