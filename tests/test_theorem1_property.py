"""Property-based validation of Theorem 1 itself.

Two independent deciders — exhaustive schedule search and canonical-witness
search — must agree on every randomly generated system, in both directions:

* *only if*: whenever brute force finds a nonserializable legal proper
  schedule, the canonicalisation pipeline (the constructive Only-If proof)
  turns it into a witness satisfying all of the theorem's conditions;
* *if*: whenever a canonical witness exists, realising it yields a complete
  legal proper nonserializable schedule.

Systems are kept tiny (2 transactions x 3 steps, 3 entities) so the
exhaustive side stays tractable; the style mix guarantees both verdicts
occur in the corpus.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import canonicalize, find_canonical_witness, is_serializable
from repro.core.safety import find_nonserializable_schedule
from repro.enumeration import corpus_initial_state, random_locked_system

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_INITIAL = corpus_initial_state(3)


def _system(seed: int, style: str):
    return random_locked_system(
        num_txns=2, num_entities=3, steps_per_txn=3, style=style, seed=seed
    )


@given(seed=st.integers(0, 100_000), style=st.sampled_from(["early", "chaotic", "mixed"]))
@_SETTINGS
def test_theorem1_deciders_agree(seed, style):
    txns = _system(seed, style)
    schedule = find_nonserializable_schedule(txns, _INITIAL, budget=400_000)
    witness = find_canonical_witness(txns, _INITIAL, budget=400_000)
    assert (schedule is None) == (witness is None), (
        f"deciders disagree on seed={seed} style={style}: "
        f"bruteforce={'unsafe' if schedule else 'safe'}, "
        f"canonical={'unsafe' if witness else 'safe'}"
    )


@given(seed=st.integers(0, 100_000), style=st.sampled_from(["early", "chaotic"]))
@_SETTINGS
def test_only_if_direction_constructive(seed, style):
    """Brute-force counterexample -> canonicalisation -> valid witness."""
    txns = _system(seed, style)
    schedule = find_nonserializable_schedule(txns, _INITIAL, budget=400_000)
    if schedule is None:
        return
    assert schedule.is_legal() and schedule.is_proper(_INITIAL)
    assert not is_serializable(schedule)
    witness = canonicalize(schedule)
    problems = witness.problems(_INITIAL)
    assert problems == [], f"seed={seed}: {problems}\n{witness.describe()}"


@given(seed=st.integers(0, 100_000), style=st.sampled_from(["early", "chaotic"]))
@_SETTINGS
def test_if_direction_constructive(seed, style):
    """Canonical witness -> realisation -> nonserializable schedule."""
    txns = _system(seed, style)
    witness = find_canonical_witness(txns, _INITIAL, budget=400_000)
    if witness is None:
        return
    realized = witness.realize(_INITIAL)
    assert realized.is_legal()
    assert realized.is_proper(_INITIAL)
    assert realized.is_complete
    assert not is_serializable(realized)


@given(seed=st.integers(0, 100_000))
@_SETTINGS
def test_exclusive_only_witnesses_have_unique_sink(seed):
    """Section 3.3: with only exclusive locks, D(S') of a canonical witness
    has a unique sink which unlocks A*."""
    txns = _system(seed, "chaotic")  # exclusive-only by default
    witness = find_canonical_witness(txns, _INITIAL, budget=400_000)
    if witness is None:
        return
    assert witness.satisfies_exclusive_variant(), witness.describe()


@given(seed=st.integers(0, 100_000))
@_SETTINGS
def test_two_phase_systems_never_have_witnesses(seed):
    txns = _system(seed, "2pl")
    assert find_canonical_witness(txns, _INITIAL, budget=400_000) is None
    assert find_nonserializable_schedule(txns, _INITIAL, budget=400_000) is None
