"""Equivalence of the event-driven scheduler against the naive reference.

The naive engine (re-classify every live session every tick) is the
executable specification; the event-driven engine must reproduce its
behaviour *exactly* on the same seed — identical schedules, identical
commit/abort outcomes, identical metric summaries and per-transaction
records — while performing strictly less classification work on
blocking-heavy workloads.
"""

import pytest

from repro.core import LockMode, StructuralState
from repro.exceptions import SimulationError
from repro.graphs import random_rooted_dag
from repro.policies import (
    AltruisticPolicy,
    BrokenAltruisticPolicy,
    DdagPolicy,
    DtrPolicy,
    FreeForAllPolicy,
    TwoPhasePolicy,
)
from repro.sim import (
    LockTable,
    Simulator,
    deadlock_storm_workload,
    dynamic_traversal_workload,
    fig3_dag,
    fig3_workload,
    long_transaction_workload,
    random_access_workload,
    stress_workload,
    traversal_workload,
)

SEEDS = range(4)


def both_engines(policy_factory, items, initial, seed, context_kwargs=None):
    """Run the same workload under both engines; each gets a fresh policy
    object and RNG so the seed streams are independent and identical."""
    out = {}
    for engine in ("naive", "event"):
        sim = Simulator(
            policy_factory(),
            seed=seed,
            engine=engine,
            context_kwargs=dict(context_kwargs or {}),
        )
        try:
            out[engine] = ("ok", sim.run(items, initial, validate=False))
        except SimulationError as exc:
            out[engine] = ("error", str(exc))
    return out["naive"], out["event"]


def assert_equivalent(policy_factory, workload_factory, context_kwargs_factory=None,
                      seeds=SEEDS):
    for seed in seeds:
        items, initial = workload_factory(seed)
        kwargs = context_kwargs_factory(seed) if context_kwargs_factory else {}
        (nk, naive), (ek, event) = both_engines(
            policy_factory, items, initial, seed, kwargs
        )
        assert nk == ek, f"seed {seed}: outcomes diverge ({nk} vs {ek})"
        if nk == "error":
            assert naive == event, f"seed {seed}: error messages diverge"
            continue
        assert naive.schedule.events == event.schedule.events, (
            f"seed {seed}: schedules diverge"
        )
        assert naive.committed == event.committed
        assert naive.aborted == event.aborted
        assert naive.metrics.summary() == event.metrics.summary(), (
            f"seed {seed}: metric summaries diverge"
        )
        assert naive.metrics.deadlock_victims == event.metrics.deadlock_victims, (
            f"seed {seed}: deadlock victim sequences diverge"
        )
        for name, rn in naive.metrics.records.items():
            re_ = event.metrics.records[name]
            assert (
                rn.start_tick, rn.end_tick, rn.committed, rn.restarts,
                rn.steps_executed, rn.blocked_ticks,
            ) == (
                re_.start_tick, re_.end_tick, re_.committed, re_.restarts,
                re_.steps_executed, re_.blocked_ticks,
            ), f"seed {seed}: record for {name} diverges"


class TestEquivalence:
    def test_two_phase_long_transactions(self):
        assert_equivalent(
            TwoPhasePolicy,
            lambda s: long_transaction_workload(8, 4, seed=s, short_start=10),
        )

    def test_two_phase_shared_locks(self):
        assert_equivalent(
            lambda: TwoPhasePolicy(use_shared_locks=True),
            lambda s: random_access_workload(6, 5, seed=s),
        )

    def test_two_phase_conservative(self):
        assert_equivalent(
            lambda: TwoPhasePolicy(conservative=True),
            lambda s: random_access_workload(5, 5, seed=s),
        )

    def test_two_phase_deadlock_heavy(self):
        # Unordered access sets on a tiny hot entity space: deadlock cycles
        # and victim aborts every few ticks, exercising the full-revalidation
        # path and restart bookkeeping.
        assert_equivalent(
            TwoPhasePolicy,
            lambda s: random_access_workload(4, 6, accesses_per_txn=3, seed=s),
            seeds=range(8),
        )

    def test_altruistic_long_transactions(self):
        assert_equivalent(
            AltruisticPolicy,
            lambda s: long_transaction_workload(
                10, 4, seed=s, region="leading", short_start=12
            ),
        )

    def test_broken_altruistic(self):
        assert_equivalent(
            BrokenAltruisticPolicy,
            lambda s: long_transaction_workload(8, 4, seed=s),
        )

    def test_dtr_random_access(self):
        assert_equivalent(
            DtrPolicy, lambda s: random_access_workload(8, 5, seed=s)
        )

    def test_free_for_all(self):
        assert_equivalent(
            FreeForAllPolicy, lambda s: random_access_workload(4, 5, seed=s)
        )

    def test_ddag_traversals(self):
        assert_equivalent(
            DdagPolicy,
            lambda s: traversal_workload(
                random_rooted_dag(8, 0.3, seed=s), 5, 4, seed=s
            ),
            lambda s: {"dag": random_rooted_dag(8, 0.3, seed=s).snapshot()},
        )

    def test_ddag_dynamic_traversals(self):
        # Structural churn: L5 aborts, replans, tombstones.
        assert_equivalent(
            DdagPolicy,
            lambda s: dynamic_traversal_workload(
                random_rooted_dag(8, 0.3, seed=s), 5, 4, seed=s
            ),
            lambda s: {"dag": random_rooted_dag(8, 0.3, seed=s).snapshot()},
        )

    def test_ddag_staggered_dynamic_traversals(self):
        # Open-system arrivals over a contended graph: blocked traversals
        # pile up with cached (dependency-declared) classifications while
        # concurrent inserts mutate the graph under them.
        assert_equivalent(
            DdagPolicy,
            lambda s: dynamic_traversal_workload(
                random_rooted_dag(15, 0.15, seed=s), 40, 3,
                insert_prob=0.4, seed=s, arrival_rate=0.4,
            ),
            lambda s: {"dag": random_rooted_dag(15, 0.15, seed=s).snapshot()},
            seeds=range(3),
        )

    def test_altruistic_contended_stress(self):
        # Overloaded arrivals on a small entity space: wake constraints,
        # policy-wait/lock-wait flips, deadlock victims, restarts — the
        # invalidation protocol's gnarliest paths.
        assert_equivalent(
            AltruisticPolicy,
            lambda s: stress_workload(
                25, 50, arrival_rate=0.3, hot_fraction=0.1, seed=s
            ),
            seeds=range(3),
        )

    def test_ddag_fig3(self):
        assert_equivalent(
            DdagPolicy,
            lambda s: fig3_workload(),
            lambda s: {"dag": fig3_dag()},
        )

    def test_stress_workload_small(self):
        assert_equivalent(
            TwoPhasePolicy,
            lambda s: stress_workload(30, 60, seed=s),
            seeds=range(2),
        )


class TestDeadlockStormEquivalence:
    """Deadlock-heavy seeded runs: most ticks go down the no-runnable path,
    so cycle detection runs on the maintained waits-for graph every few
    ticks — schedules, summaries, per-transaction records, deadlock counts
    (inside the summaries), and victim sequences must match the naive
    engine's fresh-rebuild-per-tick reference exactly."""

    def test_two_phase_storm(self):
        assert_equivalent(
            TwoPhasePolicy,
            lambda s: deadlock_storm_workload(
                40, 60, accesses_per_txn=3, arrival_rate=0.6,
                hot_set_size=5, hot_traffic=0.8, seed=s,
            ),
            seeds=range(5),
        )

    def test_two_phase_storm_shared_locks(self):
        # Shared modes are where the grantability-filtered wake-ups bite:
        # a release can weaken an entity's holder set without unblocking
        # its EXCLUSIVE waiters, whose waits-for edges must be refreshed
        # in place rather than via a (now absent) wake-up.
        assert_equivalent(
            lambda: TwoPhasePolicy(use_shared_locks=True),
            lambda s: deadlock_storm_workload(
                20, 40, accesses_per_txn=3, arrival_rate=0.8,
                hot_set_size=4, hot_traffic=0.8, seed=s,
            ),
            seeds=range(5),
        )

    def test_altruistic_storm(self):
        # Policy-wait and lock-wait edges mix in the detected cycles.
        assert_equivalent(
            AltruisticPolicy,
            lambda s: deadlock_storm_workload(
                30, 40, accesses_per_txn=2, arrival_rate=0.4,
                hot_set_size=5, hot_traffic=0.6, seed=s,
            ),
            seeds=range(4),
        )

    def test_storms_actually_storm(self):
        # The family must breed cycles, or the equivalence above is hollow.
        items, initial = deadlock_storm_workload(
            40, 60, accesses_per_txn=3, arrival_rate=0.6,
            hot_set_size=5, hot_traffic=0.8, seed=0,
        )
        result = Simulator(TwoPhasePolicy(), seed=0).run(
            items, initial, validate=False
        )
        m = result.metrics
        assert m.deadlocks > 0
        assert len(m.deadlock_victims) == m.deadlocks
        assert all(v.startswith("T") for v in m.deadlock_victims)

    def test_all_hot_traffic_with_tiny_hot_set_terminates(self):
        # hot_traffic=1.0 with fewer hot entities than accesses_per_txn
        # used to spin the distinct-pick loop forever; the target is now
        # bounded by the reachable pool.
        items, _ = deadlock_storm_workload(
            50, 5, accesses_per_txn=3, hot_set_size=2, hot_traffic=1.0,
            seed=0,
        )
        assert all(len(item.intents) == 2 for item in items)

    def test_unordered_and_hot_set_shape(self):
        items, _ = deadlock_storm_workload(
            50, 200, accesses_per_txn=3, hot_set_size=5, hot_traffic=1.0,
            arrival_rate=2.0, seed=3,
        )
        assert len(items) == 200
        assert items[-1].start_tick == int(199 / 2.0)
        # hot_traffic=1.0 confines every access to the hot set...
        hot = {f"e{i}" for i in range(5)}
        assert all(i.entity in hot for item in items for i in item.intents)
        # ...and access sets stay in draw order, not global entity order.
        assert any(
            [int(i.entity[1:]) for i in item.intents]
            != sorted(int(i.entity[1:]) for i in item.intents)
            for item in items
        )


class TestEventEngineWins:
    def test_fewer_classifications_on_blocking_workload(self):
        """The event engine must do strictly less classification work than
        the naive rescan whenever sessions sit blocked."""
        items, initial = stress_workload(60, 120, seed=1)
        results = {}
        for engine in ("naive", "event"):
            results[engine] = Simulator(
                TwoPhasePolicy(), seed=1, engine=engine
            ).run(items, initial)
        naive_m, event_m = results["naive"].metrics, results["event"].metrics
        assert results["naive"].schedule.events == results["event"].schedule.events
        assert event_m.classify_checks < naive_m.classify_checks / 5, (
            f"expected a big classification saving, got "
            f"{event_m.classify_checks} vs {naive_m.classify_checks}"
        )
        assert event_m.blocker_queries < naive_m.blocker_queries
        assert event_m.wakeups > 0

    def test_dynamic_policy_fewer_checks_via_invalidation(self):
        """Dynamic (dependency-declaring) sessions must no longer force the
        per-tick rescan: on a blocking-heavy altruistic workload the event
        engine performs a fraction of the naive engine's classification and
        admission work while reproducing it exactly."""
        items, initial = stress_workload(
            300, 120, arrival_rate=0.085, hot_fraction=0.0, seed=2
        )
        results = {}
        for engine in ("naive", "event"):
            results[engine] = Simulator(
                AltruisticPolicy(), seed=2, engine=engine
            ).run(items, initial, validate=False)
        naive_m = results["naive"].metrics
        event_m = results["event"].metrics
        assert results["naive"].schedule.events == results["event"].schedule.events
        naive_work = naive_m.classify_checks + naive_m.admission_checks
        event_work = event_m.classify_checks + event_m.admission_checks
        assert event_work * 3 < naive_work, (
            f"expected a big dynamic-policy saving, got "
            f"{event_work} vs {naive_work}"
        )

    def test_no_runnable_ticks_do_not_rescan_live(self):
        """Deadlock storms: most ticks hit the no-runnable path, which used
        to re-classify every live session as a safety net.  With the
        always-fresh waits-for graph the event engine's classification work
        must stay a small fraction of the naive rescan even here."""
        items, initial = deadlock_storm_workload(
            100, 200, accesses_per_txn=2, arrival_rate=0.5,
            hot_set_size=6, hot_traffic=0.7, seed=1,
        )
        results = {}
        for engine in ("naive", "event"):
            results[engine] = Simulator(
                TwoPhasePolicy(), seed=1, engine=engine, max_ticks=500_000
            ).run(items, initial, validate=False)
        naive_m = results["naive"].metrics
        event_m = results["event"].metrics
        assert results["naive"].schedule.events == results["event"].schedule.events
        assert naive_m.deadlocks > 0, "the storm must actually deadlock"
        assert event_m.classify_checks * 5 < naive_m.classify_checks, (
            f"expected >=5x fewer classifications on a deadlock-heavy run, "
            f"got {event_m.classify_checks} vs {naive_m.classify_checks}"
        )

    def test_waits_for_indexes_drain(self):
        """After a deadlock-heavy run completes, both sides of the waits-for
        graph (forward edges and the reverse blocker index) must be empty —
        every block/wake/commit/abort kept them in sync."""
        from repro.sim.scheduler import _Run

        items, initial = deadlock_storm_workload(
            30, 40, accesses_per_txn=2, arrival_rate=0.5,
            hot_set_size=4, hot_traffic=0.8, seed=2,
        )
        run = _Run(Simulator(TwoPhasePolicy(), seed=2), items)
        run.execute()
        assert run.metrics.deadlocks > 0
        assert run.waits_for == {}
        assert run.blocked_by == {}
        assert run.watchers == {}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator(TwoPhasePolicy(), engine="psychic")


class TestWaitQueues:
    def test_release_returns_wake_set(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T2", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T3", "a", LockMode.SHARED)
        assert t.waiters_of("a") == ["T2", "T3"]
        woken = t.release("T1", "a", LockMode.EXCLUSIVE)
        assert woken == ["T2", "T3"]

    def test_release_of_unheld_mode_wakes_nobody(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T2", "a", LockMode.EXCLUSIVE)
        assert t.release("T1", "a", LockMode.SHARED) == []

    def test_partial_upgrade_release_wakes_nobody(self):
        # Dropping the SHARED half of an upgrade leaves the EXCLUSIVE grant
        # in place: nothing a waiter could be granted on changed, so no
        # spurious wake-up (and no wasted re-classification downstream).
        t = LockTable()
        t.acquire("T1", "a", LockMode.SHARED)
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T2", "a", LockMode.SHARED)
        assert t.release("T1", "a", LockMode.SHARED) == []
        # Downgrading EXCLUSIVE -> SHARED is a real weakening: wake.
        t.acquire("T1", "a", LockMode.SHARED)
        assert t.release("T1", "a", LockMode.EXCLUSIVE) == ["T2"]

    def test_still_conflicting_waiter_not_woken(self):
        # T1's departure weakens the holder set, but the EXCLUSIVE waiter
        # still conflicts with T2's SHARED hold: waking it was a pure
        # wasted re-classification.
        t = LockTable()
        t.acquire("T1", "a", LockMode.SHARED)
        t.acquire("T2", "a", LockMode.SHARED)
        t.add_waiter("T3", "a", LockMode.EXCLUSIVE)
        assert t.release("T1", "a", LockMode.SHARED) == []
        assert t.release("T2", "a", LockMode.SHARED) == ["T3"]

    def test_downgrade_wakes_only_compatible_waiters(self):
        # EXCLUSIVE→SHARED downgrade: the SHARED waiter becomes grantable,
        # the EXCLUSIVE waiter still conflicts and stays asleep.
        t = LockTable()
        t.acquire("T1", "a", LockMode.SHARED)
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T2", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T3", "a", LockMode.SHARED)
        assert t.release("T1", "a", LockMode.EXCLUSIVE) == ["T3"]

    def test_release_all_wake_filters_by_grantability(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.SHARED)
        t.acquire("T2", "a", LockMode.SHARED)
        t.acquire("T1", "b", LockMode.EXCLUSIVE)
        t.add_waiter("T3", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T4", "b", LockMode.EXCLUSIVE)
        _, woken = t.release_all_wake("T1")
        # T3 still conflicts with T2 on "a"; only T4 can actually go.
        assert woken == ["T4"]

    def test_would_weaken_mirrors_release(self):
        t = LockTable()
        assert not t.would_weaken("T1", "a", LockMode.SHARED)
        t.acquire("T1", "a", LockMode.SHARED)
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        # Dropping the SHARED half of the upgrade changes nothing...
        assert not t.would_weaken("T1", "a", LockMode.SHARED)
        # ...dropping the EXCLUSIVE half is a real downgrade.
        assert t.would_weaken("T1", "a", LockMode.EXCLUSIVE)
        t.release("T1", "a", LockMode.EXCLUSIVE)
        assert t.would_weaken("T1", "a", LockMode.SHARED)
        assert not t.would_weaken("T1", "a", LockMode.EXCLUSIVE)

    def test_waiter_modes_reports_requests(self):
        t = LockTable()
        t.add_waiter("T2", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T3", "a", LockMode.SHARED)
        assert t.waiter_modes("a") == [
            ("T2", LockMode.EXCLUSIVE),
            ("T3", LockMode.SHARED),
        ]
        assert t.waiter_modes("b") == []

    def test_release_all_wake_combines_entities(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        t.acquire("T1", "b", LockMode.EXCLUSIVE)
        t.add_waiter("T2", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T3", "b", LockMode.EXCLUSIVE)
        released, woken = t.release_all_wake("T1")
        assert {e for e, _ in released} == {"a", "b"}
        assert set(woken) == {"T2", "T3"}
        assert t.held_by("T1") == {}

    def test_release_all_clears_own_waiter_registration(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T1", "b", LockMode.EXCLUSIVE)
        t.release_all("T1")
        assert t.waiters_of("b") == []
        assert t.waiting_entity("T1") is None

    def test_waiter_moves_between_entities(self):
        t = LockTable()
        t.add_waiter("T2", "a", LockMode.EXCLUSIVE)
        t.add_waiter("T2", "b", LockMode.EXCLUSIVE)
        assert t.waiters_of("a") == []
        assert t.waiters_of("b") == ["T2"]
        assert t.waiting_entity("T2") == "b"
        t.remove_waiter("T2")
        assert t.waiters_of("b") == []
        assert t.waiting_entity("T2") is None


class TestStressWorkload:
    def test_ordered_and_arrivals(self):
        items, initial = stress_workload(50, 40, arrival_rate=2.0, seed=3)
        assert len(items) == 40
        # Arrivals are staggered at roughly the requested rate.
        assert items[-1].start_tick == int(39 / 2.0)
        # Ordered access sets: each transaction locks in global entity order.
        for item in items:
            ids = [int(i.entity[1:]) for i in item.intents]
            assert ids == sorted(ids)

    def test_unordered_variant(self):
        items, _ = stress_workload(50, 200, ordered=False, seed=3)
        assert any(
            [int(i.entity[1:]) for i in item.intents]
            != sorted(int(i.entity[1:]) for i in item.intents)
            for item in items
        )

    def test_completes_under_event_engine(self):
        items, initial = stress_workload(80, 150, seed=0)
        result = Simulator(TwoPhasePolicy(), seed=0).run(items, initial)
        assert result.metrics.committed == 150
        assert result.ok
