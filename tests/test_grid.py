"""The parallel experiment grid and the harness correctness fixes.

1. ``run_grid(spec, workers=0)`` reproduces the serial ``run_cell`` path
   exactly (same rows from the same seeds), and ``workers >= 2`` reproduces
   ``workers=0`` byte-identically — the grid's core contract;
2. every registered workload factory is deterministic *across processes*:
   the same seed yields identical items and initial state whether built
   in-process or in a spawned worker (what makes by-name fan-out sound);
3. ``run_cell(check_serializability=False)`` no longer reads green — rows
   report ``"skipped"``;
4. failed seeds are recorded as diagnosable ``(seed, error)`` pairs,
   truncated like ``SimulationError`` live lists;
5. mean/stdev aggregation works over the summaries' key intersection, so a
   partially-present metric cannot KeyError mid-aggregation.
"""

from __future__ import annotations

import multiprocessing
import sys

import pytest

from repro.core.states import StructuralState
from repro.policies import Access, DdagPolicy, TwoPhasePolicy
from repro.sim import (
    FAILED_SEEDS_LIMIT,
    GridSpec,
    PolicySpec,
    SeedOutcome,
    WorkloadItem,
    WorkloadSpec,
    aggregate_outcomes,
    grid_factory,
    grid_factory_names,
    long_transaction_workload,
    run_cell,
    run_grid,
    traversal_workload,
)
from repro.graphs import random_rooted_dag

# ----------------------------------------------------------------------
# 1. Grid equivalence: workers=0 == run_cell, workers=2 == workers=0
# ----------------------------------------------------------------------


class TestGridEquivalence:
    def test_workers0_matches_legacy_run_cell(self):
        spec = GridSpec(
            policies=(PolicySpec(TwoPhasePolicy),),
            workloads=(WorkloadSpec(
                "long_transaction", {"num_entities": 5, "num_short": 2},
            ),),
            seeds=(0, 1, 2, 3),
        )
        [grid_cell] = run_grid(spec, workers=0)
        legacy = run_cell(
            TwoPhasePolicy(),
            "long_transaction",
            lambda seed: long_transaction_workload(5, 2, seed=seed),
            seeds=range(4),
        )
        assert grid_cell == legacy
        assert grid_cell.row() == legacy.row()

    def test_workers0_matches_legacy_run_cell_with_context(self):
        """The DDAG cell: the registered factory supplies the context
        kwargs the legacy path got from ``context_kwargs_factory``."""
        spec = GridSpec(
            policies=(PolicySpec(DdagPolicy),),
            workloads=(WorkloadSpec(
                "traversal",
                {"nodes": 8, "edge_prob": 0.25, "num_txns": 4, "walk_length": 4},
            ),),
            seeds=(0, 1, 2),
        )
        [grid_cell] = run_grid(spec, workers=0)
        legacy = run_cell(
            DdagPolicy(),
            "traversal",
            lambda seed: traversal_workload(
                random_rooted_dag(8, 0.25, seed=seed), 4, 4, seed=seed
            ),
            seeds=range(3),
            context_kwargs_factory=lambda seed: {
                "dag": random_rooted_dag(8, 0.25, seed=seed).snapshot()
            },
        )
        assert grid_cell == legacy

    def test_parallel_matches_serial(self):
        spec = GridSpec(
            policies=(PolicySpec(TwoPhasePolicy), PolicySpec(DdagPolicy)),
            workloads=(
                WorkloadSpec("traversal", {"nodes": 8, "num_txns": 4}),
                WorkloadSpec("dynamic_traversal", {
                    "nodes": 8, "num_txns": 4, "insert_prob": 0.5,
                }),
            ),
            seeds=(0, 1),
        )
        serial = run_grid(spec, workers=0)
        parallel = run_grid(spec, workers=2)
        assert len(serial) == 4  # cross product
        assert serial == parallel

    def test_streamed_progress_sees_every_cell(self):
        spec = GridSpec(
            policies=(PolicySpec(TwoPhasePolicy),),
            workloads=(
                WorkloadSpec("random_access", {
                    "num_entities": 10, "num_txns": 4,
                }),
                WorkloadSpec("long_transaction", {
                    "num_entities": 4, "num_short": 1,
                }),
            ),
            seeds=(0, 1),
        )
        streamed = []
        results = run_grid(spec, workers=2, progress=streamed.append)
        # Cells may complete out of order; the returned list is in cell
        # order and the streamed set matches it exactly.
        assert sorted(c.workload for c in streamed) == sorted(
            c.workload for c in results
        )

    def test_pairs_override_cross_product(self):
        p1, p2 = PolicySpec(TwoPhasePolicy), PolicySpec(DdagPolicy)
        w = WorkloadSpec("random_access", {"num_entities": 8, "num_txns": 3})
        spec = GridSpec(pairs=((p1, w), (p2, w)), seeds=(0,))
        assert [pw for pw in spec.cells()] == [(p1, w), (p2, w)]

    def test_unspawnable_main_fails_fast(self, monkeypatch):
        """A __main__ whose __file__ does not exist (stdin/heredoc script)
        cannot be re-imported by spawn workers; the pool would respawn
        crashing workers forever.  run_grid must refuse up front."""
        import types

        fake_main = types.ModuleType("__main__")
        fake_main.__file__ = "/tmp/<stdin>"
        fake_main.__spec__ = None
        monkeypatch.setitem(sys.modules, "__main__", fake_main)
        spec = GridSpec(
            policies=(PolicySpec(TwoPhasePolicy),),
            workloads=(WorkloadSpec("random_access", {
                "num_entities": 8, "num_txns": 3,
            }),),
            seeds=(0,),
        )
        with pytest.raises(RuntimeError, match="workers=0"):
            run_grid(spec, workers=2)
        # the serial path stays available regardless of __main__
        [cell] = run_grid(spec, workers=0)
        assert cell.failures == 0

    def test_empty_seed_grid_is_not_green(self):
        spec = GridSpec(
            policies=(PolicySpec(TwoPhasePolicy),),
            workloads=(WorkloadSpec("random_access", {
                "num_entities": 8, "num_txns": 3,
            }),),
            seeds=(),
        )
        [cell] = run_grid(spec, workers=0)
        assert cell.runs == 0
        assert cell.row()["serializable"] is False


# ----------------------------------------------------------------------
# 2. Cross-process factory determinism (the fan-out's soundness contract)
# ----------------------------------------------------------------------

#: Small-but-nontrivial kwargs per registered factory.  Every registered
#: name must appear here: a factory added without a determinism check is a
#: hole in the grid's correctness contract, so the test fails loud.
FACTORY_CASES = {
    "stress": {"num_entities": 40, "num_txns": 20, "arrival_rate": 2.0},
    "deadlock_storm": {"num_entities": 30, "num_txns": 12},
    "long_transaction": {"num_entities": 6, "num_short": 3},
    "random_access": {"num_entities": 20, "num_txns": 8, "hot_fraction": 0.2},
    "traversal": {"nodes": 8, "num_txns": 5, "walk_length": 4},
    "dynamic_traversal": {"nodes": 8, "num_txns": 5, "insert_prob": 0.5},
}


def _fingerprint(name: str, kwargs: dict, seed: int) -> dict:
    """A picklable digest of a factory's output: item identities in order,
    intent scripts, arrival ticks, restart presence, the initial state, and
    the context kwarg names.  (The items themselves can hold closures —
    restart strategies — so they never cross the process boundary; the grid
    rebuilds them in the worker, which is exactly what this digest
    verifies.)"""
    items, initial, ctx = grid_factory(name)(seed, **kwargs)
    return {
        "items": [
            (it.name, tuple(it.intents), it.start_tick, it.restart is not None)
            for it in items
        ],
        "initial": sorted(repr(e) for e in initial.entities),
        "ctx_keys": sorted(ctx),
    }


class TestCrossProcessDeterminism:
    def test_every_factory_has_a_case(self):
        assert set(FACTORY_CASES) == set(grid_factory_names()), (
            "every registered grid factory needs a determinism case"
        )

    @pytest.mark.parametrize("name", sorted(FACTORY_CASES))
    def test_spawned_worker_builds_identical_workload(self, name):
        kwargs = FACTORY_CASES[name]
        local = [_fingerprint(name, kwargs, seed) for seed in (0, 7)]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            remote = [
                pool.apply(_fingerprint, (name, kwargs, seed))
                for seed in (0, 7)
            ]
        assert local == remote, (
            f"{name}: same seed must build the same workload in a spawned "
            f"worker as in-process"
        )
        # Different seeds actually vary the workload (the digest is not
        # degenerate).
        assert local[0] != local[1]


# ----------------------------------------------------------------------
# 3. Unchecked serializability must not read green
# ----------------------------------------------------------------------


class TestSkippedSerializability:
    def _factory(self, seed):
        return long_transaction_workload(4, 1, seed=seed)

    def test_unchecked_cell_reports_skipped(self):
        cell = run_cell(
            TwoPhasePolicy(), "long", self._factory, seeds=range(2),
            check_serializability=False,
        )
        assert cell.serializability_checked is False
        assert cell.row()["serializable"] == "skipped"

    def test_checked_cell_still_reports_bool(self):
        cell = run_cell(
            TwoPhasePolicy(), "long", self._factory, seeds=range(2),
        )
        assert cell.serializability_checked is True
        assert cell.row()["serializable"] is True

    def test_all_failed_unchecked_cell_is_false_not_skipped(self):
        def doomed(seed):
            items = [
                WorkloadItem("T1", [Access("a"), Access("b")]),
                WorkloadItem("T2", [Access("b"), Access("a")]),
            ]
            return items, StructuralState.of("a", "b")

        cell = run_cell(
            TwoPhasePolicy(), "doomed", doomed, seeds=range(3), max_ticks=2,
            check_serializability=False,
        )
        assert cell.runs == 0
        # every-seed-failed keeps the hard False (not merely "skipped")
        assert cell.all_serializable is False
        assert cell.row()["serializable"] is False


# ----------------------------------------------------------------------
# 4. Failed seeds are diagnosable (and truncated)
# ----------------------------------------------------------------------


class TestFailedSeeds:
    @staticmethod
    def _doomed(seed):
        items = [
            WorkloadItem("T1", [Access("a"), Access("b")]),
            WorkloadItem("T2", [Access("b"), Access("a")]),
        ]
        return items, StructuralState.of("a", "b")

    def test_failed_seed_pairs_recorded(self):
        cell = run_cell(
            TwoPhasePolicy(), "doomed", self._doomed, seeds=(3, 5),
            max_ticks=2,
        )
        assert cell.failures == 2
        assert [seed for seed, _ in cell.failed_seeds] == [3, 5]
        assert all("exceeded 2 ticks" in msg for _, msg in cell.failed_seeds)
        assert cell.row()["failed_seeds"] == [list(p) for p in cell.failed_seeds]

    def test_failed_seeds_truncated_but_fully_counted(self):
        seeds = range(FAILED_SEEDS_LIMIT + 5)
        cell = run_cell(
            TwoPhasePolicy(), "doomed", self._doomed, seeds=seeds, max_ticks=2,
        )
        assert cell.failures == len(list(seeds))
        assert len(cell.failed_seeds) == FAILED_SEEDS_LIMIT

    def test_successful_cell_has_no_failed_seeds_key(self):
        cell = run_cell(
            TwoPhasePolicy(), "long",
            lambda seed: long_transaction_workload(4, 1, seed=seed),
            seeds=range(2),
        )
        assert cell.failed_seeds == ()
        assert "failed_seeds" not in cell.row()


# ----------------------------------------------------------------------
# 5. Aggregation over the key intersection
# ----------------------------------------------------------------------


class TestKeyIntersectionAggregation:
    def test_partial_metric_does_not_keyerror(self):
        outcomes = [
            SeedOutcome(seed=0, summary={"ticks": 10.0, "experimental": 1.0}),
            SeedOutcome(seed=1, summary={"ticks": 14.0}),
        ]
        cell = aggregate_outcomes("P", "w", outcomes, check_serializability=False)
        assert cell.means == {"ticks": 12.0}
        assert "experimental" not in cell.means
        assert cell.stdevs["ticks"] == pytest.approx(2.0)

    def test_key_order_follows_first_summary(self):
        outcomes = [
            SeedOutcome(seed=0, summary={"b": 1.0, "a": 2.0}),
            SeedOutcome(seed=1, summary={"a": 4.0, "b": 3.0}),
        ]
        cell = aggregate_outcomes("P", "w", outcomes, check_serializability=False)
        assert list(cell.means) == ["b", "a"]

    def test_failed_outcomes_excluded_from_aggregation(self):
        outcomes = [
            SeedOutcome(seed=0, summary={"ticks": 10.0}, serializable=True),
            SeedOutcome(seed=1, error="exceeded 2 ticks"),
        ]
        cell = aggregate_outcomes("P", "w", outcomes)
        assert cell.runs == 1 and cell.failures == 1
        assert cell.means == {"ticks": 10.0}
        assert cell.all_serializable is True
        assert cell.failed_seeds == ((1, "exceeded 2 ticks"),)
