"""Tests for interaction graphs, chordless cycles, and the Fig. 2 refutation
of the static chordless-cycle heuristic."""

from repro import (
    InteractionGraph,
    StructuralState,
    Transaction,
    is_serializable,
    static_chordless_heuristic,
)
from repro.core.safety import find_nonserializable_schedule
from repro.enumeration import fig2_system

AB = StructuralState.of("a", "b")


class TestInteractionGraph:
    def test_multiplicity_counts_conflicting_data_pairs(self):
        t1 = Transaction.from_text("T1", "(LX a) (W a) (R a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX a) (W a) (UX a)")
        g = InteractionGraph.of([t1, t2])
        # data-step pairs only: (W,W), (W,R)... T1 has W,R on a; T2 has W:
        # pairs (W a, W a) and (R a, W a) -> multiplicity 2.
        assert g.multiplicity_of("T1", "T2") == 2

    def test_disjoint_transactions_no_edge(self):
        t1 = Transaction.from_text("T1", "(LX a) (W a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX b) (W b) (UX b)")
        g = InteractionGraph.of([t1, t2])
        assert g.multiplicity_of("T1", "T2") == 0
        assert g.neighbours("T1") == frozenset()

    def test_two_node_cycles(self, fig2_txns):
        g = InteractionGraph.of(fig2_txns)
        pairs = set(g.two_node_cycles())
        assert pairs == {("T1", "T2"), ("T1", "T3"), ("T2", "T3")}

    def test_fig2_chordless_cycles_are_two_node_only(self, fig2_txns):
        # The paper: with a pair of edges between any two transactions, the
        # only chordless cycles involve two nodes (parallel edges are chords
        # of any longer cycle).
        g = InteractionGraph.of(fig2_txns)
        cycles = g.chordless_cycles()
        assert cycles
        assert all(len(c) == 2 for c in cycles)

    def test_triangle_without_parallel_edges_is_chordless(self):
        # Single-edge triangle: T1-T2 conflict on a; T2-T3 on b; T3-T1 on c.
        t1 = Transaction.from_text("T1", "(LX a) (W a) (UX a) (LS c) (R c) (US c)")
        t2 = Transaction.from_text("T2", "(LS a) (R a) (US a) (LX b) (W b) (UX b)")
        t3 = Transaction.from_text("T3", "(LS b) (R b) (US b) (LX c) (W c) (UX c)")
        g = InteractionGraph.of([t1, t2, t3])
        assert g.multiplicity_of("T1", "T2") == 1
        cycles = g.chordless_cycles()
        assert any(len(c) == 3 for c in cycles)


class TestStaticHeuristic:
    def test_heuristic_wrongly_declares_fig2_safe(self, fig2_txns):
        verdict = static_chordless_heuristic(fig2_txns)  # empty initial state
        assert verdict.declared_safe  # the unsound part
        assert verdict.counterexample is None
        # ... while the sound decider finds the nonserializable schedule:
        schedule = find_nonserializable_schedule(fig2_txns)
        assert schedule is not None and not is_serializable(schedule)

    def test_heuristic_catches_two_transaction_anomaly(self, nontwophase_pair):
        # For a plain 2-cycle the chordless heuristic does work.
        verdict = static_chordless_heuristic(nontwophase_pair, AB)
        assert not verdict.declared_safe
        assert verdict.counterexample is not None
