"""The whole-program effect-inference machinery under ``repro.analysis``:
direct effect extraction, receiver-type resolution through the symbol
table, mutator-call classification, fixpoint convergence on recursive
and cyclic call graphs, and the unresolved-call conservative fallback.
"""

from repro.analysis.effects import (
    MAX_CHAIN,
    MUTATE,
    READ,
    ROOT_GLOBAL,
    ROOT_PARAM,
    ROOT_SELF,
    UNRESOLVED_DYNAMIC,
    UNRESOLVED_UNKNOWN_NAME,
    UNRESOLVED_UNKNOWN_RECEIVER,
    WRITE,
)
from repro.analysis.engine import load_context
from repro.analysis.project import ProjectContext, propagate


def build(tmp_path, files):
    """A ProjectContext over ``{relpath: source}`` under a src/ tree."""
    for rel, source in files.items():
        path = tmp_path / "src" / "repro" / "sim" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    contexts = []
    for rel in sorted(files):
        ctx, err = load_context(str(tmp_path / "src" / "repro" / "sim" / rel))
        assert err is None
        contexts.append(ctx)
    return ProjectContext.build(contexts)


def effects_of(pctx, qualname, kind=None):
    out = pctx.transitive_effects(qualname)
    if kind is not None:
        out = {e for e in out if e.kind == kind}
    return out


class TestDirectExtraction:
    def test_write_read_and_mutator_classification(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "class Box:\n"
                    "    def poke(self, item):\n"
                    "        self.count = self.count + 1\n"
                    "        self.items.append(item)\n"
                    "        item.tags.add('seen')\n"
                )
            },
        )
        effs = effects_of(pctx, "repro.sim.m.Box.poke")
        writes = {(e.root, e.chain) for e in effs if e.kind == WRITE}
        mutates = {(e.root, e.name, e.chain) for e in effs if e.kind == MUTATE}
        reads = {(e.root, e.chain) for e in effs if e.kind == READ}
        assert (ROOT_SELF, ("count",)) in writes
        assert (ROOT_SELF, "self", ("items",)) in mutates
        assert (ROOT_PARAM, "item", ("tags",)) in mutates
        assert (ROOT_SELF, ("count",)) in reads

    def test_locals_and_buffer_params_carry_no_effects(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "def phase(names, buf):\n"
                    "    scratch = []\n"
                    "    for n in names:\n"
                    "        scratch.append(n)\n"
                    "        buf.decisions.append(n)\n"
                    "    return scratch\n"
                )
            },
        )
        assert effects_of(pctx, "repro.sim.m.phase", WRITE) == set()
        assert effects_of(pctx, "repro.sim.m.phase", MUTATE) == set()

    def test_single_assignment_alias_of_attribute_chain(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "class C:\n"
                    "    def touch(self):\n"
                    "        d = self.cache.dirty\n"
                    "        d.add('x')\n"
                )
            },
        )
        effs = effects_of(pctx, "repro.sim.m.C.touch", MUTATE)
        assert {(e.root, e.chain) for e in effs} == {
            (ROOT_SELF, ("cache", "dirty"))
        }

    def test_global_rebinding_and_module_global_mutation(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "TOTALS = []\n"
                    "COUNT = 0\n"
                    "def bump():\n"
                    "    global COUNT\n"
                    "    COUNT = COUNT + 1\n"
                    "    TOTALS.append(COUNT)\n"
                )
            },
        )
        effs = effects_of(pctx, "repro.sim.m.bump")
        assert (WRITE, ROOT_GLOBAL, "repro.sim.m.COUNT") in {
            (e.kind, e.root, e.name) for e in effs
        }
        assert (MUTATE, ROOT_GLOBAL, "repro.sim.m.TOTALS") in {
            (e.kind, e.root, e.name) for e in effs
        }


class TestReceiverTypeResolution:
    FILES = {
        "table.py": (
            "class LockTable:\n"
            "    def blockers(self, name):\n"
            "        return sorted(self.holders)\n"
            "    def enqueue(self, name):\n"
            "        self.waiters.append(name)\n"
        ),
        "user.py": (
            "from .table import LockTable\n"
            "class Classifier:\n"
            "    def __init__(self, table: LockTable, cache):\n"
            "        self.table = table\n"
            "        self.cache = cache\n"
            "    def derive(self, name):\n"
            "        return self.table.blockers(name)\n"
            "    def stall(self, name):\n"
            "        self.table.enqueue(name)\n"
        ),
    }

    def test_annotated_init_param_resolves_self_attr_calls(self, tmp_path):
        pctx = build(tmp_path, self.FILES)
        edges = pctx.graph.edges["repro.sim.user.Classifier.derive"]
        assert [e.target for e in edges] == [
            "repro.sim.table.LockTable.blockers"
        ]

    def test_callee_self_effects_reroot_behind_the_receiver(self, tmp_path):
        pctx = build(tmp_path, self.FILES)
        effs = effects_of(pctx, "repro.sim.user.Classifier.stall", MUTATE)
        assert {(e.root, e.chain) for e in effs} == {
            (ROOT_SELF, ("table", "waiters"))
        }
        # The effect still points back at the concrete mutation site.
        (eff,) = effs
        assert eff.origin == "repro.sim.table.LockTable.enqueue"

    def test_annotated_parameter_resolves_method_calls(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                **self.FILES,
                "caller.py": (
                    "from .table import LockTable\n"
                    "def poke(table: LockTable, name):\n"
                    "    table.enqueue(name)\n"
                ),
            },
        )
        effs = effects_of(pctx, "repro.sim.caller.poke", MUTATE)
        assert {(e.root, e.name, e.chain) for e in effs} == {
            (ROOT_PARAM, "table", ("waiters",))
        }

    def test_constructor_call_gets_fresh_receiver(self, tmp_path):
        """A constructed object is new: its __init__'s self-writes are
        invisible to the caller."""
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "class Buf:\n"
                    "    def __init__(self):\n"
                    "        self.items = []\n"
                    "def make():\n"
                    "    return Buf()\n"
                )
            },
        )
        assert effects_of(pctx, "repro.sim.m.make", WRITE) == set()

    def test_class_level_annotation_resolves_attr_type(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                **self.FILES,
                "entry.py": (
                    "from .table import LockTable\n"
                    "class Entry:\n"
                    "    table: LockTable\n"
                    "def poke(entry: Entry):\n"
                    "    entry.table.enqueue('x')\n"
                ),
            },
        )
        effs = effects_of(pctx, "repro.sim.entry.poke", MUTATE)
        assert {(e.root, e.name, e.chain) for e in effs} == {
            (ROOT_PARAM, "entry", ("table", "waiters"))
        }


class TestFixpointConvergence:
    def test_self_recursion_converges_with_chain_truncation(self, tmp_path):
        """``walk`` recursing through ``self.child`` would grow chains
        forever; truncation at MAX_CHAIN bounds the lattice."""
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "class Node:\n"
                    "    def walk(self):\n"
                    "        self.child.visits.append(1)\n"
                    "        self.child.walk()\n"
                )
            },
        )
        effs = effects_of(pctx, "repro.sim.m.Node.walk", MUTATE)
        assert effs  # converged, non-empty
        assert all(len(e.chain) <= MAX_CHAIN + 1 for e in effs)

    def test_mutual_recursion_cycle_converges(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "class Pair:\n"
                    "    def ping(self, log):\n"
                    "        log.entries.append('ping')\n"
                    "        self.pong(log)\n"
                    "    def pong(self, log):\n"
                    "        log.entries.append('pong')\n"
                    "        self.ping(log)\n"
                )
            },
        )
        for meth in ("ping", "pong"):
            effs = effects_of(pctx, f"repro.sim.m.Pair.{meth}", MUTATE)
            # Each side sees both mutation sites through the cycle.
            assert {e.origin for e in effs} == {
                "repro.sim.m.Pair.ping",
                "repro.sim.m.Pair.pong",
            }

    def test_propagation_is_transitive_over_three_hops(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "def a(state):\n"
                    "    b(state)\n"
                    "def b(state):\n"
                    "    c(state)\n"
                    "def c(state):\n"
                    "    state.log.append('hit')\n"
                )
            },
        )
        effs = effects_of(pctx, "repro.sim.m.a", MUTATE)
        assert {(e.root, e.name, e.chain) for e in effs} == {
            (ROOT_PARAM, "state", ("log",))
        }
        (eff,) = effs
        assert eff.origin == "repro.sim.m.c"

    def test_skip_call_names_cuts_the_closure(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "def outer(state):\n"
                    "    blessed(state)\n"
                    "    stray(state)\n"
                    "def blessed(state):\n"
                    "    state.a.append(1)\n"
                    "def stray(state):\n"
                    "    state.b.append(2)\n"
                )
            },
        )
        restricted = pctx.restricted_effects(
            {"blessed"}, roots=["repro.sim.m.outer"]
        )
        chains = {
            e.chain
            for e in restricted["repro.sim.m.outer"]
            if e.kind == MUTATE
        }
        assert chains == {("b",)}  # blessed's effect cut, stray's kept


class TestUnresolvedFallback:
    def test_call_through_parameter_is_dynamic_not_impure(self, tmp_path):
        """The executor's own ``derive(entry)`` pattern: a frozen-input
        callable must not be treated as an unknown impure call."""
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "def run(derive, live, names, buf):\n"
                    "    for name in names:\n"
                    "        buf.decisions.append((name, derive(live[name])))\n"
                )
            },
        )
        summary = pctx.summary("repro.sim.m.run")
        assert ("derive", 3, UNRESOLVED_DYNAMIC) in summary.unresolved
        assert effects_of(pctx, "repro.sim.m.run", MUTATE) == set()

    def test_unknown_name_and_receiver_categories(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "def go(handle):\n"
                    "    mystery()\n"
                    "    handle.sock.send(b'x')\n"
                )
            },
        )
        summary = pctx.summary("repro.sim.m.go")
        categories = {(name, cat) for name, _, cat in summary.unresolved}
        assert ("mystery", UNRESOLVED_UNKNOWN_NAME) in categories
        # handle is a parameter with no annotation: dynamic dispatch.
        assert ("send", UNRESOLVED_DYNAMIC) in categories

    def test_mutator_named_call_counts_even_when_unresolved(self, tmp_path):
        """The conservative half: ``.update()`` on an unknown receiver is
        still classified as a mutation of that receiver."""
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "def go(handle):\n"
                    "    handle.cache.update({'a': 1})\n"
                )
            },
        )
        effs = effects_of(pctx, "repro.sim.m.go", MUTATE)
        assert {(e.root, e.name, e.chain) for e in effs} == {
            (ROOT_PARAM, "handle", ("cache",))
        }

    def test_non_mutator_unresolved_calls_contribute_no_effects(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "def go(handle):\n"
                    "    handle.refresh()\n"
                )
            },
        )
        assert effects_of(pctx, "repro.sim.m.go", MUTATE) == set()
        assert effects_of(pctx, "repro.sim.m.go", WRITE) == set()


class TestPropagateDeterminism:
    def test_fixpoint_is_order_independent(self, tmp_path):
        pctx = build(
            tmp_path,
            {
                "m.py": (
                    "class Pair:\n"
                    "    def ping(self, log):\n"
                    "        log.entries.append('ping')\n"
                    "        self.pong(log)\n"
                    "    def pong(self, log):\n"
                    "        log.entries.append('pong')\n"
                    "        self.ping(log)\n"
                )
            },
        )
        again = propagate(pctx.table.summaries, pctx.graph.edges)
        assert again == {
            q: pctx.transitive_effects(q) for q in pctx.summaries()
        }
