"""The unified BENCH_*.json artifact layer (``sim/artifacts.py``):
schema-v1 round-trips, ragged-row rejection, and the committed artifacts'
conformance (every writer in tree must stamp the wall clock)."""

import ast
import glob
import json
import os

import pytest

from repro.sim.artifacts import (
    SCHEMA_VERSION,
    bench_artifact,
    cell_rows_with_work,
    write_bench_artifact,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ROWS = [
    {"workload": "a", "txns": 100, "ratio": 3.5},
    {"workload": "b", "txns": 200, "ratio": 4.0},
]


class TestRoundTrip:
    def test_write_then_load_preserves_payload(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        payload = write_bench_artifact(
            path, "unit", ROWS, scale=0.5, workers=2, wall_s=1.23456,
            extra={"note": "round-trip"},
        )
        loaded = json.loads(path.read_text())
        assert loaded == payload
        assert loaded["schema"] == SCHEMA_VERSION == 1
        assert loaded["bench"] == "unit"
        assert (loaded["scale"], loaded["workers"]) == (0.5, 2)
        assert loaded["wall_s"] == 1.235  # rounded to ms
        assert loaded["rows"] == ROWS
        assert loaded["extra"] == {"note": "round-trip"}

    def test_optional_fields_omitted_when_absent(self):
        payload = bench_artifact("unit", ROWS)
        assert "wall_s" not in payload
        assert "extra" not in payload

    def test_rows_are_copied_not_aliased(self):
        rows = [dict(r) for r in ROWS]
        payload = bench_artifact("unit", rows)
        rows.append({"workload": "c"})
        assert len(payload["rows"]) == 2

    def test_missing_parent_directories_are_created(self, tmp_path):
        """``--out path/to/new_dir/file.json`` must not crash the writer
        at the end of a bench run: missing parents are created."""
        path = tmp_path / "new_dir" / "nested" / "BENCH_unit.json"
        assert not path.parent.exists()
        payload = write_bench_artifact(path, "unit", ROWS, wall_s=0.1)
        assert json.loads(path.read_text()) == payload

    def test_existing_parent_directory_is_reused(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        write_bench_artifact(path, "unit", ROWS, wall_s=0.1)
        write_bench_artifact(path, "unit", ROWS, wall_s=0.2)  # no EEXIST
        assert json.loads(path.read_text())["wall_s"] == 0.2


class TestRowValidation:
    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError, match="do not match row 0"):
            bench_artifact(
                "unit",
                [{"workload": "a", "txns": 1}, {"workload": "b", "ticks": 2}],
            )

    def test_non_mapping_row_rejected(self):
        with pytest.raises(TypeError, match="not a mapping"):
            bench_artifact("unit", [("workload", "a")])

    def test_non_string_key_rejected(self):
        with pytest.raises(TypeError, match="non-string key"):
            bench_artifact("unit", [{1: "a"}])

    def test_work_key_is_optional_per_row(self):
        payload = bench_artifact(
            "unit",
            [
                {"workload": "a", "txns": 1, "work": {"checks": 2.0}},
                {"workload": "b", "txns": 2},
            ],
        )
        assert len(payload["rows"]) == 2

    def test_empty_rows_allowed(self):
        assert bench_artifact("unit", [])["rows"] == []


class _Cell:
    def __init__(self, row, work_means):
        self._row = row
        self.work_means = work_means

    def row(self):
        return dict(self._row)


class TestCellRows:
    def test_work_counters_attach_only_when_measured(self):
        cells = [
            _Cell({"workload": "a"}, {"checks": 2.004}),
            _Cell({"workload": "b"}, {}),
        ]
        rows = cell_rows_with_work(cells)
        assert rows[0]["work"] == {"checks": 2.0}
        assert "work" not in rows[1]
        # The result must itself be a valid artifact table.
        bench_artifact("unit", rows)


class TestCommittedArtifacts:
    """Every BENCH_*.json currently in tree conforms to schema v1 and
    records the wall clock."""

    def _artifacts(self):
        paths = sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
        assert paths, "no committed BENCH_*.json artifacts found"
        return paths

    def test_schema_and_wall_clock_present(self):
        for path in self._artifacts():
            with open(path) as fh:
                doc = json.load(fh)
            name = os.path.basename(path)
            assert doc.get("schema") == SCHEMA_VERSION, name
            assert isinstance(doc.get("wall_s"), (int, float)), (
                f"{name} lacks the wall_s stamp"
            )
            assert doc.get("rows"), f"{name} has no rows"
            bench_artifact(doc["bench"], doc["rows"])  # re-validates rows

    def test_every_writer_call_site_passes_wall_s(self):
        """AST-scan every in-tree caller of write_bench_artifact: each call
        must pass a wall_s keyword (so no future artifact can regress to
        clockless)."""
        callers = []
        for pattern in ("benchmarks/*.py", "src/repro/*.py", "src/repro/*/*.py"):
            for path in sorted(glob.glob(os.path.join(REPO_ROOT, pattern))):
                with open(path) as fh:
                    tree = ast.parse(fh.read(), filename=path)
                for node in ast.walk(tree):
                    if not isinstance(node, ast.Call):
                        continue
                    fname = (
                        node.func.id if isinstance(node.func, ast.Name)
                        else getattr(node.func, "attr", None)
                    )
                    if fname != "write_bench_artifact":
                        continue
                    callers.append(path)
                    kwargs = {kw.arg for kw in node.keywords}
                    assert "wall_s" in kwargs, (
                        f"{path}:{node.lineno} writes an artifact without "
                        "a wall_s stamp"
                    )
        assert callers, "no write_bench_artifact call sites found in tree"
