"""Tests for the ASCII rendering helpers."""

from repro import Schedule, serializability_graph
from repro.graphs import Forest, diamond
from repro.viz import (
    render_conflict_graph,
    render_dag,
    render_forest,
    render_lock_timeline,
    render_schedule,
    render_schedule_graph,
)


class TestRenderSchedule:
    def test_rows(self, section2_proper):
        text = render_schedule(section2_proper, ["T1", "T2"])
        assert text.splitlines()[0].startswith("T1:")

    def test_lock_timeline(self, simple_locked_pair):
        s = Schedule.serial(simple_locked_pair)
        text = render_lock_timeline(s)
        assert "T1[0..2]" in text
        assert "T2[3..5]" in text


class TestRenderGraphs:
    def test_conflict_graph(self, fig2_sp):
        text = render_conflict_graph(serializability_graph(fig2_sp))
        assert "-->" in text and "sinks:" in text

    def test_schedule_graph_shortcut(self, fig2_sp):
        assert "D(S)" in render_schedule_graph(fig2_sp)

    def test_dag(self):
        text = render_dag(diamond())
        lines = text.splitlines()
        assert lines[0] == "1"
        assert any(l.strip().startswith("4") for l in lines)
        assert any(l.strip().endswith("*") for l in lines)  # shared node

    def test_forest(self):
        f = Forest()
        f.add_root(1)
        f.add_child(1, 2)
        text = render_forest(f)
        assert text.splitlines() == ["1", "  2"]

    def test_empty_forest(self):
        assert render_forest(Forest()) == "(empty forest)"
