"""Unit tests for the serializability graph D(S) and equivalence tests."""

import pytest

from repro import Schedule, Transaction, is_serializable, serializability_graph
from repro.core.serializability import (
    SerializabilityGraph,
    conflict_equivalent,
    equivalent_serial_schedule,
    is_serializable_by_definition,
    serialization_order,
)


def _pair(order):
    t1 = Transaction.from_text("T1", "(LX a) (W a) (UX a) (LX b) (W b) (UX b)")
    t2 = Transaction.from_text("T2", "(LX b) (W b) (UX b) (LX a) (W a) (UX a)")
    return Schedule.from_order([t1, t2], order)


class TestGraph:
    def test_serial_schedule_graph_is_acyclic(self):
        s = _pair(["T1"] * 6 + ["T2"] * 6)
        g = serializability_graph(s)
        assert g.edges == {("T1", "T2")}
        assert g.is_acyclic()

    def test_cyclic_interleaving(self):
        # T1 takes a, T2 takes b, then each needs the other's entity.
        s = _pair(["T1", "T1", "T1", "T2", "T2", "T2", "T2", "T2", "T2", "T1", "T1", "T1"])
        g = serializability_graph(s)
        assert ("T1", "T2") in g.edges and ("T2", "T1") in g.edges
        assert not g.is_acyclic()
        assert not is_serializable(s)

    def test_edge_witnesses_recorded(self):
        s = _pair(["T1"] * 6 + ["T2"] * 6)
        g = serializability_graph(s)
        witness = g.witness_for(("T1", "T2"))
        assert witness is not None
        first, second = witness
        assert first.txn == "T1" and second.txn == "T2"
        assert first.step.conflicts_with(second.step)

    def test_sources_sinks(self):
        g = SerializabilityGraph(
            frozenset({"A", "B", "C"}), frozenset({("A", "B"), ("B", "C")})
        )
        assert g.sources() == {"A"}
        assert g.sinks() == {"C"}

    def test_isolated_node_is_source_and_sink(self):
        g = SerializabilityGraph(frozenset({"A", "B"}), frozenset())
        assert g.sources() == {"A", "B"} == g.sinks()

    def test_find_cycle_returns_closed_walk(self):
        g = SerializabilityGraph(
            frozenset("ABC"), frozenset({("A", "B"), ("B", "C"), ("C", "A")})
        )
        cycle = g.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) <= {"A", "B", "C"}

    def test_topological_sort(self):
        g = SerializabilityGraph(
            frozenset("ABC"), frozenset({("A", "B"), ("B", "C")})
        )
        assert g.topological_sort() == ["A", "B", "C"]

    def test_topological_sort_cyclic_raises(self):
        g = SerializabilityGraph(frozenset("AB"), frozenset({("A", "B"), ("B", "A")}))
        with pytest.raises(ValueError):
            g.topological_sort()

    def test_all_topological_sorts(self):
        g = SerializabilityGraph(frozenset("ABC"), frozenset({("A", "B")}))
        sorts = g.all_topological_sorts()
        assert ["A", "B", "C"] in sorts
        assert ["C", "A", "B"] in sorts
        assert all(s.index("A") < s.index("B") for s in sorts)

    def test_inactive_transactions_excluded(self):
        t1 = Transaction.from_text("T1", "(LX a) (W a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX a) (W a) (UX a)")
        s = Schedule.from_order([t1, t2], ["T1"] * 3)
        g = serializability_graph(s)
        assert g.nodes == {"T1"}


class TestEquivalence:
    def test_serialization_order_of_serial(self):
        s = _pair(["T2"] * 6 + ["T1"] * 6)
        assert serialization_order(s) == ["T2", "T1"]

    def test_equivalent_serial_schedule_is_equivalent(self):
        # Same access order in both transactions: the pipelined interleaving
        # is legal, proper, and conflict-equivalent to serial T1;T2.
        t1 = Transaction.from_text("T1", "(LX a) (W a) (UX a) (LX b) (W b) (UX b)")
        t2 = Transaction.from_text("T2", "(LX a) (W a) (UX a) (LX b) (W b) (UX b)")
        s = Schedule.from_order(
            [t1, t2],
            ["T1", "T1", "T1", "T2", "T2", "T1", "T2", "T1", "T1", "T2", "T2", "T2"],
        )
        assert is_serializable(s)
        serial = equivalent_serial_schedule(s)
        assert serial.is_serial()
        assert conflict_equivalent(s, serial)

    def test_graph_test_agrees_with_definition(self):
        orders = [
            ["T1"] * 6 + ["T2"] * 6,
            ["T1", "T1", "T1", "T2", "T2", "T2", "T2", "T2", "T2", "T1", "T1", "T1"],
            ["T1", "T2", "T1", "T2", "T1", "T2", "T2", "T1", "T2", "T1", "T2", "T1"],
        ]
        for order in orders:
            s = _pair(order)
            assert is_serializable(s) == is_serializable_by_definition(s)

    def test_conflict_equivalent_requires_same_events(self):
        s1 = _pair(["T1"] * 6 + ["T2"] * 6)
        s2 = _pair(["T1"] * 6 + ["T2"] * 6).prefix(6)
        assert not conflict_equivalent(s1, s2)
