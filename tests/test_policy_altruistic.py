"""Tests for altruistic locking (rules AL1-AL3, Fig. 4, Theorem 3's claim)."""

import pytest

from repro.core import is_serializable
from repro.policies import (
    Access,
    Admission,
    AltruisticPolicy,
    BrokenAltruisticPolicy,
    check_altruistic_schedule,
)
from repro.sim import Simulator, WorkloadItem, long_transaction_workload, random_access_workload
from repro.core.states import StructuralState


def _step(session, n=1):
    """peek+execute n steps (the simulator's calling convention)."""
    for _ in range(n):
        assert session.peek() is not None
        session.executed()


class TestWakeMechanics:
    def test_donation_recorded_before_locked_point(self):
        ctx = AltruisticPolicy().create_context()
        session = ctx.begin("T1", [Access("a"), Access("b")])
        # run through: lock a, access, donate a, lock b ...
        while session.peek() is not None:
            step = session.peek()
            session.executed()
            if step.is_unlock and step.entity == "a":
                break
        assert "a" in session.donated

    def test_no_donation_after_locked_point(self):
        ctx = AltruisticPolicy().create_context()
        session = ctx.begin("T1", [Access("a")])
        while session.peek() is not None:
            session.executed()
        # The unlock of the only item happens after the locked point.
        assert session.donated == set()

    def test_wake_blocks_non_donated_lock(self):
        ctx = AltruisticPolicy().create_context()
        donor = ctx.begin("LONG", [Access("a"), Access("b"), Access("c")])
        # Donor: lock a, access a, donate a; stop pre-locked-point.
        _step(donor, 4)
        assert "a" in donor.donated and not donor.reached_locked_point
        follower = ctx.begin("S", [Access("a"), Access("z")])
        # Follower locks donated a: fine.
        assert follower.peek() is not None
        assert follower.admission().verdict is Admission.PROCEED
        _step(follower, 4)  # LX a, R a, W a, UX a
        # Now it wants z, which the donor never donated: AL2 -> WAIT.
        step = follower.peek()
        assert step.is_lock and step.entity == "z"
        verdict = follower.admission()
        assert verdict.verdict is Admission.WAIT
        assert "LONG" in verdict.waiting_on

    def test_wake_dissolves_at_locked_point(self):
        ctx = AltruisticPolicy().create_context()
        donor = ctx.begin("LONG", [Access("a"), Access("b")])
        _step(donor, 4)
        follower = ctx.begin("S", [Access("a"), Access("z")])
        _step(follower, 4)
        assert follower.peek() is not None
        assert follower.admission().verdict is Admission.WAIT
        # Let the donor reach its locked point (lock b).
        while not donor.reached_locked_point:
            _step(donor)
        assert follower.admission().verdict is Admission.PROCEED


class TestFig4:
    def test_fig4_trace(self):
        """T1 accesses entities 1,2,3 donating as it goes; T2 enters its wake
        via entity 1, follows with entity 2, and locks entity 4 only after
        T1's locked point."""
        ctx = AltruisticPolicy().create_context()
        init = StructuralState.of(1, 2, 3, 4)
        items = [
            WorkloadItem("T1", [Access(1), Access(2), Access(3)]),
            WorkloadItem("T2", [Access(1), Access(2), Access(4)]),
        ]
        for seed in range(10):
            result = Simulator(AltruisticPolicy(), seed=seed).run(items, init)
            assert set(result.committed) == {"T1", "T2"}
            assert is_serializable(result.schedule)
            assert check_altruistic_schedule(result.schedule) == []


class TestTheorem3Empirically:
    @pytest.mark.parametrize("seed", range(8))
    def test_long_transaction_runs_serializable(self, seed):
        items, init = long_transaction_workload(8, 3, seed=seed)
        result = Simulator(AltruisticPolicy(), seed=seed).run(items, init)
        assert is_serializable(result.schedule)
        assert check_altruistic_schedule(result.schedule) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_random_access_runs_serializable(self, seed):
        items, init = random_access_workload(6, 5, 3, seed=seed)
        result = Simulator(AltruisticPolicy(), seed=seed).run(items, init)
        assert is_serializable(result.schedule)
        assert check_altruistic_schedule(result.schedule) == []

    def test_altruism_allows_following_in_wake(self):
        # A short transaction whose whole access set is inside the donor's
        # donated prefix can commit before the donor does.
        items = [
            WorkloadItem("LONG", [Access(f"e{i}") for i in range(6)]),
            WorkloadItem("S", [Access("e0"), Access("e1")]),
        ]
        init = StructuralState(frozenset(f"e{i}" for i in range(6)))
        overlapped = False
        for seed in range(20):
            result = Simulator(AltruisticPolicy(), seed=seed).run(items, init)
            assert is_serializable(result.schedule)
            names = list(result.committed)
            if names and names[0] == "S":
                overlapped = True
        assert overlapped


class TestNegativeControl:
    def test_broken_al2_produces_nonserializable_run(self):
        # Without AL2 a short transaction may slip between the donor's
        # donated prefix and its still-locked tail, reversing orders.
        items = [
            WorkloadItem("LONG", [Access("a"), Access("b"), Access("c")]),
            WorkloadItem("S", [Access("c"), Access("a")]),
        ]
        init = StructuralState.of("a", "b", "c")
        bad = 0
        for seed in range(60):
            result = Simulator(BrokenAltruisticPolicy(), seed=seed).run(items, init)
            if not is_serializable(result.schedule):
                bad += 1
        assert bad > 0

    def test_checker_flags_broken_runs(self):
        items = [
            WorkloadItem("LONG", [Access("a"), Access("b"), Access("c")]),
            WorkloadItem("S", [Access("c"), Access("a")]),
        ]
        init = StructuralState.of("a", "b", "c")
        flagged = 0
        for seed in range(60):
            result = Simulator(BrokenAltruisticPolicy(), seed=seed).run(items, init)
            if not is_serializable(result.schedule):
                assert check_altruistic_schedule(result.schedule) != []
                flagged += 1
        assert flagged > 0
