"""The tick-free kernel request API (``repro.kernel.core.LockKernel``):
lifecycle outcomes, wake-up callbacks, deadlock resolution, drain, and —
the contract under test throughout — protocol misuse answered with
``ERROR``/``DENIED`` while mutating **nothing** and always leaving an
audit entry (no audit-free path)."""

import pytest

from repro.kernel import AuditLog, LockKernel, LockMode, Outcome


def audited_kernel(**kwargs):
    return LockKernel(audit=AuditLog(), **kwargs)


def last_audit(kernel):
    return kernel.audit.entries()[-1]


class MisuseProbe:
    """Snapshot fingerprint + audit length around a request expected to
    refuse: asserts no state mutation and exactly one new audit entry."""

    def __init__(self, kernel):
        self.kernel = kernel

    def expect_refusal(self, response, outcome, reason_fragment):
        assert response.outcome is outcome, response
        assert response.reason and reason_fragment in response.reason
        return response

    def __enter__(self):
        self.fingerprint = self.kernel.state_fingerprint()
        self.audit_len = len(self.kernel.audit)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            assert self.kernel.state_fingerprint() == self.fingerprint, (
                "a refused request mutated kernel state"
            )
            assert len(self.kernel.audit) == self.audit_len + 1, (
                "a refused request did not leave exactly one audit entry"
            )
            assert last_audit(self.kernel).decision in ("error", "denied")
        return False


class TestLifecycle:
    def test_begin_acquire_release_commit(self):
        k = audited_kernel()
        assert k.begin("t1").ok
        assert k.acquire("t1", "a", LockMode.EXCLUSIVE).ok
        assert k.held("t1") == {"a": LockMode.EXCLUSIVE}
        assert k.release("t1", "a").ok
        assert k.held("t1") == {}
        assert k.commit("t1").ok
        assert k.live_txns() == ()
        assert [e.decision for e in k.audit] == ["granted"] * 4

    def test_shared_holders_coexist(self):
        k = audited_kernel()
        for name in ("t1", "t2"):
            assert k.begin(name).ok
            assert k.acquire(name, "a", LockMode.SHARED).ok
        assert k.blocked_txns() == ()

    def test_conflicting_acquire_blocks_then_wakes_granted(self):
        k = audited_kernel()
        assert k.begin("t1").ok and k.begin("t2").ok
        assert k.acquire("t1", "a").ok
        wakes = []
        response = k.acquire(
            "t2", "a", on_wake=lambda txn, r: wakes.append((txn, r.outcome))
        )
        assert response.outcome is Outcome.BLOCKED
        assert response.blockers == ("t1",)
        assert k.blocked_txns() == ("t2",)
        assert not wakes
        assert k.commit("t1").ok
        assert wakes == [("t2", Outcome.GRANTED)]
        assert k.held("t2") == {"a": LockMode.EXCLUSIVE}
        assert k.blocked_txns() == ()

    def test_wake_grants_in_arrival_order(self):
        k = audited_kernel()
        for name in ("t1", "t2", "t3"):
            assert k.begin(name).ok
        assert k.acquire("t1", "a").ok
        order = []
        for name in ("t2", "t3"):
            r = k.acquire(name, "a",
                          on_wake=lambda txn, _r: order.append(txn))
            assert r.outcome is Outcome.BLOCKED
        assert k.commit("t1").ok
        assert order == ["t2"]  # t3 still waits behind t2's exclusive
        assert k.commit("t2").ok
        assert order == ["t2", "t3"]

    def test_deadlock_resolution_aborts_a_victim(self):
        k = audited_kernel()
        assert k.begin("t1").ok and k.begin("t2").ok
        assert k.acquire("t1", "a").ok
        assert k.acquire("t2", "b").ok
        wakes = []
        assert k.acquire(
            "t1", "b", on_wake=lambda t, r: wakes.append((t, r.outcome))
        ).outcome is Outcome.BLOCKED
        assert k.acquire(
            "t2", "a", on_wake=lambda t, r: wakes.append((t, r.outcome))
        ).outcome is Outcome.BLOCKED
        # Cost triple (structural effects, step_count, name): equal work,
        # so the name breaks the tie deterministically.
        assert k.victims == ["t1"]
        assert ("t1", Outcome.VICTIM) in wakes
        assert ("t2", Outcome.GRANTED) in wakes  # victim's locks freed it
        assert k.live_txns() == ("t2",)
        assert any(
            e.decision == "victim" and e.txn == "t1" for e in k.audit
        )

    def test_abort_while_blocked_cancels_the_parked_request(self):
        k = audited_kernel()
        assert k.begin("t1").ok and k.begin("t2").ok
        assert k.acquire("t1", "a").ok
        wakes = []
        assert k.acquire(
            "t2", "a", on_wake=lambda t, r: wakes.append(r.outcome)
        ).outcome is Outcome.BLOCKED
        assert k.abort("t2").ok
        assert wakes == [Outcome.ERROR]
        assert k.live_txns() == ("t1",)
        # t1's lock is untouched by t2's departure.
        assert k.held("t1") == {"a": LockMode.EXCLUSIVE}

    def test_upgrade_shared_to_exclusive_is_not_misuse(self):
        """Cross-mode re-acquisition is the upgrade path: it goes through
        the ordinary conflict check, not the duplicate-acquire guard."""
        k = audited_kernel()
        assert k.begin("t1").ok
        assert k.acquire("t1", "a", LockMode.SHARED).ok
        assert k.acquire("t1", "a", LockMode.EXCLUSIVE).ok  # sole holder
        assert k.held("t1") == {"a": LockMode.EXCLUSIVE}

    def test_upgrade_blocks_behind_other_shared_holder(self):
        k = audited_kernel()
        assert k.begin("t1").ok and k.begin("t2").ok
        assert k.acquire("t1", "a", LockMode.SHARED).ok
        assert k.acquire("t2", "a", LockMode.SHARED).ok
        response = k.acquire("t1", "a", LockMode.EXCLUSIVE)
        assert response.outcome is Outcome.BLOCKED
        assert response.blockers == ("t2",)


class TestProtocolMisuse:
    """Each misuse case: refused, zero state mutation, one audit entry."""

    def test_release_of_unheld_lock(self):
        k = audited_kernel()
        assert k.begin("t1").ok
        with MisuseProbe(k) as probe:
            probe.expect_refusal(
                k.release("t1", "never-locked"), Outcome.ERROR, "no lock"
            )

    def test_duplicate_same_mode_acquire(self):
        k = audited_kernel()
        assert k.begin("t1").ok
        assert k.acquire("t1", "a", LockMode.SHARED).ok
        with MisuseProbe(k) as probe:
            probe.expect_refusal(
                k.acquire("t1", "a", LockMode.SHARED),
                Outcome.ERROR, "already holds SHARED",
            )

    def test_commit_while_blocked(self):
        k = audited_kernel()
        assert k.begin("t1").ok and k.begin("t2").ok
        assert k.acquire("t1", "a").ok
        assert k.acquire("t2", "a").outcome is Outcome.BLOCKED
        with MisuseProbe(k) as probe:
            probe.expect_refusal(
                k.commit("t2"), Outcome.ERROR, "only abort"
            )
        # The parked request is still alive and resolves normally.
        assert k.commit("t1").ok
        assert k.held("t2") == {"a": LockMode.EXCLUSIVE}

    @pytest.mark.parametrize("op", ["acquire", "release", "commit", "abort"])
    def test_ops_on_unknown_txn(self, op):
        k = audited_kernel()
        assert k.begin("other").ok  # some unrelated state to not mutate
        assert k.acquire("other", "x").ok
        with MisuseProbe(k) as probe:
            if op == "acquire":
                response = k.acquire("ghost", "a")
            elif op == "release":
                response = k.release("ghost", "a")
            else:
                response = getattr(k, op)("ghost")
            probe.expect_refusal(response, Outcome.ERROR, "unknown")

    @pytest.mark.parametrize("op", ["acquire", "release", "commit", "abort"])
    def test_ops_on_finished_txn(self, op):
        k = audited_kernel()
        assert k.begin("t1").ok
        assert k.commit("t1").ok
        with MisuseProbe(k) as probe:
            if op == "acquire":
                response = k.acquire("t1", "a")
            elif op == "release":
                response = k.release("t1", "a")
            else:
                response = getattr(k, op)("t1")
            probe.expect_refusal(response, Outcome.ERROR, "already finished")

    def test_begin_of_live_or_finished_name(self):
        k = audited_kernel()
        assert k.begin("t1").ok
        with MisuseProbe(k) as probe:
            probe.expect_refusal(k.begin("t1"), Outcome.ERROR, "exists")
        assert k.commit("t1").ok
        with MisuseProbe(k) as probe:
            probe.expect_refusal(k.begin("t1"), Outcome.ERROR, "finished")

    def test_acquire_while_blocked(self):
        k = audited_kernel()
        assert k.begin("t1").ok and k.begin("t2").ok
        assert k.acquire("t1", "a").ok
        assert k.acquire("t2", "a").outcome is Outcome.BLOCKED
        with MisuseProbe(k) as probe:
            probe.expect_refusal(
                k.acquire("t2", "b"), Outcome.ERROR, "blocked"
            )

    def test_every_request_is_audited(self):
        """No audit-free path: each API call appends at least one entry."""
        k = audited_kernel()
        before = len(k.audit)
        for call in (
            lambda: k.begin("t1"),
            lambda: k.acquire("t1", "a"),
            lambda: k.acquire("t1", "a"),        # misuse
            lambda: k.release("t1", "b"),        # misuse
            lambda: k.release("t1", "a"),
            lambda: k.commit("t1"),
            lambda: k.commit("t1"),              # misuse (finished)
        ):
            call()
            after = len(k.audit)
            assert after > before, "an API call left no audit entry"
            before = after


class TestAdmissionAndDrain:
    def test_admission_hook_denies_before_any_state_change(self):
        def hook(op, txn, entity, mode):
            if op == "acquire" and entity == "forbidden":
                return "entity is off-limits"
            return None

        k = LockKernel(audit=AuditLog(), admission_hook=hook)
        assert k.begin("t1").ok
        with MisuseProbe(k) as probe:
            probe.expect_refusal(
                k.acquire("t1", "forbidden"), Outcome.DENIED, "off-limits"
            )
        assert last_audit(k).decision == "denied"
        assert k.acquire("t1", "allowed").ok

    def test_max_live_admission_control(self):
        k = LockKernel(audit=AuditLog(), max_live=1)
        assert k.begin("t1").ok
        with MisuseProbe(k) as probe:
            probe.expect_refusal(
                k.begin("t2"), Outcome.ERROR, "admission control"
            )
        assert k.commit("t1").ok
        assert k.begin("t2").ok

    def test_drain_cancels_blocked_and_aborts_live(self):
        k = audited_kernel()
        assert k.begin("t1").ok and k.begin("t2").ok
        assert k.acquire("t1", "a").ok
        wakes = []
        assert k.acquire(
            "t2", "a", on_wake=lambda t, r: wakes.append((t, r.outcome))
        ).outcome is Outcome.BLOCKED
        drained = k.drain()
        assert drained == ("t1", "t2")
        assert wakes == [("t2", Outcome.ERROR)]
        assert k.live_txns() == ()
        assert k.state_fingerprint()[0] == ()  # no holders remain
        # Draining kernel refuses new work, audited.
        with MisuseProbe(k) as probe:
            probe.expect_refusal(k.begin("t3"), Outcome.ERROR, "draining")
        assert k.drain() == ()  # idempotent
