"""Tests for the dynamic tree policy (rules DT0-DT3, Fig. 5, Theorem 4)."""

import pytest

from repro.core import is_serializable
from repro.core.states import StructuralState
from repro.policies import (
    Access,
    DtrPolicy,
    check_dtr_schedule,
    check_tree_locked,
)
from repro.sim import Simulator, WorkloadItem, random_access_workload


def _init(*entities):
    return StructuralState(frozenset(entities))


class TestForestManagement:
    def test_dt0_initially_empty(self):
        ctx = DtrPolicy().create_context()
        assert len(ctx.forest) == 0

    def test_dt2_first_transaction_builds_tree(self):
        ctx = DtrPolicy().create_context()
        ctx.begin("T1", [Access(1), Access(2), Access(3)])
        assert ctx.forest.nodes() == {1, 2, 3}
        assert len(ctx.forest.roots()) == 1

    def test_dt1_new_entity_joins_under_existing_root(self):
        # Fig. 5: T2 accesses node 4 -> added to the forest under the root.
        ctx = DtrPolicy().create_context()
        ctx.begin("T1", [Access(1), Access(2), Access(3)])
        root = next(iter(ctx.forest.roots()))
        ctx.begin("T2", [Access(2), Access(4)])
        assert 4 in ctx.forest
        assert ctx.forest.root_of(4) == root
        assert ctx.join_log if hasattr(ctx, "join_log") else True

    def test_dt1_joins_separate_trees(self):
        ctx = DtrPolicy().create_context()
        ctx.begin("Ta", [Access("x")]).on_commit()
        ctx.begin("Tb", [Access("y")]).on_commit()
        # x and y may live in separate trees (or have been cleaned up);
        # a transaction touching both forces a single tree.
        ctx.begin("Tc", [Access("x"), Access("y")])
        assert ctx.forest.same_tree("x", "y")

    def test_dt3_cleanup_after_commit(self):
        ctx = DtrPolicy().create_context()
        s1 = ctx.begin("T1", [Access(1), Access(2)])
        s2 = ctx.begin("T2", [Access(2), Access(4)])
        # finish T2 -> node 4 no longer needed by any active plan
        while s2.peek() is not None:
            s2.executed()
        s2.on_commit()
        assert 4 not in ctx.forest  # deleted by DT3
        # ...but 2 survives: T1's plan still needs it.
        assert 2 in ctx.forest

    def test_dt3_respects_active_plans(self):
        ctx = DtrPolicy().create_context()
        ctx.begin("T1", [Access(1), Access(2)])
        assert not ctx.can_delete(1)
        assert not ctx.can_delete(2)


class TestTreeLocking:
    def test_sessions_are_tree_locked(self):
        ctx = DtrPolicy().create_context()
        session = ctx.begin("T1", [Access(1), Access(2), Access(3)])
        from repro.core.transactions import Transaction

        txn = Transaction("T1", tuple(session._steps))
        assert txn.is_well_formed()
        assert check_tree_locked(txn, ctx.plan_parents["T1"]) == []

    def test_lock_once(self):
        ctx = DtrPolicy().create_context()
        session = ctx.begin("T1", [Access(1), Access(2), Access(1)])
        locked = [s.entity for s in session._steps if s.is_lock]
        assert len(locked) == len(set(locked))

    def test_checker_flags_parent_skips(self):
        from repro.core.transactions import Transaction

        txn = Transaction.from_text("T", "(LX 2) (W 2) (UX 2)")
        # Pretend 2's parent is 1 and 2 is not the first lock of the plan...
        txn2 = Transaction.from_text("T", "(LX 9) (UX 9) (LX 2) (W 2) (UX 2)")
        violations = check_tree_locked(txn2, {9: None, 2: 1})
        assert violations  # parent 1 never locked


class TestTheorem4Empirically:
    @pytest.mark.parametrize("seed", range(8))
    def test_runs_serializable(self, seed):
        items, init = random_access_workload(6, 5, 3, seed=seed)
        result = Simulator(DtrPolicy(), seed=seed).run(items, init)
        assert is_serializable(result.schedule)

    @pytest.mark.parametrize("seed", range(4))
    def test_hot_contention_serializable(self, seed):
        items, init = random_access_workload(4, 6, 3, hot_fraction=0.5, seed=seed)
        result = Simulator(DtrPolicy(), seed=seed).run(items, init)
        assert is_serializable(result.schedule)

    def test_fig5_scenario(self):
        """T1 over {1,2,3}; T2 over {2,4}; T3 over {3,5}: forest grows by
        DT1/DT2 and the extra nodes disappear after commits (DT3)."""
        items = [
            WorkloadItem("T1", [Access(1), Access(2), Access(3)]),
            WorkloadItem("T2", [Access(2), Access(4)]),
            WorkloadItem("T3", [Access(3), Access(5)]),
        ]
        init = _init(1, 2, 3, 4, 5)
        result = Simulator(DtrPolicy(), seed=1).run(items, init)
        assert set(result.committed) == {"T1", "T2", "T3"}
        assert is_serializable(result.schedule)
        ctx = result.context
        assert len(ctx.forest) == 0 or ctx.delete_log  # cleanup happened
