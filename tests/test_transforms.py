"""Tests for Lemma 1 (transpose), Lemma 2 (move), and canonicalisation."""

import pytest

from repro import (
    StructuralState,
    Schedule,
    Transaction,
    canonicalize,
    is_serializable,
    move,
    serializability_graph,
    split_at_first_cycle,
    transpose,
)
from repro.core.transforms import CanonicalizationTrace, is_sink_of_prefix
from repro.exceptions import ModelError


@pytest.fixture
def nonserializable_schedule(nontwophase_pair):
    t1, t2 = nontwophase_pair
    # T1 writes a, releases; T2 writes b then a; T1 then writes b -> cycle.
    return Schedule.from_order(
        [t1, t2],
        ["T1", "T1", "T1", "T2", "T2", "T2", "T2", "T2", "T2", "T1", "T1", "T1"],
    )


class TestTranspose:
    def test_transpose_swaps(self, simple_locked_pair):
        s = Schedule.serial(simple_locked_pair)
        # positions 2 (UX a by T1) and 3 (LX a by T2) conflict; pick 1,2? the
        # pair (I a by T1, LX a by T2) also conflicts, so use a schedule with
        # adjacent non-conflicting steps instead:
        t1 = Transaction.from_text("T1", "(LX a) (W a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX b) (W b) (UX b)")
        s = Schedule.from_order([t1, t2], ["T1", "T2", "T1", "T2", "T1", "T2"])
        swapped = transpose(s, 0)
        assert [e.txn for e in swapped][:2] == ["T2", "T1"]

    def test_lemma1_preserves_legal_proper_and_graph(self):
        t1 = Transaction.from_text("T1", "(LX a) (I a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX b) (I b) (UX b)")
        s = Schedule.from_order([t1, t2], ["T1", "T2", "T1", "T2", "T1", "T2"])
        assert s.is_legal() and s.is_proper()
        g = serializability_graph(s)
        for pos in range(len(s) - 1):
            a, b = s.events[pos], s.events[pos + 1]
            if a.txn == b.txn or a.conflicts_with(b):
                continue
            swapped = transpose(s, pos)
            assert swapped.is_legal()
            assert swapped.is_proper()
            g2 = serializability_graph(swapped)
            assert g.edges == g2.edges and g.nodes == g2.nodes

    def test_transpose_same_transaction_rejected(self, simple_locked_pair):
        s = Schedule.serial(simple_locked_pair)
        with pytest.raises(ModelError):
            transpose(s, 0)  # both events belong to T1

    def test_transpose_conflicting_rejected(self):
        t1 = Transaction.from_text("T1", "(LX a) (W a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX a) (W a) (UX a)")
        s = Schedule.from_order([t1, t2], ["T1", "T1", "T1", "T2", "T2", "T2"])
        with pytest.raises(ModelError, match="conflict"):
            transpose(s, 2)  # (UX a) then (LX a)


class TestMove:
    def test_move_matches_paper_definition(self):
        t1 = Transaction.from_text("T1", "(LX a) (W a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX b) (W b) (UX b)")
        s = Schedule.from_order([t1, t2], ["T1", "T2", "T1", "T2", "T1", "T2"])
        moved = move(s, 4, "T1")  # move T1's steps inside the 4-prefix back
        txns = [e.txn for e in moved]
        # prefix had T1,T2,T1,T2: non-T1 part (T2,T2) first, then T1,T1,
        # then the untouched suffix T1,T2.
        assert txns == ["T2", "T2", "T1", "T1", "T1", "T2"]

    def test_move_preserves_internal_order(self):
        t1 = Transaction.from_text("T1", "(LX a) (W a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX b) (W b) (UX b)")
        s = Schedule.from_order([t1, t2], ["T1", "T2", "T1", "T2", "T1", "T2"])
        moved = move(s, 4, "T1")
        t1_steps = [e.index for e in moved if e.txn == "T1"]
        assert t1_steps == sorted(t1_steps)

    def test_lemma2_preserves_properties(self):
        # T2 is a sink of the prefix graph; moving it must keep everything.
        t1 = Transaction.from_text("T1", "(LX a) (I a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX a) (W a) (UX a)")
        t3 = Transaction.from_text("T3", "(LX b) (I b) (UX b)")
        s = Schedule.from_order(
            [t1, t2, t3],
            ["T1", "T1", "T1", "T3", "T2", "T3", "T2", "T3", "T2"],
        )
        assert s.is_legal() and s.is_proper()
        prefix_len = 7
        assert is_sink_of_prefix(s, prefix_len, "T2")
        g = serializability_graph(s)
        moved = move(s, prefix_len, "T2")
        assert moved.is_legal() and moved.is_proper()
        assert serializability_graph(moved).edges == g.edges

    def test_move_out_of_range(self, simple_locked_pair):
        s = Schedule.serial(simple_locked_pair)
        with pytest.raises(IndexError):
            move(s, 99, "T1")


class TestSplit:
    def test_split_serializable_returns_none(self, simple_locked_pair):
        assert split_at_first_cycle(Schedule.serial(simple_locked_pair)) is None

    def test_split_finds_lock_step(self, nonserializable_schedule):
        found = split_at_first_cycle(nonserializable_schedule)
        assert found is not None
        minus_len, closing = found
        assert closing.step.is_lock
        prefix = nonserializable_schedule.prefix(minus_len)
        assert serializability_graph(prefix).is_acyclic()
        plus = nonserializable_schedule.prefix(minus_len + 1)
        assert not serializability_graph(plus).is_acyclic()


class TestCanonicalize:
    def test_canonicalize_two_transaction_cycle(self, nonserializable_schedule):
        witness = canonicalize(nonserializable_schedule)
        ab = StructuralState.of("a", "b")
        assert witness.is_valid(ab)
        sprime = witness.serial_prefix_schedule()
        assert sprime.is_serial()
        assert sprime.is_legal() and sprime.is_proper(ab)

    def test_canonicalize_rejects_serializable(self, simple_locked_pair):
        with pytest.raises(ModelError, match="serializable"):
            canonicalize(Schedule.serial(simple_locked_pair))

    def test_canonicalize_condition1(self, nonserializable_schedule):
        witness = canonicalize(nonserializable_schedule)
        tc = witness.tc
        cut = witness.prefix_lengths[tc.name]
        assert any(s.is_unlock for s in tc.steps[:cut])
        pending = tc.steps[cut]
        assert pending.is_lock and pending.entity == witness.entity

    def test_canonicalize_exclusive_variant(self, nonserializable_schedule):
        # All locks exclusive -> unique sink (Section 3.3).
        witness = canonicalize(nonserializable_schedule)
        assert witness.satisfies_exclusive_variant()

    def test_canonicalize_records_trace(self, nonserializable_schedule):
        trace = CanonicalizationTrace()
        canonicalize(nonserializable_schedule, trace)
        assert trace.serialization_moves  # at least the topological pass ran

    def test_canonicalize_fig2(self, fig2_sp):
        assert fig2_sp.is_legal() and fig2_sp.is_proper()
        assert not is_serializable(fig2_sp)
        witness = canonicalize(fig2_sp)
        assert witness.is_valid()
        # Dynamic-database shape: in Fig 2-style systems T_c need not be
        # first in the serial order (the paper's first structural remark).
        assert len(witness.transactions) == 3

    def test_canonical_completion_is_nonserializable(self, nonserializable_schedule):
        witness = canonicalize(nonserializable_schedule)
        ab = StructuralState.of("a", "b")
        realized = witness.realize(ab)
        assert realized.is_complete
        assert realized.is_legal() and realized.is_proper(ab)
        assert not is_serializable(realized)
