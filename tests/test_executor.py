"""The phase-pipelined shard executor.

The classify phase fans shard-local work slices out to an executor —
``SerialExecutor`` (the byte-identical reference) or the thread-pooled
``ParallelExecutor`` with its deterministic merge barrier.  The contract
under test:

1. **Byte-identical output across executors.**  For every registered
   grid factory, a seeded run's whole :class:`SeedOutcome` is equal for
   every ``shard_workers`` in {0, 2, 4} at every ``lock_shards`` in
   {1, 4, 8}; end to end, ``CellResult.row()`` dicts through the grid
   runner match too.
2. **Routing agrees with the lock table.**  ``LockTable.shard_of`` is
   the same rule ``_part`` routes operations through, and the admission
   cache's check-set partition is a true partition: disjoint sorted
   slices whose union is exactly the legacy ``take_check_set``, with
   every session either in its pending entity's shard slice or in the
   global (coordinator) slice.
3. **Executor stats stay out of the metric summaries** — they ride on
   ``SimResult.executor_stats`` so shard_workers cannot perturb the
   SeedOutcome equality above.
"""

import dataclasses
import random

import pytest

from repro.policies import AltruisticPolicy, DdagPolicy, TwoPhasePolicy
from repro.sim import (
    GRID_FACTORIES,
    AdmissionCache,
    GridSpec,
    LockTable,
    ParallelExecutor,
    PolicySpec,
    SerialExecutor,
    Simulator,
    WorkloadSpec,
    grid_factory,
    make_executor,
    run_grid,
    run_seed,
)

SHARD_COUNTS = (1, 4, 8)
WORKER_COUNTS = (0, 2, 4)

# Small-but-contended kwargs per registered factory, plus the policy that
# exercises the factory's intended scenario.  Every registered name must
# appear (the guard test fails loud otherwise), and one extra altruistic
# cell keeps dependency-declaring sessions — the global-slice spill path —
# under parallel coverage.
FACTORY_CELLS = {
    "stress": (
        TwoPhasePolicy,
        {"num_entities": 30, "num_txns": 40, "arrival_rate": 1.0,
         "hot_fraction": 0.1},
    ),
    "deadlock_storm": (
        TwoPhasePolicy,
        {"num_entities": 20, "num_txns": 30, "accesses_per_txn": 2,
         "arrival_rate": 0.5, "hot_set_size": 4, "hot_traffic": 0.7},
    ),
    "long_transaction": (
        AltruisticPolicy,
        {"num_entities": 12, "num_short": 6, "short_start": 4},
    ),
    "random_access": (TwoPhasePolicy, {"num_entities": 8, "num_txns": 8}),
    "traversal": (DdagPolicy, {"nodes": 8, "num_txns": 5}),
    "dynamic_traversal": (DdagPolicy, {"nodes": 8, "num_txns": 5}),
}

EXTRA_CELLS = {
    "stress+altruistic": (
        "stress",
        AltruisticPolicy,
        {"num_entities": 30, "num_txns": 40, "arrival_rate": 1.0,
         "hot_fraction": 0.1},
    ),
}


class TestMakeExecutor:
    def test_zero_workers_is_the_serial_reference(self):
        ex = make_executor(0)
        assert isinstance(ex, SerialExecutor)
        assert ex.snapshot()["executor"] == "serial"

    def test_positive_workers_build_a_pool(self):
        ex = make_executor(2)
        try:
            assert isinstance(ex, ParallelExecutor)
            snap = ex.snapshot()
            assert snap["executor"] == "parallel"
            assert snap["shard_workers"] == 2
        finally:
            ex.shutdown()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="shard_workers"):
            make_executor(-1)
        with pytest.raises(ValueError, match="shard_workers"):
            Simulator(TwoPhasePolicy(), shard_workers=-1)

    def test_shard_workers_require_the_event_engine(self):
        with pytest.raises(ValueError, match="event"):
            Simulator(TwoPhasePolicy(), engine="naive", shard_workers=2)


class TestExecutorEquivalence:
    """The acceptance matrix: SeedOutcomes are byte-identical for
    ``shard_workers`` in {0, 2, 4} at ``lock_shards`` in {1, 4, 8}."""

    @pytest.mark.parametrize("factory_name", sorted(GRID_FACTORIES))
    def test_every_factory_is_worker_invariant(self, factory_name):
        assert factory_name in FACTORY_CELLS, (
            f"add a FACTORY_CELLS entry for new factory {factory_name!r}"
        )
        policy_cls, kwargs = FACTORY_CELLS[factory_name]
        self._assert_matrix(factory_name, policy_cls, kwargs, seed=0)

    @pytest.mark.parametrize("cell", sorted(EXTRA_CELLS))
    def test_extra_cells_are_worker_invariant(self, cell):
        factory_name, policy_cls, kwargs = EXTRA_CELLS[cell]
        self._assert_matrix(factory_name, policy_cls, kwargs, seed=1)

    def _assert_matrix(self, factory_name, policy_cls, kwargs, seed):
        ref = None
        for shards in SHARD_COUNTS:
            for workers in WORKER_COUNTS:
                items, initial, context_kwargs = grid_factory(factory_name)(
                    seed, **kwargs
                )
                outcome = run_seed(
                    policy_cls(), items, initial, seed,
                    context_kwargs=context_kwargs,
                    max_ticks=500_000,
                    lock_shards=shards,
                    shard_workers=workers,
                )
                if ref is None:
                    ref = outcome
                    assert ref.error is None, f"seed run failed: {ref.error}"
                    continue
                assert outcome == ref, (
                    f"{factory_name}: SeedOutcome diverges at "
                    f"shards={shards} shard_workers={workers}"
                )

    def test_grid_cell_rows_identical_across_worker_counts(self):
        """End to end through the grid runner: ``shard_workers=2`` must
        produce byte-identical ``CellResult.row()`` dicts to the serial
        reference."""
        spec = GridSpec(
            policies=(PolicySpec(TwoPhasePolicy), PolicySpec(AltruisticPolicy)),
            workloads=(
                WorkloadSpec("deadlock_storm", {
                    "num_entities": 20, "num_txns": 25, "accesses_per_txn": 2,
                    "arrival_rate": 0.5, "hot_set_size": 4, "hot_traffic": 0.7,
                }),
            ),
            seeds=(0, 1),
            max_ticks=500_000,
            check_serializability=True,
            lock_shards=4,
            shard_workers=0,
        )
        reference = run_grid(spec, workers=0)
        parallel = run_grid(
            dataclasses.replace(spec, shard_workers=2), workers=0
        )
        assert [c.row() for c in parallel] == [c.row() for c in reference]
        assert [c.work_means for c in parallel] == [
            c.work_means for c in reference
        ]


class TestShardRouting:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_shard_of_agrees_with_part_routing(self, shards):
        """``shard_of`` is the one hashing rule: the partition it names is
        exactly the partition ``_part`` routes lock operations to."""
        rng = random.Random(42)
        table = LockTable(shards=shards)
        entities = (
            [f"e{i}" for i in range(50)]
            + [rng.randrange(10_000) for _ in range(50)]
            + [("node", i) for i in range(50)]
        )
        for entity in entities:
            s = table.shard_of(entity)
            assert 0 <= s < shards
            assert table._parts[s] is table._part(entity)

    def _spy_records(self, monkeypatch):
        """Wrap ``take_check_slices`` to capture, per tick: the legacy
        check set (computed pre-drain), each session's routing facts, and
        the slices actually handed to the executor."""
        records = []
        orig = AdmissionCache.take_check_slices

        def spy(self, shard_of, shards):
            live = self._live
            expected = sorted(
                n for n in (self.dirty | self.dynamic)
                if n in live and n not in self.complete
            )
            meta = {}
            for n in expected:
                entry = live[n]
                step = entry.session.peek()
                lock_shard = None
                if (step is not None and (step.is_lock or step.is_unlock)
                        and step.lock_mode is not None):
                    lock_shard = shard_of(step.entity)
                meta[n] = (
                    bool(entry.needs_admission or entry.tracks_deps),
                    lock_shard,
                )
            slices, global_slice = orig(self, shard_of, shards)
            records.append(
                (expected, meta, [list(s) for s in slices], list(global_slice))
            )
            return slices, global_slice

        monkeypatch.setattr(AdmissionCache, "take_check_slices", spy)
        return records

    # The last flag says whether the cell is *expected* to route work to
    # shard slices: DDAG and altruistic sessions declare invalidation
    # dependencies, so those cells legitimately classify everything on
    # the coordinator — the partition invariants still have to hold.
    @pytest.mark.parametrize("cell", [
        ("deadlock_storm", TwoPhasePolicy,
         {"num_entities": 20, "num_txns": 30, "accesses_per_txn": 2,
          "arrival_rate": 0.5, "hot_set_size": 4, "hot_traffic": 0.7},
         True),
        ("dynamic_traversal", DdagPolicy, {"nodes": 8, "num_txns": 5},
         False),
        ("stress", AltruisticPolicy,
         {"num_entities": 30, "num_txns": 40, "arrival_rate": 1.0,
          "hot_fraction": 0.1},
         False),
    ], ids=lambda c: f"{c[0]}+{c[1].__name__}")
    def test_check_slices_are_a_true_partition(self, monkeypatch, cell):
        factory_name, policy_cls, kwargs, expect_sharded = cell
        records = self._spy_records(monkeypatch)
        items, initial, context_kwargs = grid_factory(factory_name)(
            3, **kwargs
        )
        sim = Simulator(
            policy_cls(), seed=3, max_ticks=500_000,
            context_kwargs=context_kwargs, engine="event", lock_shards=4,
        )
        sim.run(items, initial)

        assert records, "the classify phase never drained a check set"
        saw_sharded = False
        for expected, meta, slices, global_slice in records:
            all_names = [n for s in slices for n in s] + global_slice
            # A true partition: disjoint, and the union is exactly the
            # legacy check set.
            assert sorted(all_names) == expected
            assert len(all_names) == len(set(all_names))
            for shard, names in enumerate(slices):
                # Each slice preserves the merged sorted order.
                assert names == sorted(names)
                if names:
                    saw_sharded = True
                for n in names:
                    coordinator_only, lock_shard = meta[n]
                    assert not coordinator_only, (
                        f"{n}: admission/dependency session left the "
                        "coordinator"
                    )
                    assert lock_shard == shard, (
                        f"{n}: routed to shard {shard}, pending entity "
                        f"hashes to {lock_shard}"
                    )
            assert global_slice == sorted(global_slice)
            for n in global_slice:
                coordinator_only, lock_shard = meta[n]
                assert coordinator_only or lock_shard is None, (
                    f"{n}: shardable session spilled to the global slice"
                )
        assert saw_sharded == expect_sharded, (
            "shard-slice routing expectation violated for this cell"
        )


class TestExecutorStats:
    def _run(self, shard_workers):
        items, initial, context_kwargs = grid_factory("deadlock_storm")(
            0, num_entities=20, num_txns=25, accesses_per_txn=2,
            arrival_rate=0.5, hot_set_size=4, hot_traffic=0.7,
        )
        sim = Simulator(
            TwoPhasePolicy(), seed=0, max_ticks=500_000,
            context_kwargs=context_kwargs, engine="event",
            lock_shards=4, shard_workers=shard_workers,
        )
        return sim.run(items, initial)

    def test_snapshot_shape_and_partition_counters(self):
        serial = self._run(0)
        parallel = self._run(2)
        assert serial.executor_stats["executor"] == "serial"
        assert serial.executor_stats["parallel_ticks"] == 0
        assert parallel.executor_stats["executor"] == "parallel"
        assert parallel.executor_stats["shard_workers"] == 2
        assert parallel.executor_stats["parallel_ticks"] > 0
        # Both executors see the identical partition of the same run.
        for key in ("sharded_classifications", "spill_classifications",
                    "classify_ticks", "spill_fraction"):
            assert serial.executor_stats[key] == parallel.executor_stats[key]
        assert parallel.executor_stats["sharded_classifications"] > 0

    def test_stats_stay_out_of_the_metric_summaries(self):
        """The SeedOutcome equality above holds *because* executor
        counters never leak into ``summary()``/``work_summary()``."""
        result = self._run(2)
        for key in result.executor_stats:
            assert key not in result.metrics.summary()
            assert key not in result.metrics.work_summary()
