"""The phase-pipelined shard executor.

The classify phase fans shard-local work slices out to an executor —
``SerialExecutor`` (the byte-identical reference), the thread-pooled
``ParallelExecutor``, or the replica-owning ``ProcessExecutor`` — behind
one deterministic merge barrier.  The contract under test:

1. **Byte-identical output across executors.**  For every registered
   grid factory, a seeded run's whole :class:`SeedOutcome` is equal for
   every ``(shard_workers, executor)`` configuration at every
   ``lock_shards`` in {1, 4, 8}; end to end, ``CellResult.row()`` dicts
   through the grid runner match too.
2. **Routing agrees with the lock table.**  ``LockTable.shard_of`` is
   the same rule ``_part`` routes operations through, and the admission
   cache's check-set partition is a true partition: disjoint sorted
   slices whose union is exactly the legacy ``take_check_set``.  Since
   the spill-slashing routing landed, admission-needing sessions ride
   their pending entity's shard slice and dependency-declaring sessions
   whose channels all hash to one shard ride that shard's slice; only
   the genuinely entity-less / cross-shard residue spills, with an
   attributed cause.
3. **Executor stats stay out of the metric summaries** — they ride on
   ``SimResult.executor_stats`` so the configuration cannot perturb the
   SeedOutcome equality above — and ``spill_fraction`` is computed from
   the classifications each executor *actually executed*, not from a
   routing recount.
4. **The process executor's replica protocol**: lock-table holder deltas
   are exact, compact, and drained lazily; under-batch ticks never pay
   an IPC round trip.
"""

import dataclasses
import random

import pytest

import repro.sim.executor as executor_module
from repro.core.operations import LockMode
from repro.policies import AltruisticPolicy, DdagPolicy, TwoPhasePolicy
from repro.sim import (
    GRID_FACTORIES,
    AdmissionCache,
    GridSpec,
    LockTable,
    ParallelExecutor,
    PolicySpec,
    ProcessExecutor,
    SerialExecutor,
    Simulator,
    WorkloadSpec,
    grid_factory,
    make_executor,
    run_grid,
    run_seed,
)
from repro.sim.executor import ExecutorStats

SHARD_COUNTS = (1, 4, 8)
#: The (shard_workers, executor) configurations of the acceptance
#: matrix; (0, "serial") is the reference row.
EXECUTOR_CONFIGS = (
    (0, "serial"),
    (2, "thread"),
    (4, "thread"),
    (2, "process"),
    (4, "process"),
)

# Small-but-contended kwargs per registered factory, plus the policy that
# exercises the factory's intended scenario.  Every registered name must
# appear (the guard test fails loud otherwise), and one extra altruistic
# cell keeps dependency-declaring sessions — the channel-routing path —
# under parallel coverage.
FACTORY_CELLS = {
    "stress": (
        TwoPhasePolicy,
        {"num_entities": 30, "num_txns": 40, "arrival_rate": 1.0,
         "hot_fraction": 0.1},
    ),
    "deadlock_storm": (
        TwoPhasePolicy,
        {"num_entities": 20, "num_txns": 30, "accesses_per_txn": 2,
         "arrival_rate": 0.5, "hot_set_size": 4, "hot_traffic": 0.7},
    ),
    "long_transaction": (
        AltruisticPolicy,
        {"num_entities": 12, "num_short": 6, "short_start": 4},
    ),
    "random_access": (TwoPhasePolicy, {"num_entities": 8, "num_txns": 8}),
    "traversal": (DdagPolicy, {"nodes": 8, "num_txns": 5}),
    "dynamic_traversal": (DdagPolicy, {"nodes": 8, "num_txns": 5}),
}

EXTRA_CELLS = {
    "stress+altruistic": (
        "stress",
        AltruisticPolicy,
        {"num_entities": 30, "num_txns": 40, "arrival_rate": 1.0,
         "hot_fraction": 0.1},
    ),
}


@pytest.fixture
def fast_process_executor(monkeypatch):
    """Make process-executor runs affordable in the matrix: fork (no
    fresh-interpreter start-up) and a batch threshold of 1 so every tick
    actually ships work over the pipes."""
    monkeypatch.setattr(executor_module, "PROCESS_START_METHOD", "fork")
    monkeypatch.setattr(executor_module, "PROCESS_MIN_BATCH", 1)


class TestMakeExecutor:
    def test_zero_workers_is_the_serial_reference(self):
        ex = make_executor(0)
        assert isinstance(ex, SerialExecutor)
        assert ex.snapshot()["executor"] == "serial"

    def test_serial_kind_forces_the_reference_at_any_count(self):
        ex = make_executor(4, kind="serial")
        assert isinstance(ex, SerialExecutor)

    def test_positive_workers_build_a_thread_pool(self):
        ex = make_executor(2)
        try:
            assert isinstance(ex, ParallelExecutor)
            snap = ex.snapshot()
            assert snap["executor"] == "thread"
            assert snap["shard_workers"] == 2
        finally:
            ex.shutdown()

    def test_process_kind_builds_the_process_executor(self):
        ex = make_executor(2, kind="process")
        try:
            assert isinstance(ex, ProcessExecutor)
            snap = ex.snapshot()
            assert snap["executor"] == "process"
            assert snap["shard_workers"] == 2
            assert ex.min_batch == executor_module.PROCESS_MIN_BATCH
        finally:
            ex.shutdown()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="shard_workers"):
            make_executor(-1)
        with pytest.raises(ValueError, match="shard_workers"):
            Simulator(TwoPhasePolicy(), shard_workers=-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            make_executor(2, kind="gpu")
        with pytest.raises(ValueError, match="executor"):
            Simulator(TwoPhasePolicy(), executor="gpu")

    def test_shard_workers_require_the_event_engine(self):
        with pytest.raises(ValueError, match="event"):
            Simulator(TwoPhasePolicy(), engine="naive", shard_workers=2)


class TestExecutorEquivalence:
    """The acceptance matrix: SeedOutcomes are byte-identical for every
    ``(shard_workers, executor)`` configuration at ``lock_shards`` in
    {1, 4, 8}."""

    @pytest.mark.parametrize("factory_name", sorted(GRID_FACTORIES))
    def test_every_factory_is_executor_invariant(
        self, factory_name, fast_process_executor
    ):
        assert factory_name in FACTORY_CELLS, (
            f"add a FACTORY_CELLS entry for new factory {factory_name!r}"
        )
        policy_cls, kwargs = FACTORY_CELLS[factory_name]
        self._assert_matrix(factory_name, policy_cls, kwargs, seed=0)

    @pytest.mark.parametrize("cell", sorted(EXTRA_CELLS))
    def test_extra_cells_are_executor_invariant(
        self, cell, fast_process_executor
    ):
        factory_name, policy_cls, kwargs = EXTRA_CELLS[cell]
        self._assert_matrix(factory_name, policy_cls, kwargs, seed=1)

    def _assert_matrix(self, factory_name, policy_cls, kwargs, seed):
        ref = None
        for shards in SHARD_COUNTS:
            for workers, kind in EXECUTOR_CONFIGS:
                items, initial, context_kwargs = grid_factory(factory_name)(
                    seed, **kwargs
                )
                outcome = run_seed(
                    policy_cls(), items, initial, seed,
                    context_kwargs=context_kwargs,
                    max_ticks=500_000,
                    lock_shards=shards,
                    shard_workers=workers,
                    executor=kind,
                )
                if ref is None:
                    ref = outcome
                    assert ref.error is None, f"seed run failed: {ref.error}"
                    continue
                assert outcome == ref, (
                    f"{factory_name}: SeedOutcome diverges at "
                    f"shards={shards} shard_workers={workers} "
                    f"executor={kind}"
                )

    def test_process_executor_under_default_spawn(self):
        """One small default-configuration run: real ``spawn`` workers
        (proving the picklability contract end to end) with the batch
        threshold forced low enough to ship."""
        items, initial, context_kwargs = grid_factory("stress")(
            0, num_entities=30, num_txns=40, arrival_rate=1.0,
            hot_fraction=0.1,
        )
        ref = run_seed(
            TwoPhasePolicy(), items, initial, 0,
            context_kwargs=context_kwargs, max_ticks=500_000,
            lock_shards=4, shard_workers=0,
        )
        sim = Simulator(
            TwoPhasePolicy(), seed=0, max_ticks=500_000,
            context_kwargs=context_kwargs, lock_shards=4,
            shard_workers=2, executor="process",
        )
        sim_run = sim.run(items, initial)
        assert sim_run.metrics.summary() == ref.summary
        assert sim_run.metrics.work_summary() == ref.work

    def test_grid_cell_rows_identical_across_executors(self):
        """End to end through the grid runner: thread and process
        executors must produce byte-identical ``CellResult.row()`` dicts
        to the serial reference."""
        spec = GridSpec(
            policies=(PolicySpec(TwoPhasePolicy), PolicySpec(AltruisticPolicy)),
            workloads=(
                WorkloadSpec("deadlock_storm", {
                    "num_entities": 20, "num_txns": 25, "accesses_per_txn": 2,
                    "arrival_rate": 0.5, "hot_set_size": 4, "hot_traffic": 0.7,
                }),
            ),
            seeds=(0, 1),
            max_ticks=500_000,
            check_serializability=True,
            lock_shards=4,
            shard_workers=0,
        )
        reference = run_grid(spec, workers=0)
        threaded = run_grid(
            dataclasses.replace(spec, shard_workers=2, executor="thread"),
            workers=0,
        )
        assert [c.row() for c in threaded] == [c.row() for c in reference]
        assert [c.work_means for c in threaded] == [
            c.work_means for c in reference
        ]


class TestShardRouting:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_shard_of_agrees_with_part_routing(self, shards):
        """``shard_of`` is the one hashing rule: the partition it names is
        exactly the partition ``_part`` routes lock operations to."""
        rng = random.Random(42)
        table = LockTable(shards=shards)
        entities = (
            [f"e{i}" for i in range(50)]
            + [rng.randrange(10_000) for _ in range(50)]
            + [("node", i) for i in range(50)]
        )
        for entity in entities:
            s = table.shard_of(entity)
            assert 0 <= s < shards
            assert table._parts[s] is table._part(entity)

    def _spy_records(self, monkeypatch):
        """Wrap ``take_check_slices`` to capture, per tick: the legacy
        check set (computed pre-drain), each session's routing facts, and
        the slices actually handed to the executor."""
        records = []
        orig = AdmissionCache.take_check_slices

        def spy(self, shard_of, shards):
            live = self._live
            expected = sorted(
                n for n in (self.dirty | self.dynamic)
                if n in live and n not in self.complete
            )
            meta = {}
            for n in expected:
                entry = live[n]
                step = entry.session.peek()
                entity_shard = None
                if step is not None and step.entity is not None:
                    entity_shard = shard_of(step.entity)
                channel_shards = None
                if entry.tracks_deps:
                    deps = entry.session.admission_dependencies()
                    channel_shards = frozenset(
                        shard_of(ch) for ch in (deps or ())
                    )
                meta[n] = (entry.needs_admission, channel_shards, entity_shard)
            slices, global_slice, spill = orig(self, shard_of, shards)
            records.append((
                expected, meta, [list(s) for s in slices],
                list(global_slice), dict(spill),
            ))
            return slices, global_slice, spill

        monkeypatch.setattr(AdmissionCache, "take_check_slices", spy)
        return records

    # The last flag says whether the cell is *expected* to route work to
    # shard slices.  Since the spill-slashing routing, every cell routes:
    # admission-needing sessions follow their pending entity and
    # dependency-declaring sessions follow their channels' single home
    # shard whenever one exists.
    @pytest.mark.parametrize("cell", [
        ("deadlock_storm", TwoPhasePolicy,
         {"num_entities": 20, "num_txns": 30, "accesses_per_txn": 2,
          "arrival_rate": 0.5, "hot_set_size": 4, "hot_traffic": 0.7},
         True),
        ("dynamic_traversal", DdagPolicy, {"nodes": 8, "num_txns": 5},
         True),
        ("stress", AltruisticPolicy,
         {"num_entities": 30, "num_txns": 40, "arrival_rate": 1.0,
          "hot_fraction": 0.1},
         True),
    ], ids=lambda c: f"{c[0]}+{c[1].__name__}")
    def test_check_slices_are_a_true_partition(self, monkeypatch, cell):
        factory_name, policy_cls, kwargs, expect_sharded = cell
        records = self._spy_records(monkeypatch)
        items, initial, context_kwargs = grid_factory(factory_name)(
            3, **kwargs
        )
        sim = Simulator(
            policy_cls(), seed=3, max_ticks=500_000,
            context_kwargs=context_kwargs, engine="event", lock_shards=4,
        )
        sim.run(items, initial)

        assert records, "the classify phase never drained a check set"
        saw_sharded = False
        for expected, meta, slices, global_slice, spill in records:
            all_names = [n for s in slices for n in s] + global_slice
            # A true partition: disjoint, and the union is exactly the
            # legacy check set.
            assert sorted(all_names) == expected
            assert len(all_names) == len(set(all_names))
            for shard, names in enumerate(slices):
                # Each slice preserves the merged sorted order.
                assert names == sorted(names)
                if names:
                    saw_sharded = True
                for n in names:
                    _, channel_shards, entity_shard = meta[n]
                    if channel_shards:
                        # A dependency-declaring session rides a shard
                        # slice only when *all* its channels hash there.
                        assert channel_shards == {shard}, (
                            f"{n}: routed to shard {shard}, channels hash "
                            f"to {sorted(channel_shards)}"
                        )
                    else:
                        assert entity_shard == shard, (
                            f"{n}: routed to shard {shard}, pending entity "
                            f"hashes to {entity_shard}"
                        )
            assert global_slice == sorted(global_slice)
            for n in global_slice:
                _, channel_shards, entity_shard = meta[n]
                assert (
                    (channel_shards is not None and len(channel_shards) > 1)
                    or (not channel_shards and entity_shard is None)
                ), f"{n}: shardable session spilled to the global slice"
            # Every spill is attributed to a cause, and the causes add up.
            assert sum(spill.values()) == len(global_slice)
            assert set(spill) <= {"admission", "dynamic", "entity_less"}
        assert saw_sharded == expect_sharded, (
            "shard-slice routing expectation violated for this cell"
        )


class TestExecutorStats:
    def _run(self, shard_workers, kind="thread", min_batch=None,
             monkeypatch=None):
        if kind == "process" and monkeypatch is not None:
            monkeypatch.setattr(
                executor_module, "PROCESS_START_METHOD", "fork"
            )
            if min_batch is not None:
                monkeypatch.setattr(
                    executor_module, "PROCESS_MIN_BATCH", min_batch
                )
        items, initial, context_kwargs = grid_factory("deadlock_storm")(
            0, num_entities=20, num_txns=25, accesses_per_txn=2,
            arrival_rate=0.5, hot_set_size=4, hot_traffic=0.7,
        )
        sim = Simulator(
            TwoPhasePolicy(), seed=0, max_ticks=500_000,
            context_kwargs=context_kwargs, engine="event",
            lock_shards=4, shard_workers=shard_workers, executor=kind,
        )
        return sim.run(items, initial)

    def test_snapshot_shape_and_partition_counters(self):
        serial = self._run(0, kind="serial")
        threaded = self._run(2, kind="thread")
        assert serial.executor_stats["executor"] == "serial"
        assert serial.executor_stats["parallel_ticks"] == 0
        assert threaded.executor_stats["executor"] == "thread"
        assert threaded.executor_stats["shard_workers"] == 2
        assert threaded.executor_stats["parallel_ticks"] > 0
        # Both executors see the identical routing partition of the same
        # run: per-shard counts, spill causes, executed spill.
        for key in ("sharded_classifications", "spill_classifications",
                    "classify_ticks", "spill_fraction", "spill_causes",
                    "shard_classifications"):
            assert serial.executor_stats[key] == threaded.executor_stats[key]
        assert threaded.executor_stats["sharded_classifications"] > 0

    def test_spill_fraction_reflects_execution_site(self):
        """Regression: ``spill_fraction`` used to be recomputed from the
        routing tally, so every executor reported the same number by
        construction.  It is now derived from the classifications each
        executor actually executed: the serial reference runs everything
        on the coordinator, the thread executor runs shard slices on
        workers — same fraction, different execution-site splits."""
        serial = self._run(0, kind="serial")
        threaded = self._run(2, kind="thread")
        s, t = serial.executor_stats, threaded.executor_stats
        # Serial executes every classification on the coordinator.
        assert s["worker_classifications"] == 0
        assert s["coordinator_classifications"] == (
            s["sharded_classifications"] + s["spill_classifications"]
        )
        # The thread executor runs exactly the shard slices on workers.
        assert t["worker_classifications"] == t["sharded_classifications"]
        assert t["coordinator_classifications"] == t["spill_classifications"]
        # Executed totals agree, so the executed spill fraction does too.
        executed_s = s["coordinator_classifications"] + s["worker_classifications"]
        executed_t = t["coordinator_classifications"] + t["worker_classifications"]
        assert executed_s == executed_t
        expected = (
            s["spill_classifications"] / executed_s if executed_s else 0.0
        )
        assert s["spill_fraction"] == expected
        assert t["spill_fraction"] == expected

    def test_count_slices_alone_leaves_spill_fraction_zero(self):
        """The routing tally must not move the executed spill fraction —
        that was the bug: counting at routing time made every executor
        report identical spill numbers regardless of what it ran."""
        stats = ExecutorStats()
        stats.count_slices(
            [["a"], [], ["b", "c"]], ["x", "y"], {"dynamic": 2}
        )
        snap = stats.as_dict()
        assert snap["sharded_classifications"] == 3
        assert snap["spill_causes"] == {"dynamic": 2}
        assert snap["spill_classifications"] == 0
        assert snap["spill_fraction"] == 0.0
        assert snap["coordinator_classifications"] == 0
        assert snap["worker_classifications"] == 0

    def test_process_stats_record_ipc_and_delta_bytes(self, monkeypatch):
        proc = self._run(2, kind="process", min_batch=1,
                         monkeypatch=monkeypatch)
        stats = proc.executor_stats
        assert stats["executor"] == "process"
        assert stats["ipc_round_trips"] > 0
        assert stats["delta_bytes"] > 0
        assert stats["reply_bytes"] > 0
        assert stats["worker_classifications"] > 0
        serial = self._run(0, kind="serial")
        # The routing partition is executor-independent even here.
        assert (stats["spill_causes"]
                == serial.executor_stats["spill_causes"])

    def test_process_under_batch_threshold_never_ships(self, monkeypatch):
        """With the default-sized (large) batch threshold this workload's
        tiny per-tick slices never justify a round trip: the process
        executor must degrade to coordinator-side derivation with zero
        IPC — that laziness is what keeps ``executor="process"`` safe to
        leave on for small runs."""
        monkeypatch.setattr(executor_module, "PROCESS_START_METHOD", "fork")
        monkeypatch.setattr(executor_module, "PROCESS_MIN_BATCH", 10_000)
        proc = self._run(2, kind="process")
        stats = proc.executor_stats
        assert stats["ipc_round_trips"] == 0
        assert stats["delta_bytes"] == 0
        assert stats["worker_classifications"] == 0
        assert stats["parallel_ticks"] == 0

    def test_stats_stay_out_of_the_metric_summaries(self):
        """The SeedOutcome equality above holds *because* executor
        counters never leak into ``summary()``/``work_summary()``."""
        result = self._run(2)
        for key in result.executor_stats:
            assert key not in result.metrics.summary()
            assert key not in result.metrics.work_summary()


class TestHolderDeltas:
    """The lock table's opt-in change log — the process executor's
    replica protocol source."""

    def test_tracking_is_off_by_default(self):
        table = LockTable(shards=2)
        table.acquire("t1", "a", LockMode.EXCLUSIVE)
        assert table.take_holder_delta() == {}

    def test_acquire_release_and_release_all_are_logged(self):
        table = LockTable(shards=2)
        table.enable_delta_tracking()
        table.acquire("t1", "a", LockMode.EXCLUSIVE)
        table.acquire("t2", "b", LockMode.SHARED)
        table.acquire("t3", "b", LockMode.SHARED)
        delta = table.take_holder_delta()
        assert delta == {
            "a": {"t1": LockMode.EXCLUSIVE},
            "b": {"t2": LockMode.SHARED, "t3": LockMode.SHARED},
        }
        # Drained: a second take is empty until the next mutation.
        assert table.take_holder_delta() == {}
        table.release("t2", "b", LockMode.SHARED)
        assert table.take_holder_delta() == {"b": {"t3": LockMode.SHARED}}
        table.release_all("t1")
        table.release_all("t3")
        assert table.take_holder_delta() == {"a": None, "b": None}

    def test_delta_reports_effective_modes_after_upgrade(self):
        table = LockTable()
        table.enable_delta_tracking()
        table.acquire("t1", "a", LockMode.SHARED)
        table.acquire("t1", "a", LockMode.EXCLUSIVE)
        assert table.take_holder_delta() == {"a": {"t1": LockMode.EXCLUSIVE}}
        # Dropping the SHARED half does not weaken the effective mode but
        # still marks the entity (the replica map is re-sent verbatim).
        table.release("t1", "a", LockMode.SHARED)
        assert table.take_holder_delta() == {"a": {"t1": LockMode.EXCLUSIVE}}

    def test_bootstrap_is_the_full_state(self):
        """Enabling tracking before any grant makes the first drain a
        complete replica — the executor's bind-time contract."""
        table = LockTable(shards=4)
        table.enable_delta_tracking()
        entities = [f"e{i}" for i in range(10)]
        for i, entity in enumerate(entities):
            table.acquire(f"t{i}", entity, LockMode.EXCLUSIVE)
        delta = table.take_holder_delta()
        assert set(delta) == set(entities)
        assert all(v is not None for v in delta.values())
