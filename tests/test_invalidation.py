"""The policy-aware invalidation protocol.

Dynamic sessions (DDAG's L5, altruistic AL2) used to force the event-driven
scheduler back to a per-tick rescan.  The protocol lets a session *declare*
the invalidation channels whose change can flip its cached verdict
(:meth:`PolicySession.admission_dependencies`) while policy code reports
mutations through :meth:`PolicyContext.notify_changed`; the scheduler then
re-examines exactly the sessions a change can affect.

Covered here:

* the dependency declarations of the shipped dynamic policies;
* end-to-end invalidation: a concurrent edge insert flips a *cached* DDAG
  verdict to ABORT (the paper's Fig. 3 race), donations/locked points flip
  altruistic AL2 waits — identically under both engines;
* the protocol's work saving on dynamic policies (admission checks stop
  scaling with ticks × live population);
* the conservative fallback: a dynamic session that declares nothing is
  re-examined every tick, exactly as before the protocol existed;
* a custom third policy adopting the protocol (it is not DDAG-specific).
"""

import pytest

from repro.core import Operation, Step, StructuralState
from repro.graphs import RootedDag, random_rooted_dag
from repro.policies import Access, AltruisticPolicy, DdagPolicy, InsertEdge
from repro.policies.altruistic import al_item_channel
from repro.policies.base import (
    Admission,
    AdmissionResult,
    LockingPolicy,
    PolicyContext,
    PolicySession,
    PROCEED,
    access_steps,
)
from repro.policies.ddag import ddag_node_channel
from repro.sim import (
    Simulator,
    WorkloadItem,
    dag_structural_state,
    long_transaction_workload,
    stress_workload,
)

ENGINES = ("event", "naive")


def run_both(policy_factory, items, initial, seed=0, context_kwargs_factory=None):
    out = {}
    for engine in ENGINES:
        sim = Simulator(
            policy_factory(),
            seed=seed,
            engine=engine,
            # A fresh kwargs dict per engine: shared mutable state (a DDAG
            # graph) must not leak from one engine's run into the other's.
            context_kwargs=context_kwargs_factory() if context_kwargs_factory else {},
        )
        out[engine] = sim.run(items, initial, validate=False)
    event, naive = out["event"], out["naive"]
    assert naive.schedule.events == event.schedule.events
    assert naive.metrics.summary() == event.metrics.summary()
    assert naive.committed == event.committed
    assert naive.aborted == event.aborted
    for name, rn in naive.metrics.records.items():
        re_ = event.metrics.records[name]
        assert (
            rn.start_tick, rn.end_tick, rn.committed, rn.restarts,
            rn.steps_executed, rn.blocked_ticks,
        ) == (
            re_.start_tick, re_.end_tick, re_.committed, re_.restarts,
            re_.steps_executed, re_.blocked_ticks,
        ), f"record for {name} diverges"
    return naive, event


# ----------------------------------------------------------------------
# Dependency declarations of the shipped policies
# ----------------------------------------------------------------------


class TestDeclaredDependencies:
    def test_ddag_first_lock_declares_nothing(self):
        ctx = DdagPolicy().create_context(dag=RootedDag(1, [(1, 2)]))
        s = ctx.begin("T1", [Access(1), Access(2)])
        step = s.peek()
        assert step is not None and step.is_lock and step.entity == 1
        assert tuple(s.admission_dependencies()) == ()  # L4: unconditional

    def test_ddag_later_lock_declares_node_channel(self):
        ctx = DdagPolicy(auto_release=False).create_context(
            dag=RootedDag(1, [(1, 2)])
        )
        s = ctx.begin("T1", [Access(1), Access(2)])
        # Drive past lock/read/write of node 1 to the pending lock of 2.
        while True:
            step = s.peek()
            if step.is_lock and step.entity == 2:
                break
            s.executed()
        assert tuple(s.admission_dependencies()) == (ddag_node_channel(2),)

    def test_ddag_data_step_declares_nothing(self):
        ctx = DdagPolicy(auto_release=False).create_context(
            dag=RootedDag(1, [(1, 2)])
        )
        s = ctx.begin("T1", [Access(1)])
        s.peek()
        s.executed()  # the lock; pending is now the READ
        assert s.peek().op is Operation.READ
        assert tuple(s.admission_dependencies()) == ()

    def test_altruistic_lock_declares_item_channels(self):
        ctx = AltruisticPolicy(donate_immediately=False).create_context()
        s = ctx.begin("T1", [Access("a"), Access("b")])
        while True:
            step = s.peek()
            if step.is_lock and step.entity == "b":
                break
            s.executed()
        assert set(s.admission_dependencies()) == {
            al_item_channel("a"),
            al_item_channel("b"),
        }

    def test_default_session_declares_none(self):
        class S(PolicySession):
            def peek(self):
                return None

            def executed(self):
                pass

        assert S("T1").admission_dependencies() is None


# ----------------------------------------------------------------------
# End-to-end invalidation under the shipped dynamic policies
# ----------------------------------------------------------------------


def _fig3_race_dag():
    return RootedDag(1, [(1, 2), (1, 3), (3, 4)])


def _fig3_race_items():
    """The paper's Fig. 3 race, arranged so the flipping mutation lands
    while the victim's verdict is *cached*: T1 walks 1..4, explicitly
    unlocks 3 (letting T2 in) while keeping 2 and 4, then inserts edge
    (2, 4).  T2 locks 3 and blocks on 4 — a cached lock-wait — and the
    insert gives 4 a predecessor T2 never locked: its cached verdict must
    flip to ABORT on the same tick as the naive rescan sees it."""
    from repro.policies.ddag import Unlock

    return [
        WorkloadItem(
            "T1",
            [
                Access(1), Access(2), Access(3), Access(4),
                Unlock(3), Unlock(1), InsertEdge(2, 4),
            ],
        ),
        WorkloadItem(
            "T2",
            [Access(3), Access(4)],
            restart=lambda n, a, c: None,  # drop on abort
            start_tick=14,
        ),
    ]


class TestDdagInvalidation:
    def test_concurrent_edge_insert_flips_cached_verdict(self):
        items = _fig3_race_items()
        initial = dag_structural_state(_fig3_race_dag())
        aborted_somewhere = False
        for seed in range(6):
            naive, event = run_both(
                lambda: DdagPolicy(auto_release=False),
                items,
                initial,
                seed=seed,
                context_kwargs_factory=lambda: {"dag": _fig3_race_dag()},
            )
            assert naive.aborted == event.aborted
            assert naive.committed == event.committed
            aborted_somewhere |= "T2" in event.aborted
        assert aborted_somewhere, (
            "some seed must exercise the L5 race (T2 aborted by the insert)"
        )

    def test_invalidations_fire_in_event_engine(self):
        items = _fig3_race_items()
        initial = dag_structural_state(_fig3_race_dag())
        fired = False
        for seed in range(6):
            _, event = run_both(
                lambda: DdagPolicy(auto_release=False),
                items,
                initial,
                seed=seed,
                context_kwargs_factory=lambda: {"dag": _fig3_race_dag()},
            )
            fired |= event.metrics.invalidations > 0
        assert fired, "the edge insert must notify T2's subscribed node channel"


class TestAltruisticInvalidation:
    def test_long_transaction_wakes_and_saving(self):
        """Late shorts run in the sweep's wake: their AL2 waits are cached
        and re-derived only on donations/locked-point notifications, so the
        event engine performs strictly fewer admission checks while
        reproducing the naive engine exactly."""
        saw_invalidation = False
        for seed in range(4):
            items, initial = long_transaction_workload(
                12, 4, seed=seed, region="leading", short_start=14
            )
            naive, event = run_both(AltruisticPolicy, items, initial, seed=seed)
            assert event.metrics.admission_checks < naive.metrics.admission_checks
            saw_invalidation |= event.metrics.invalidations > 0
        assert saw_invalidation, "donations must notify subscribed sessions"


class TestDynamicPolicyWorkSaving:
    def test_admission_checks_stop_scaling_with_population(self):
        """A standing population of blocked altruistic sessions costs the
        naive engine ticks × live admission checks; under the protocol the
        event engine pays only per relevant change."""
        items, initial = stress_workload(
            400, 150, arrival_rate=0.085, hot_fraction=0.0, seed=1
        )
        results = {}
        for engine in ENGINES:
            results[engine] = Simulator(
                AltruisticPolicy(), seed=1, engine=engine
            ).run(items, initial, validate=False)
        naive_m = results["naive"].metrics
        event_m = results["event"].metrics
        assert results["naive"].schedule.events == results["event"].schedule.events
        naive_work = naive_m.classify_checks + naive_m.admission_checks
        event_work = event_m.classify_checks + event_m.admission_checks
        assert event_work * 3 < naive_work, (
            f"expected a big dynamic-policy saving, got "
            f"{event_work} vs {naive_work}"
        )


# ----------------------------------------------------------------------
# A custom policy adopting (or declining) the protocol
# ----------------------------------------------------------------------


class _GateContext(PolicyContext):
    """Shared state: the set of finished transactions.  Gated sessions may
    not take their first lock until some transaction has finished."""

    session_cls: type = None  # set by the policy

    def __init__(self):
        self.finished = set()
        self.live_names = []

    def begin(self, name, intents):
        steps = []
        for intent in intents:
            assert isinstance(intent, Access)
            steps.append(Step(Operation.LOCK_EXCLUSIVE, intent.entity))
            steps.extend(access_steps(intent.entity))
        for intent in intents:
            steps.append(Step(Operation.UNLOCK_EXCLUSIVE, intent.entity))
        self.live_names.append(name)
        return self.session_cls(name, self, steps)


class _GatedSession(PolicySession):
    """Dynamic session consulting shared state *without* declaring
    dependencies: the conservative every-tick fallback."""

    dynamic = True

    def __init__(self, name, context, steps):
        super().__init__(name)
        self.context = context
        self._steps = list(steps)
        self._cursor = 0

    @property
    def gated(self):
        return self.name.startswith("G")

    def peek(self):
        if self._cursor >= len(self._steps):
            return None
        return self._steps[self._cursor]

    def executed(self):
        self._cursor += 1

    def admission(self):
        if self.gated and self._cursor == 0 and not self.context.finished:
            others = tuple(
                n for n in self.context.live_names
                if n != self.name and not n.startswith("G")
            )
            return AdmissionResult(Admission.WAIT, waiting_on=others)
        return PROCEED

    def on_commit(self):
        self.context.finished.add(self.name)


class _ChannelGatedSession(_GatedSession):
    """The same policy adopting the protocol: the verdict depends only on
    whether *any* transaction has finished, declared as one channel and
    notified by the first commit."""

    def admission_dependencies(self):
        if self.gated and self._cursor == 0 and not self.context.finished:
            return ("gate-open",)
        return ()

    def on_commit(self):
        first = not self.context.finished
        self.context.finished.add(self.name)
        if first:
            self.context.notify_changed(("gate-open",))


class _GatePolicy(LockingPolicy):
    name = "Gate"
    session_cls = _GatedSession

    def create_context(self, **kwargs):
        ctx = _GateContext()
        ctx.session_cls = self.session_cls
        return ctx


class _ChannelGatePolicy(_GatePolicy):
    name = "Gate-channel"
    session_cls = _ChannelGatedSession


def _gate_workload():
    items = [
        WorkloadItem("G1", [Access("g1")]),
        WorkloadItem("G2", [Access("g2")]),
        WorkloadItem("T1", [Access("a"), Access("b")]),
        WorkloadItem("T2", [Access("c")], start_tick=3),
    ]
    return items, StructuralState.of("a", "b", "c", "g1", "g2")


class TestConservativeFallback:
    def test_undeclared_dynamic_session_matches_naive_exactly(self):
        """A dynamic session that declares no dependencies must behave
        exactly as before the protocol: re-checked every tick, producing
        naive-identical schedules, summaries, and records."""
        for seed in range(6):
            items, initial = _gate_workload()
            naive, event = run_both(_GatePolicy, items, initial, seed=seed)
            assert naive.committed == event.committed
            for name, rn in naive.metrics.records.items():
                re_ = event.metrics.records[name]
                assert (rn.end_tick, rn.blocked_ticks) == (
                    re_.end_tick, re_.blocked_ticks
                )
            # Every session is dynamic and declares nothing, so the event
            # engine re-examines all of them every tick — the same
            # admission work as the naive rescan, no caching.
            assert (
                event.metrics.admission_checks == naive.metrics.admission_checks
            )
            assert event.metrics.invalidations == 0

    def test_gated_transactions_wait_for_first_commit(self):
        items, initial = _gate_workload()
        result = Simulator(_GatePolicy(), seed=0).run(
            items, initial, validate=False
        )
        assert set(result.committed) == {"G1", "G2", "T1", "T2"}
        # The gate held G1/G2 back (policy waits) until the first ungated
        # transaction finished; the ungated ones never waited.
        m = result.metrics
        assert m.policy_wait_observations > 0
        assert m.records["G1"].blocked_ticks > 0
        assert m.records["G2"].blocked_ticks > 0
        first_finish = min(
            m.records[n].end_tick for n in ("T1", "T2")
        )
        assert m.records["G1"].end_tick > first_finish
        assert m.records["G2"].end_tick > first_finish


class TestCustomPolicyAdoption:
    def test_channel_gated_equivalent_and_cheaper(self):
        """The protocol is not policy-specific: a custom session declaring
        one channel gets the same schedules with fewer admission checks."""
        for seed in range(6):
            items, initial = _gate_workload()
            naive, event = run_both(_ChannelGatePolicy, items, initial, seed=seed)
            assert naive.committed == event.committed
            assert (
                event.metrics.admission_checks < naive.metrics.admission_checks
            )

    def test_gate_notification_fires(self):
        items, initial = _gate_workload()
        result = Simulator(_ChannelGatePolicy(), seed=0).run(
            items, initial, validate=False
        )
        assert result.metrics.invalidations > 0

    def test_empty_deps_session_never_rechecked_between_executions(self):
        """An ungated channel session declares () — PROCEED can never flip,
        so the event engine re-examines it only around its own steps."""
        items = [WorkloadItem("T1", [Access("a"), Access("b")])]
        initial = StructuralState.of("a", "b")
        results = {}
        for engine in ENGINES:
            results[engine] = Simulator(
                _ChannelGatePolicy(), seed=0, engine=engine
            ).run(items, initial, validate=False)
        assert (
            results["event"].metrics.admission_checks
            <= results["event"].metrics.events_executed + 1
        )
        assert results["naive"].schedule.events == results["event"].schedule.events
