"""Tests for the policy verifier."""

from repro.core import StructuralState
from repro.policies import (
    Access,
    AltruisticPolicy,
    BrokenAltruisticPolicy,
    FreeForAllPolicy,
    TwoPhasePolicy,
    check_altruistic_schedule,
)
from repro.sim import WorkloadItem, long_transaction_workload
from repro.verify import verify_policy, verify_system


def _long_factory(seed):
    return long_transaction_workload(6, 2, seed=seed)


def _race_factory(seed):
    items = [
        WorkloadItem("T1", [Access("a"), Access("b")]),
        WorkloadItem("T2", [Access("b"), Access("a")]),
    ]
    return items, StructuralState.of("a", "b")


class TestVerifyPolicy:
    def test_safe_policy_passes(self):
        report = verify_policy(TwoPhasePolicy(), _long_factory, seeds=range(5))
        assert report.ok
        assert report.runs == 5
        assert "SAFE" in report.summary()

    def test_altruistic_with_auditor(self):
        report = verify_policy(
            AltruisticPolicy(),
            _long_factory,
            seeds=range(5),
            auditors=[lambda r: check_altruistic_schedule(r.schedule)],
        )
        assert report.ok

    def test_unsafe_policy_fails_with_witness(self):
        report = verify_policy(
            FreeForAllPolicy(), _race_factory, seeds=range(40)
        )
        assert not report.ok
        assert report.counterexample is not None
        assert report.witness is not None
        assert report.witness.is_valid(StructuralState.of("a", "b"))
        assert "UNSAFE" in report.summary()

    def test_broken_altruistic_fails(self):
        def factory(seed):
            items = [
                WorkloadItem("LONG", [Access("a"), Access("b"), Access("c")]),
                WorkloadItem("S", [Access("c"), Access("a")]),
            ]
            return items, StructuralState.of("a", "b", "c")

        report = verify_policy(BrokenAltruisticPolicy(), factory, seeds=range(60))
        assert not report.ok

    def test_continue_after_failure_counts_everything(self):
        report = verify_policy(
            FreeForAllPolicy(),
            _race_factory,
            seeds=range(25),
            stop_at_first_failure=False,
        )
        assert report.runs == 25


class TestVerifySystem:
    def test_exact_check(self, simple_locked_pair, nontwophase_pair):
        assert verify_system(simple_locked_pair).safe
        verdict = verify_system(nontwophase_pair, StructuralState.of("a", "b"))
        assert not verdict.safe and verdict.agree
