"""Unit tests for steps and step parsing (repro.core.steps)."""

import pytest

from repro.core.operations import LX, R, UX, W, I, Operation
from repro.core.steps import (
    Step,
    conflicting_pairs,
    entities_of,
    parse_step,
    parse_steps,
    step,
    steps_conflict,
)


class TestStep:
    def test_equality_structural(self):
        assert Step(R, "a") == Step(R, "a")
        assert Step(R, "a") != Step(W, "a")
        assert Step(R, "a") != Step(R, "b")

    def test_hashable(self):
        assert len({Step(R, "a"), Step(R, "a"), Step(W, "a")}) == 2

    def test_str_matches_paper_notation(self):
        assert str(Step(Operation.INSERT, "a")) == "(I a)"
        assert str(Step(LX, 4)) == "(LX 4)"

    def test_classification(self):
        assert Step(R, "a").is_data
        assert Step(LX, "a").is_lock
        assert Step(UX, "a").is_unlock

    def test_step_constructor_accepts_strings(self):
        assert step("LX", "a") == Step(LX, "a")
        assert step(R, "a") == Step(R, "a")


class TestConflicts:
    def test_same_entity_required(self):
        assert not Step(W, "a").conflicts_with(Step(W, "b"))
        assert Step(W, "a").conflicts_with(Step(W, "a"))

    def test_read_read_no_conflict(self):
        assert not Step(R, "a").conflicts_with(Step(R, "a"))

    def test_insert_conflicts_with_read(self):
        assert steps_conflict(Step(I, "a"), Step(R, "a"))

    def test_lock_conflicts(self):
        assert Step(LX, "a").conflicts_with(Step(LX, "a"))
        assert Step(UX, "a").conflicts_with(Step(LX, "a"))

    def test_conflicting_pairs(self):
        a = [Step(W, "x"), Step(R, "y")]
        b = [Step(R, "x"), Step(R, "y"), Step(W, "y")]
        pairs = list(conflicting_pairs(a, b))
        assert (Step(W, "x"), Step(R, "x")) in pairs
        assert (Step(R, "y"), Step(W, "y")) in pairs
        assert (Step(R, "y"), Step(R, "y")) not in pairs


class TestParsing:
    def test_parse_step_parenthesised(self):
        assert parse_step("(I a)") == Step(I, "a")

    def test_parse_step_bare(self):
        assert parse_step("W  c") == Step(W, "c")

    def test_parse_step_integer_entity(self):
        assert parse_step("(LX 4)") == Step(LX, 4)

    def test_parse_steps_sequence(self):
        steps = parse_steps("(I a) (I b) (W c) (I d)")
        assert [s.op for s in steps] == [I, I, W, I]
        assert [s.entity for s in steps] == ["a", "b", "c", "d"]

    def test_parse_steps_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_steps("(I a) junk (W b)")
        with pytest.raises(ValueError):
            parse_steps("(I a")
        with pytest.raises(ValueError):
            parse_step("(I)")

    def test_entities_of(self):
        assert entities_of(parse_steps("(I a) (W b) (R a)")) == {"a", "b"}
