"""Tests for the two-phase analysis module."""

from repro import Transaction
from repro.core.twophase import (
    all_two_phase,
    analyze_two_phase,
    candidate_distinguished_transactions,
    growing_phase,
    shrinking_phase,
)


class TestAnalysis:
    def test_two_phase_report(self):
        t = Transaction.from_text("T", "(LX a) (LX b) (W a) (UX a) (UX b)")
        report = analyze_two_phase(t)
        assert report.is_two_phase
        assert report.violations == ()
        assert report.lock_point == 1

    def test_violation_located(self):
        t = Transaction.from_text("T", "(LX a) (UX a) (LX b) (UX b)")
        report = analyze_two_phase(t)
        assert not report.is_two_phase
        assert report.first_violation() == (1, 2)

    def test_multiple_violations(self):
        t = Transaction.from_text("T", "(LX a) (UX a) (LX b) (UX b) (LX c) (UX c)")
        report = analyze_two_phase(t)
        assert len(report.violations) == 2

    def test_lock_free_transaction(self):
        report = analyze_two_phase(Transaction.from_text("T", "(I a)"))
        assert report.is_two_phase and report.lock_point is None


class TestSystemLevel:
    def test_all_two_phase(self, simple_locked_pair, nontwophase_pair):
        assert all_two_phase(simple_locked_pair)
        assert not all_two_phase(nontwophase_pair)

    def test_candidates_are_the_non_two_phase_ones(self, nontwophase_pair):
        names = {t.name for t in candidate_distinguished_transactions(nontwophase_pair)}
        assert names == {"T1", "T2"}

    def test_phases_partition_steps(self):
        t = Transaction.from_text("T", "(LX a) (W a) (UX a) (LX b) (W b) (UX b)")
        grow = growing_phase(t)
        shrink = shrinking_phase(t)
        assert len(grow) + len(shrink) == len(t)
        assert grow[-1].is_lock
