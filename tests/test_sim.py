"""Tests for the concurrency simulator substrate."""

import pytest

from repro.core import LockMode, StructuralState, is_serializable
from repro.exceptions import SimulationError
from repro.policies import Access, FreeForAllPolicy, TwoPhasePolicy
from repro.sim import (
    LockTable,
    Simulator,
    WorkloadItem,
    format_table,
    long_transaction_workload,
    run_cell,
)


class TestLockTable:
    def test_acquire_release(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        assert t.mode_held("T1", "a") is LockMode.EXCLUSIVE
        assert t.blockers("T2", "a", LockMode.EXCLUSIVE) == ["T1"]
        assert not t.grantable("T2", "a", LockMode.SHARED)
        t.release("T1", "a", LockMode.EXCLUSIVE)
        assert t.grantable("T2", "a", LockMode.EXCLUSIVE)

    def test_shared_sharing(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.SHARED)
        assert t.grantable("T2", "a", LockMode.SHARED)
        t.acquire("T2", "a", LockMode.SHARED)
        assert not t.grantable("T3", "a", LockMode.EXCLUSIVE)

    def test_acquire_conflicting_raises(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        with pytest.raises(RuntimeError):
            t.acquire("T2", "a", LockMode.EXCLUSIVE)

    def test_release_all(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        t.acquire("T1", "b", LockMode.EXCLUSIVE)
        released = dict(t.release_all("T1"))
        assert set(released) == {"a", "b"}
        assert t.held_by("T1") == {}

    def test_self_regrant_is_noop_conflictwise(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.SHARED)
        assert t.grantable("T1", "a", LockMode.EXCLUSIVE)  # self upgrade ok


class TestSimulator:
    def test_deterministic_given_seed(self):
        items, init = long_transaction_workload(5, 2, seed=3)
        r1 = Simulator(TwoPhasePolicy(), seed=3).run(items, init)
        r2 = Simulator(TwoPhasePolicy(), seed=3).run(items, init)
        assert r1.schedule.events == r2.schedule.events

    def test_different_seeds_interleave_differently(self):
        items, init = long_transaction_workload(5, 2, seed=3)
        runs = {
            Simulator(TwoPhasePolicy(), seed=s).run(items, init).schedule.events
            for s in range(6)
        }
        assert len(runs) > 1

    def test_schedules_are_validated(self):
        items, init = long_transaction_workload(4, 2, seed=0)
        result = Simulator(TwoPhasePolicy(), seed=0).run(items, init)
        assert result.schedule.is_legal()
        assert result.schedule.is_proper(init)
        assert result.schedule.is_complete

    def test_metrics_basics(self):
        items, init = long_transaction_workload(5, 2, seed=1)
        result = Simulator(TwoPhasePolicy(), seed=1).run(items, init)
        m = result.metrics
        assert m.committed == 3
        assert m.events_executed == len(result.schedule)
        assert m.ticks >= m.events_executed
        assert 0 < m.mean_active <= 3
        assert m.throughput > 0
        for record in m.records.values():
            assert record.committed and record.latency is not None

    def test_max_ticks_guard(self):
        items, init = long_transaction_workload(6, 3, seed=1)
        with pytest.raises(SimulationError, match="ticks"):
            Simulator(TwoPhasePolicy(), seed=1, max_ticks=3).run(items, init)

    def test_single_transaction_run(self):
        items = [WorkloadItem("T1", [Access("a")])]
        result = Simulator(TwoPhasePolicy(), seed=0).run(
            items, StructuralState.of("a")
        )
        assert result.committed == ("T1",)
        assert len(result.schedule) == 4  # LX, R, W, UX


class TestRunner:
    def test_run_cell_aggregates(self):
        def factory(seed):
            return long_transaction_workload(5, 2, seed=seed)

        cell = run_cell(TwoPhasePolicy(), "long", factory, seeds=range(4))
        assert cell.runs == 4 and cell.failures == 0
        assert cell.all_serializable
        assert cell.means["committed"] == 3.0
        row = cell.row()
        assert row["policy"] == "2PL" and row["workload"] == "long"

    def test_run_cell_detects_nonserializable_policies(self):
        def factory(seed):
            items = [
                WorkloadItem("T1", [Access("a"), Access("b")]),
                WorkloadItem("T2", [Access("b"), Access("a")]),
            ]
            return items, StructuralState.of("a", "b")

        cell = run_cell(FreeForAllPolicy(), "race", factory, seeds=range(30))
        assert not cell.all_serializable

    def test_format_table(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 222, "b": "y"}]
        text = format_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].split("|")[0].strip() == "a"
