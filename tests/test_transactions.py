"""Unit tests for transactions and well-formedness (repro.core.transactions)."""

import pytest

from repro.core.operations import LockMode
from repro.core.transactions import (
    Transaction,
    assert_well_formed,
    transactions_by_name,
    two_phase_locked,
)
from repro.exceptions import MalformedTransactionError


class TestBasics:
    def test_from_text_roundtrip(self):
        t = Transaction.from_text("T1", "(I a) (W b)")
        assert len(t) == 2
        assert str(t) == "T1: (I a) (W b)"

    def test_prefix(self):
        t = Transaction.from_text("T1", "(LX a) (I a) (UX a)")
        p = t.prefix(2)
        assert len(p) == 2 and p.name == "T1"
        assert p.is_prefix_of(t)
        assert t.prefix(len(t)) is t

    def test_prefix_out_of_range(self):
        t = Transaction.from_text("T1", "(I a)")
        with pytest.raises(ValueError):
            t.prefix(5)

    def test_subsequence(self):
        plain = Transaction.from_text("T1", "(I a) (W b)")
        locked = Transaction.from_text("T1", "(LX a) (I a) (LX b) (W b) (UX a) (UX b)")
        assert plain.is_subsequence_of(locked)
        assert not locked.is_subsequence_of(plain)

    def test_unlocked_projection(self):
        locked = Transaction.from_text("T1", "(LX a) (I a) (UX a)")
        assert [str(s) for s in locked.unlocked_projection().steps] == ["(I a)"]

    def test_entities(self):
        t = Transaction.from_text("T1", "(LX a) (W a) (UX a) (LX b) (R b) (UX b)")
        assert t.entities == {"a", "b"}


class TestLockAccounting:
    def test_held_locks(self):
        t = Transaction.from_text("T", "(LX a) (LS b) (UX a) (LX c)")
        held = t.held_locks()
        assert held == {"b": LockMode.SHARED, "c": LockMode.EXCLUSIVE}

    def test_held_locks_prefix(self):
        t = Transaction.from_text("T", "(LX a) (UX a)")
        assert t.held_locks(upto=1) == {"a": LockMode.EXCLUSIVE}
        assert t.held_locks(upto=2) == {}

    def test_first_locked_entity(self):
        t = Transaction.from_text("T", "(R a) (LX b) (W b)")
        # note: ill-formed on purpose; accounting still works
        assert t.first_locked_entity() == "b"

    def test_locked_point(self):
        t = Transaction.from_text("T", "(LX a) (W a) (UX a) (LX b) (W b) (UX b)")
        assert t.locked_point() == 3

    def test_locked_point_none_without_locks(self):
        assert Transaction.from_text("T", "(I a)").locked_point() is None

    def test_locks_entity_at_most_once(self):
        ok = Transaction.from_text("T", "(LX a) (UX a) (LX b)")
        bad = Transaction.from_text("T", "(LX a) (UX a) (LX a)")
        assert ok.locks_entity_at_most_once()
        assert not bad.locks_entity_at_most_once()

    def test_two_phase_detection(self):
        tp = Transaction.from_text("T", "(LX a) (LX b) (W a) (UX a) (UX b)")
        ntp = Transaction.from_text("T", "(LX a) (UX a) (LX b) (UX b)")
        assert tp.is_two_phase()
        assert not ntp.is_two_phase()


class TestWellFormedness:
    def test_write_requires_exclusive(self):
        bad = Transaction.from_text("T", "(LS a) (W a) (US a)")
        assert not bad.is_well_formed()
        assert "exclusive" in bad.well_formedness_violation()

    def test_read_allows_shared_or_exclusive(self):
        shared = Transaction.from_text("T", "(LS a) (R a) (US a)")
        exclusive = Transaction.from_text("T", "(LX a) (R a) (UX a)")
        assert shared.is_well_formed()
        assert exclusive.is_well_formed()

    def test_read_requires_some_lock(self):
        assert not Transaction.from_text("T", "(R a)").is_well_formed()

    def test_insert_requires_lock_even_for_absent_entity(self):
        # The paper: "before inserting an entity a transaction must lock it
        # even though it does not actually exist in the database."
        good = Transaction.from_text("T", "(LX a) (I a) (UX a)")
        bad = Transaction.from_text("T", "(I a)")
        assert good.is_well_formed()
        assert not bad.is_well_formed()

    def test_unlock_without_lock_flagged(self):
        assert not Transaction.from_text("T", "(UX a)").is_well_formed()

    def test_unlock_wrong_mode_flagged(self):
        assert not Transaction.from_text("T", "(LS a) (UX a)").is_well_formed()

    def test_operation_after_unlock_flagged(self):
        bad = Transaction.from_text("T", "(LX a) (UX a) (W a)")
        assert not bad.is_well_formed()

    def test_assert_well_formed_raises(self):
        with pytest.raises(MalformedTransactionError):
            assert_well_formed(Transaction.from_text("T", "(W a)"))

    def test_assert_well_formed_lock_once(self):
        t = Transaction.from_text("T", "(LX a) (R a) (UX a) (LX a) (R a) (UX a)")
        assert t.is_well_formed()
        with pytest.raises(MalformedTransactionError, match="more than once"):
            assert_well_formed(t, lock_once=True)
        assert_well_formed(t, lock_once=False)


class TestTwoPhaseWrapper:
    def test_wraps_plain_transaction(self):
        t = Transaction.from_text("T1", "(I a) (W b) (R c)")
        locked = two_phase_locked(t)
        assert locked.is_well_formed()
        assert locked.is_two_phase()
        assert locked.locks_entity_at_most_once()
        assert t.is_subsequence_of(locked)

    def test_read_then_write_gets_exclusive(self):
        t = Transaction.from_text("T1", "(R a) (W a)")
        locked = two_phase_locked(t)
        assert locked.lock_mode_of("a") is LockMode.EXCLUSIVE

    def test_pure_read_gets_shared(self):
        t = Transaction.from_text("T1", "(R a)")
        assert two_phase_locked(t).lock_mode_of("a") is LockMode.SHARED

    def test_rejects_locked_input(self):
        with pytest.raises(MalformedTransactionError):
            two_phase_locked(Transaction.from_text("T", "(LX a) (W a) (UX a)"))


class TestRegistry:
    def test_by_name(self):
        ts = [Transaction.from_text("A", "(I x)"), Transaction.from_text("B", "(I y)")]
        assert set(transactions_by_name(ts)) == {"A", "B"}

    def test_duplicate_names_rejected(self):
        ts = [Transaction.from_text("A", "(I x)"), Transaction.from_text("A", "(I y)")]
        with pytest.raises(MalformedTransactionError):
            transactions_by_name(ts)
