"""The waits-for subsystem: incremental cycle detection against the
from-scratch oracle.

:class:`repro.sim.WaitsForGraph` maintains acyclicity certificates and a
cached DFS walk across detections; every ``find_cycle()`` call must return
**bit-identically** what :func:`repro.sim.deadlock.find_cycle` (the
reference three-colour DFS the naive engine uses) returns on a snapshot of
the same graph — same cycle, same node order — while visiting fewer nodes.
These tests drive the graph through randomized churn (the mutation mix the
scheduler performs: block, re-derive, extend, departure) and check the
oracle contract after every step, plus the invariants (forward/reverse
index sync) and the measured visit savings.
"""

import random

import pytest

from repro.core import StructuralState
from repro.policies import TwoPhasePolicy
from repro.sim import WaitsForGraph, Simulator, deadlock_storm_workload
from repro.sim.deadlock import find_cycle, find_cycle_counted


def assert_oracle(graph: WaitsForGraph):
    """One detection on the maintained graph must equal the from-scratch
    oracle on a snapshot, bit for bit."""
    expected = find_cycle(graph.snapshot())
    got = graph.find_cycle()
    assert got == expected, (
        f"incremental detector diverged: {got!r} vs oracle {expected!r} "
        f"on {graph.snapshot()!r}"
    )
    graph.check_consistency()
    return got


class TestEdgeMaintenance:
    def test_set_edges_syncs_reverse_index(self):
        g = WaitsForGraph()
        g.set_edges("A", {"B", "C"})
        assert g.blocked_by == {"B": {"A"}, "C": {"A"}}
        g.set_edges("A", {"C", "D"})
        assert g.blocked_by == {"C": {"A"}, "D": {"A"}}
        g.check_consistency()

    def test_drop_edges_clears_reverse_entries(self):
        g = WaitsForGraph()
        g.set_edges("A", {"B"})
        g.drop_edges("A")
        assert g.waits_for == {}
        assert g.blocked_by == {}

    def test_add_edge_if_tracked_requires_tracking(self):
        g = WaitsForGraph()
        g.add_edge_if_tracked("A", "B")  # untracked: no-op
        assert g.waits_for == {}
        g.set_edges("A", {"B"})
        g.add_edge_if_tracked("A", "C")
        assert g.waits_for["A"] == {"B", "C"}
        g.check_consistency()

    def test_forget_prunes_both_directions_and_returns_waiters(self):
        g = WaitsForGraph()
        g.set_edges("A", {"V"})
        g.set_edges("B", {"V", "C"})
        g.set_edges("V", {"C"})
        waiters = g.forget("V")
        assert waiters == {"A", "B"}
        assert "V" not in g.waits_for
        assert g.waits_for["A"] == set()
        assert g.waits_for["B"] == {"C"}
        g.check_consistency()


class TestOracleEquality:
    def test_simple_cycle(self):
        g = WaitsForGraph()
        g.set_edges("A", {"B"})
        g.set_edges("B", {"A"})
        assert set(assert_oracle(g)) == {"A", "B"}

    def test_no_cycle(self):
        g = WaitsForGraph()
        g.set_edges("A", {"B"})
        g.set_edges("B", {"C"})
        assert assert_oracle(g) is None

    def test_chain_into_cycle_and_victim_abort_churn(self):
        # The storm shape: a chain of waiters into a small cycle; each
        # detection is followed by the victim's departure and the
        # waiters' edge re-derivation, exactly as the scheduler does.
        g = WaitsForGraph()
        n = 30
        names = [f"T{i:03d}" for i in range(n)]
        for a, b in zip(names, names[1:]):
            g.set_edges(a, {b})
        g.set_edges(names[-1], {names[-3]})  # cycle at the chain's end
        for _ in range(3):
            cycle = assert_oracle(g)
            assert cycle is not None
            victim = min(cycle)
            for w in g.forget(victim):
                # the waiters re-derive edges (here: they just unblock)
                g.drop_edges(w)
            # a fresh pair re-forms a cycle at the tail
            g.set_edges(victim, {names[-1]})
            g.set_edges(names[-1], {victim})

    def test_walk_resumes_across_victim_abort(self):
        """The cached walk survives a victim abort: the cut lands at the
        victim's own walk position, and a surviving multi-edge node whose
        recorded first sorted neighbour is intact is *retained* rather
        than cutting the walk back to its (earlier) position.  The old
        rule — invalidate from the position of any touched cycle member —
        would cut to 0 here via the cross edge ``a -> {b, e}``."""
        g = WaitsForGraph()
        g.set_edges("a", {"b", "e"})  # cross edge into the eventual victim
        g.set_edges("b", {"c"})
        g.set_edges("c", {"d"})
        g.set_edges("d", {"e"})
        g.set_edges("e", {"c"})
        cycle = assert_oracle(g)
        assert cycle is not None and set(cycle) == {"c", "d", "e"}
        full_visits = g.last_visits
        assert full_visits >= 5  # the detection walked the whole chain
        # Victim abort, as the scheduler performs it: the victim departs
        # and its waiters re-derive their edges.
        g.forget("e")
        g.set_edges("a", {"b"})  # first sorted neighbour 'b' intact: retained
        g.set_edges("d", {"c"})  # stale region (>= the cut): no further cut
        # The cut landed at the victim's predecessor position, not 0.
        assert g._walk_valid == 3
        cycle2 = assert_oracle(g)
        assert cycle2 is not None and set(cycle2) == {"c", "d"}
        assert g.last_visits < full_visits, "walk was not resumed"
        assert g.last_visits <= 2, (
            f"resume should revisit only the cut tail, saw {g.last_visits}"
        )

    def test_clean_certificates_skip_acyclic_regions(self):
        g = WaitsForGraph()
        # A big acyclic tendril plus a separate 2-cycle later in sort
        # order: the first detection pays for the tendril, the second
        # (after only the cycle region changed) must not re-walk it.
        for i in range(50):
            g.set_edges(f"A{i:02d}", {f"B{i:02d}"})
        g.set_edges("Z1", {"Z2"})
        g.set_edges("Z2", {"Z1"})
        first = assert_oracle(g)
        assert set(first) == {"Z1", "Z2"}
        first_visits = g.last_visits
        g.forget("Z1")
        g.set_edges("Z1", {"Z2"})
        g.set_edges("Z2", {"Z1"})
        second = assert_oracle(g)
        assert set(second) == {"Z1", "Z2"}
        assert g.last_visits < first_visits, (
            "certified tendril was re-walked"
        )

    def test_certificates_invalidated_by_new_edges(self):
        g = WaitsForGraph()
        g.set_edges("A", {"B"})
        g.set_edges("B", {"C"})
        assert assert_oracle(g) is None  # everything certified clean
        # A new edge C -> A creates a cycle through certified nodes; the
        # reverse-BFS invalidation must un-certify the whole chain.
        g.set_edges("C", {"A"})
        cycle = assert_oracle(g)
        assert cycle is not None and set(cycle) == {"A", "B", "C"}

    def test_walk_cleared_when_smaller_root_appears(self):
        g = WaitsForGraph()
        g.set_edges("M1", {"M2"})
        g.set_edges("M2", {"M1"})
        assert_oracle(g)  # records the walk rooted at M1
        # A new node sorting before M1 becomes the reference's first
        # root; the cached walk must not shortcut past it.
        g.set_edges("A0", {"M1"})
        assert_oracle(g)

    def test_sinks_fall_back_to_reference(self):
        g = WaitsForGraph()
        g.set_edges("A", {"B"})
        g.set_edges("B", {"A"})
        assert_oracle(g)
        # Cut the cycle into a sink; the cached walk must not replay.
        g.set_edges("B", set())
        assert assert_oracle(g) is None
        g.set_edges("B", {"A"})
        assert_oracle(g)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_churn_matches_oracle(self, seed):
        rng = random.Random(seed)
        names = [f"T{i:02d}" for i in range(14)]
        g = WaitsForGraph()
        for step in range(300):
            op = rng.random()
            name = rng.choice(names)
            if op < 0.45:
                k = rng.randrange(0, 3)
                blockers = {
                    b for b in rng.sample(names, k=k) if b != name
                }
                g.set_edges(name, blockers)
            elif op < 0.6:
                if name in g.waits_for:
                    g.add_edge_if_tracked(
                        name, rng.choice([b for b in names if b != name])
                    )
            elif op < 0.75:
                g.drop_edges(name)
            else:
                g.forget(name)
            if step % 7 == 0:
                assert_oracle(g)
        assert_oracle(g)

    @pytest.mark.parametrize("seed", range(4))
    def test_churn_visits_fewer_than_oracle_in_total(self, seed):
        """Over a churn sequence with stable regions, the incremental
        detector must visit strictly fewer nodes than the from-scratch
        oracle in total.  (A single detection may exceed the oracle when
        a resumed walk spills into a fallback — the spilled pushes are
        honestly counted — so the bound is on the sum.)"""
        rng = random.Random(1000 + seed)
        names = [f"T{i:02d}" for i in range(20)]
        g = WaitsForGraph()
        # A stable acyclic backbone that churn rarely touches.
        for i in range(10):
            g.set_edges(f"S{i:02d}", {f"S{i + 1:02d}"})
        total_inc = total_oracle = 0
        for step in range(200):
            name = rng.choice(names)
            if rng.random() < 0.6:
                blockers = {
                    b for b in rng.sample(names, k=rng.randrange(0, 3))
                    if b != name
                }
                g.set_edges(name, blockers)
            else:
                g.forget(name)
            if step % 5 == 0:
                _, oracle_visits = find_cycle_counted(g.snapshot())
                assert_oracle(g)
                total_inc += g.last_visits
                total_oracle += oracle_visits
        assert total_inc < total_oracle, (
            f"no incremental saving over churn: {total_inc} vs {total_oracle}"
        )


class TestInSimulationOracle:
    def test_every_detection_matches_oracle_in_storm(self, monkeypatch):
        """Run a deadlock storm under the event engine with every
        incremental detection checked against the from-scratch oracle on
        a snapshot of the maintained graph."""
        checked = {"detections": 0}
        orig = WaitsForGraph.find_cycle

        def checking(self):
            expected = find_cycle(self.snapshot())
            got = orig(self)
            assert got == expected
            checked["detections"] += 1
            return got

        monkeypatch.setattr(WaitsForGraph, "find_cycle", checking)
        items, initial = deadlock_storm_workload(
            40, 60, accesses_per_txn=2, arrival_rate=0.5,
            hot_set_size=4, hot_traffic=0.8, seed=3,
        )
        result = Simulator(
            TwoPhasePolicy(), seed=3, engine="event", max_ticks=500_000
        ).run(items, initial, validate=False)
        assert result.metrics.deadlocks > 0
        assert checked["detections"] == result.metrics.cycle_detections

    def test_storm_visits_fewer_than_naive(self):
        """The measured saving: on the same seed, the event engine's
        incremental detections visit fewer graph nodes than the naive
        engine's from-scratch walks, with identical victim sequences."""
        out = {}
        for engine in ("naive", "event"):
            items, initial = deadlock_storm_workload(
                60, 120, accesses_per_txn=2, arrival_rate=0.4,
                hot_set_size=6, hot_traffic=0.6, seed=0,
            )
            result = Simulator(
                TwoPhasePolicy(), seed=0, engine=engine, max_ticks=500_000
            ).run(items, initial, validate=False)
            out[engine] = result.metrics
        assert out["naive"].deadlock_victims == out["event"].deadlock_victims
        assert out["naive"].cycle_detections == out["event"].cycle_detections
        assert out["event"].cycle_visits < out["naive"].cycle_visits, (
            f"incremental detection saved nothing: "
            f"{out['event'].cycle_visits} vs {out['naive'].cycle_visits}"
        )
