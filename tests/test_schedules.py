"""Unit tests for schedules: interleavings, legality, properness."""

import pytest

from repro import Schedule, StructuralState, Transaction
from repro.core.schedules import Event, validate_schedule
from repro.core.steps import parse_step
from repro.exceptions import (
    IllegalScheduleError,
    ImproperScheduleError,
    MalformedScheduleError,
)


class TestConstruction:
    def test_from_order(self, section2_t1, section2_t2):
        s = Schedule.from_order([section2_t1, section2_t2], ["T1", "T2", "T1"])
        assert [e.txn for e in s] == ["T1", "T2", "T1"]
        assert [e.index for e in s] == [0, 0, 1]

    def test_from_order_too_many_steps(self, section2_t2):
        with pytest.raises(MalformedScheduleError):
            Schedule.from_order([section2_t2], ["T2"] * 4)

    def test_from_order_unknown_txn(self, section2_t1):
        with pytest.raises(MalformedScheduleError):
            Schedule.from_order([section2_t1], ["T9"])

    def test_events_must_be_in_transaction_order(self, section2_t1):
        evt = Event("T1", 1, section2_t1.steps[1])
        with pytest.raises(MalformedScheduleError, match="out of order"):
            Schedule([section2_t1], [evt])

    def test_events_must_match_steps(self, section2_t1):
        evt = Event("T1", 0, parse_step("(W zz)"))
        with pytest.raises(MalformedScheduleError, match="does not match"):
            Schedule([section2_t1], [evt])

    def test_serial(self, section2_t1, section2_t2):
        s = Schedule.serial([section2_t1, section2_t2])
        assert s.is_serial() and s.is_complete
        assert len(s) == len(section2_t1) + len(section2_t2)

    def test_serial_custom_order(self, section2_t1, section2_t2):
        s = Schedule.serial([section2_t1, section2_t2], order=["T2", "T1"])
        assert s.events[0].txn == "T2"

    def test_serial_prefixes(self, section2_t1, section2_t2):
        s = Schedule.serial_prefixes(
            [section2_t1, section2_t2], {"T1": 2, "T2": 1}, ["T1", "T2"]
        )
        assert len(s) == 3
        assert s.is_serial() and not s.is_complete


class TestShape:
    def test_progress_and_projection(self, section2_proper):
        assert section2_proper.progress() == {"T1": 4, "T2": 3}
        assert len(section2_proper.projection("T2")) == 3

    def test_prefix(self, section2_proper):
        p = section2_proper.prefix(3)
        assert len(p) == 3 and not p.is_complete

    def test_is_serial_detects_interleaving(self, section2_proper):
        assert not section2_proper.is_serial()

    def test_extended_by_steps(self, section2_t1, section2_t2):
        s = Schedule([section2_t1, section2_t2])
        s = s.extended_by_steps("T1", 2).extended_by_steps("T2", 1)
        assert [e.txn for e in s] == ["T1", "T1", "T2"]

    def test_next_event_of(self, section2_t1):
        s = Schedule([section2_t1])
        evt = s.next_event_of("T1")
        assert evt == Event("T1", 0, section2_t1.steps[0])
        done = Schedule.serial([section2_t1])
        assert done.next_event_of("T1") is None


class TestProperness:
    def test_paper_proper_example(self, section2_proper):
        assert section2_proper.is_proper()

    def test_paper_improper_example(self, section2_improper):
        assert not section2_improper.is_proper()
        msg = section2_improper.properness_violation()
        assert "(W c)" in msg

    def test_proper_depends_on_initial_state(self, section2_t1, section2_t2):
        # T1 alone is proper iff c pre-exists (its (W c) step needs it).
        t1_only = Schedule.serial_prefixes(
            [section2_t1, section2_t2], {"T1": 4, "T2": 0}, ["T1"]
        )
        assert t1_only.is_proper(StructuralState.of("c"))
        assert not t1_only.is_proper(StructuralState.empty())

    def test_assert_proper(self, section2_improper):
        with pytest.raises(ImproperScheduleError):
            section2_improper.assert_proper()

    def test_final_state(self, section2_proper):
        final = section2_proper.final_state()
        assert final.entities == frozenset({"a", "c", "d"})

    def test_structural_trace_length(self, section2_proper):
        assert len(section2_proper.structural_trace()) == len(section2_proper) + 1


class TestLegality:
    def test_legal_serial(self, simple_locked_pair):
        assert Schedule.serial(simple_locked_pair).is_legal()

    def test_illegal_interleaving(self, simple_locked_pair):
        s = Schedule.from_order(simple_locked_pair, ["T1", "T2"])
        assert not s.is_legal()
        assert "T2 acquires" in s.legality_violation()

    def test_shared_locks_coexist(self):
        t1 = Transaction.from_text("T1", "(LS a) (R a) (US a)")
        t2 = Transaction.from_text("T2", "(LS a) (R a) (US a)")
        s = Schedule.from_order([t1, t2], ["T1", "T2", "T1", "T2", "T1", "T2"])
        assert s.is_legal()

    def test_shared_blocks_exclusive(self):
        t1 = Transaction.from_text("T1", "(LS a) (R a) (US a)")
        t2 = Transaction.from_text("T2", "(LX a) (W a) (UX a)")
        s = Schedule.from_order([t1, t2], ["T1", "T2"])
        assert not s.is_legal()

    def test_assert_legal(self, simple_locked_pair):
        s = Schedule.from_order(simple_locked_pair, ["T1", "T2"])
        with pytest.raises(IllegalScheduleError):
            s.assert_legal()

    def test_held_locks_reporting(self, simple_locked_pair):
        s = Schedule.from_order(simple_locked_pair, ["T1"])
        held = s.held_locks()
        assert "a" in held["T1"] and not held["T2"]
        holders = s.lock_holders()
        assert set(holders["a"]) == {"T1"}


class TestValidate:
    def test_validate_ok(self, simple_locked_pair):
        s = Schedule.serial(simple_locked_pair)
        validate_schedule(s, require_complete=True)

    def test_validate_flags_incomplete(self, simple_locked_pair):
        s = Schedule.serial(simple_locked_pair).prefix(2)
        with pytest.raises(MalformedScheduleError):
            validate_schedule(s, require_complete=True)


class TestRendering:
    def test_format_rows_shape(self, section2_proper):
        text = section2_proper.format_rows(["T1", "T2"])
        lines = text.splitlines()
        assert lines[0].startswith("T1:")
        assert lines[1].startswith("T2:")
        assert "(I a)" in lines[0]
        assert "(D b)" in lines[1]
