"""Tests for the strict 2PL baseline policy."""

import pytest

from repro.core import is_serializable
from repro.core.states import StructuralState
from repro.policies import Access, InsertNode, Read, TwoPhasePolicy, Write
from repro.sim import Simulator, WorkloadItem, random_access_workload


class TestSessionShape:
    def test_session_is_two_phase_and_well_formed(self):
        ctx = TwoPhasePolicy().create_context()
        session = ctx.begin("T1", [Access("a"), Read("b"), Write("c")])
        steps = list(session._steps)
        locks = [i for i, s in enumerate(steps) if s.is_lock]
        unlocks = [i for i, s in enumerate(steps) if s.is_unlock]
        assert max(locks) < min(unlocks)
        # every data op covered
        from repro.core.transactions import Transaction

        txn = Transaction("T1", tuple(steps))
        assert txn.is_well_formed()
        assert txn.is_two_phase()

    def test_shared_locks_only_when_enabled(self):
        ctx = TwoPhasePolicy(use_shared_locks=True).create_context()
        session = ctx.begin("T1", [Read("a"), Write("b")])
        from repro.core.operations import Operation

        steps = list(session._steps)
        assert any(s.op is Operation.LOCK_SHARED and s.entity == "a" for s in steps)
        assert any(s.op is Operation.LOCK_EXCLUSIVE and s.entity == "b" for s in steps)

    def test_exclusive_only_by_default(self):
        ctx = TwoPhasePolicy().create_context()
        session = ctx.begin("T1", [Read("a")])
        from repro.core.operations import Operation

        assert all(
            s.op is not Operation.LOCK_SHARED for s in session._steps
        )

    def test_insert_node_intent(self):
        ctx = TwoPhasePolicy().create_context()
        session = ctx.begin("T1", [Access("p"), InsertNode("n", parents=("p",))])
        from repro.core.transactions import Transaction

        txn = Transaction("T1", tuple(session._steps))
        assert txn.is_well_formed()


class TestRuns:
    @pytest.mark.parametrize("seed", range(5))
    def test_runs_are_serializable(self, seed):
        items, init = random_access_workload(5, 5, 3, seed=seed)
        result = Simulator(TwoPhasePolicy(), seed=seed).run(items, init)
        assert len(result.committed) == 5
        assert is_serializable(result.schedule)

    def test_deadlock_resolved_by_abort(self):
        # T1 locks a then b; T2 locks b then a -- conservative 2PL acquires
        # in first-use order, so opposite orders can deadlock; the simulator
        # must abort one and still finish.
        items = [
            WorkloadItem("T1", [Access("a"), Access("b")]),
            WorkloadItem("T2", [Access("b"), Access("a")]),
        ]
        init = StructuralState.of("a", "b")
        found_deadlock = False
        for seed in range(30):
            result = Simulator(TwoPhasePolicy(), seed=seed).run(items, init)
            assert is_serializable(result.schedule)
            if result.metrics.deadlocks:
                found_deadlock = True
        assert found_deadlock

    def test_hotspot_contention_still_serializable(self):
        items, init = random_access_workload(4, 6, 3, hot_fraction=0.5, seed=9)
        result = Simulator(TwoPhasePolicy(), seed=9).run(items, init)
        assert is_serializable(result.schedule)
