"""Tests for the completion search (condition 2b machinery)."""

import pytest

from repro import Schedule, StructuralState, Transaction, find_completion, is_completable
from repro.exceptions import SearchBudgetExceeded


class TestCompletion:
    def test_empty_schedule_completes(self, simple_locked_pair):
        s = Schedule(simple_locked_pair)
        # With no transaction started the empty schedule is vacuously
        # "complete" under the paper's subset semantics; require_all forces
        # the full system to run.
        done = find_completion(s, require_all=True)
        assert done is not None and done.is_complete
        assert done.is_legal() and done.is_proper()

    def test_completion_extends_prefix(self, simple_locked_pair):
        s = Schedule.from_order(simple_locked_pair, ["T1", "T1"])
        done = find_completion(s)
        assert done is not None
        assert done.events[:2] == s.events

    def test_impossible_properness(self):
        t = Transaction.from_text("T", "(LX z) (W z) (UX z)")
        s = Schedule([t]).extended_by_steps("T", 1)
        # z never exists and nobody inserts it: no completion.
        assert find_completion(s) is None

    def test_cooperative_properness(self):
        # T1 writes c, which only T3 inserts: the completion must start T3
        # and order its insert before T1's lock of c.
        t1 = Transaction.from_text("T1", "(LX d) (I d) (UX d) (LX c) (W c) (UX c)")
        t3 = Transaction.from_text("T3", "(LX c) (I c) (UX c)")
        s = Schedule([t1, t3]).extended_by_steps("T1", 3)
        done = find_completion(s)
        assert done is not None
        evs = [str(e) for e in done.events]
        assert evs.index("T3:(I c)") < evs.index("T1:(W c)")

    def test_lock_deadlock_has_no_completion(self):
        # T1 holds a and needs b; T2 holds b and needs a: the prefix where
        # both hold their first lock cannot complete legally.
        t1 = Transaction.from_text("T1", "(LX a) (LX b) (I a) (I b) (UX a) (UX b)")
        t2 = Transaction.from_text("T2", "(LX b) (LX a) (I b) (I a) (UX b) (UX a)")
        s = Schedule.from_order([t1, t2], ["T1", "T2"])
        assert not is_completable(s)

    def test_require_all_flag(self):
        t1 = Transaction.from_text("T1", "(LX a) (I a) (UX a)")
        t2 = Transaction.from_text("T2", "(LX z) (W z) (UX z)")  # never proper
        s = Schedule([t1, t2]).extended_by_steps("T1", 1)
        # Without require_all, T2 may stay unstarted.
        assert is_completable(s, require_all=False)
        assert not is_completable(s, require_all=True)

    def test_budget_exceeded_raises(self):
        txns = [
            Transaction.from_text(f"T{i}", "(LX a) (R a) (UX a)") for i in range(6)
        ]
        # Rename entities apart so the state space is wide.
        txns = [
            Transaction.from_text(f"T{i}", f"(LX e{i}) (R e{i}) (UX e{i})")
            for i in range(8)
        ]
        s = Schedule(txns)
        with pytest.raises(SearchBudgetExceeded):
            find_completion(
                s,
                StructuralState(frozenset({f"e{i}" for i in range(8)})),
                budget=5,
                require_all=True,
            )

    def test_initial_state_respected(self):
        t = Transaction.from_text("T", "(LX a) (D a) (UX a)")
        s = Schedule([t]).extended_by_steps("T", 1)
        assert is_completable(s, StructuralState.of("a"))
        assert not is_completable(s, StructuralState.empty())
