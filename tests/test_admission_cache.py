"""Direct unit coverage of the admission layer
(:class:`repro.sim.AdmissionCache`): registration routing, the
invalidation-channel subscription index, dirty-set routing, and the tick
queries.  The full classification semantics are covered end to end by the
engine-equivalence suites; these tests pin the cache's contract in
isolation.
"""

from repro.sim import AdmissionCache, Metrics


def make_cache(live_names=("A", "B", "C")):
    live = {n: object() for n in live_names}
    metrics = Metrics()
    return AdmissionCache(live, metrics), live, metrics


class TestRegistration:
    def test_tracks_deps_gets_phase1_and_dirty(self):
        cache, _, _ = make_cache()
        cache.register("A", tracks_deps=True, dynamic=False, complete=False)
        assert "A" in cache.phase1 and "A" in cache.dirty
        assert "A" not in cache.dynamic

    def test_no_declaration_dynamic_joins_every_tick_set(self):
        cache, _, _ = make_cache()
        cache.register("A", tracks_deps=False, dynamic=True, complete=False)
        assert "A" in cache.dynamic
        assert "A" not in cache.dirty

    def test_drained_script_goes_complete(self):
        cache, _, _ = make_cache()
        cache.register("A", tracks_deps=False, dynamic=False, complete=True)
        assert "A" in cache.complete
        assert "A" not in cache.dirty

    def test_plain_session_is_just_dirty(self):
        cache, _, _ = make_cache()
        cache.register("A", tracks_deps=False, dynamic=False, complete=False)
        assert cache.dirty == {"A"}

    def test_forget_clears_every_route(self):
        cache, _, _ = make_cache()
        cache.register("A", tracks_deps=True, dynamic=False, complete=False)
        cache.subscribe("A", ["ch1"])
        cache.runnable.add("A")
        cache.forget("A")
        assert not cache.dirty and not cache.phase1 and not cache.runnable
        assert cache.channel_subs == {} and cache.session_subs == {}


class TestChannels:
    def test_policy_changed_marks_only_subscribers_dirty(self):
        cache, _, metrics = make_cache()
        cache.subscribe("A", ["ch1", "ch2"])
        cache.subscribe("B", ["ch2"])
        cache.policy_changed(("ch2",))
        assert cache.dirty == {"A", "B"}
        assert metrics.invalidations == 2
        cache.policy_changed(("ch-unknown",))
        assert metrics.invalidations == 2

    def test_resubscribe_moves_channels(self):
        cache, _, _ = make_cache()
        cache.subscribe("A", ["ch1", "ch2"])
        cache.subscribe("A", ["ch2", "ch3"])
        assert cache.channel_subs == {"ch2": {"A"}, "ch3": {"A"}}
        assert cache.session_subs["A"] == ("ch2", "ch3")
        cache.subscribe("A", [])
        assert cache.channel_subs == {} and cache.session_subs == {}

    def test_departed_subscriber_is_not_marked(self):
        cache, live, metrics = make_cache()
        cache.subscribe("A", ["ch1"])
        del live["A"]
        cache.policy_changed(("ch1",))
        assert cache.dirty == set()
        assert metrics.invalidations == 0

    def test_already_dirty_subscriber_counts_once(self):
        cache, _, metrics = make_cache()
        cache.subscribe("A", ["ch1"])
        cache.dirty.add("A")
        cache.policy_changed(("ch1",))
        assert metrics.invalidations == 0


class TestDirtyRouting:
    def test_wake_filters_departed_and_counts(self):
        cache, live, metrics = make_cache(("A", "B"))
        cache.wake(["A", "B", "GONE"])
        assert cache.dirty == {"A", "B"}
        assert metrics.wakeups == 2
        cache.wake(["A"])  # already dirty: no double count
        assert metrics.wakeups == 2

    def test_mark_dirty_excludes_and_filters(self):
        cache, _, _ = make_cache(("A", "B"))
        cache.mark_dirty(["A", "B", "GONE"], exclude="A")
        assert cache.dirty == {"B"}

    def test_watch_unwatch_round_trip(self):
        cache, _, _ = make_cache()
        cache.watch("e1", "A")
        cache.watch("e1", "B")
        cache.unwatch("e1", "A")
        assert cache.watchers == {"e1": {"B"}}
        cache.unwatch("e1", "B")
        assert cache.watchers == {}


class TestTickQueries:
    def test_phase1_candidates_drains_phase1_keeps_standing_sets(self):
        cache, live, _ = make_cache(("A", "B", "C"))
        cache.complete.add("A")
        cache.dynamic.add("B")
        cache.phase1.add("C")
        cache.phase1.add("GONE")
        first = set(cache.phase1_candidates())
        assert first == {"A", "B", "C"}
        assert cache.phase1 == set()
        # complete/dynamic are standing: they come back next tick.
        assert set(cache.phase1_candidates()) == {"A", "B"}

    def test_take_check_set_is_sorted_filtered_and_draining(self):
        cache, live, _ = make_cache(("A", "B", "C", "D"))
        cache.dirty.update({"C", "A", "GONE"})
        cache.dynamic.add("B")
        cache.complete.add("D")
        cache.dirty.add("D")  # complete sessions are never re-classified
        assert cache.take_check_set() == ["A", "B", "C"]
        # dirty drained; dynamic remains standing.
        assert cache.take_check_set() == ["B"]
