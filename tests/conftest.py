"""Shared fixtures: the paper's worked examples as reusable objects."""

from __future__ import annotations

import pytest

from repro import Schedule, StructuralState, Transaction
from repro.enumeration import fig2_proper_schedule, fig2_system


@pytest.fixture
def section2_t1() -> Transaction:
    """T1 of the Section 2 properness example."""
    return Transaction.from_text("T1", "(I a) (I b) (W c) (I d)")


@pytest.fixture
def section2_t2() -> Transaction:
    """T2 of the Section 2 properness example."""
    return Transaction.from_text("T2", "(R a) (D b) (I c)")


@pytest.fixture
def section2_proper(section2_t1, section2_t2) -> Schedule:
    """The paper's proper interleaving: T1 does (I a)(I b), then T2 runs
    fully, then T1 finishes with (W c)(I d)."""
    return Schedule.from_order(
        [section2_t1, section2_t2],
        ["T1", "T1", "T2", "T2", "T2", "T1", "T1"],
    )


@pytest.fixture
def section2_improper(section2_t1, section2_t2) -> Schedule:
    """The paper's improper interleaving: T1 runs entirely first, so (W c)
    executes when the database contains only a and b."""
    return Schedule.serial([section2_t1, section2_t2])


@pytest.fixture
def fig2_txns():
    return fig2_system()


@pytest.fixture
def fig2_sp():
    return fig2_proper_schedule()


@pytest.fixture
def simple_locked_pair():
    """Two well-formed 2PL transactions over one entity."""
    t1 = Transaction.from_text("T1", "(LX a) (I a) (UX a)")
    t2 = Transaction.from_text("T2", "(LX a) (W a) (UX a)")
    return [t1, t2]


@pytest.fixture
def nontwophase_pair():
    """The minimal unsafe shape: both transactions release early and relock
    a second entity — interleavings can order (a) and (b) oppositely."""
    t1 = Transaction.from_text(
        "T1", "(LX a) (W a) (UX a) (LX b) (W b) (UX b)"
    )
    t2 = Transaction.from_text(
        "T2", "(LX b) (W b) (UX b) (LX a) (W a) (UX a)"
    )
    return [t1, t2]


@pytest.fixture
def initial_ab() -> StructuralState:
    return StructuralState.of("a", "b")
