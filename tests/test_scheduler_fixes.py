"""Regression tests for the scheduler/lock-table correctness sweep:

1. a policy that commits while holding locks no longer leaks them (later
   sessions used to livelock with a SimulationError);
2. restart accounting counts only actual restarts, not drops;
3. lock upgrades (SHARED then EXCLUSIVE) keep coherent release semantics;
4. ``run_cell`` cannot report an all-failed cell as serializable;
5. an arrival behind an idle gap admits at its requested ``start_tick``
   (the clock used to jump to the start tick and *then* increment);
6. ``_find_cycle`` survives wait chains deeper than Python's recursion
   limit (it used to be a recursive DFS);
7. aborts erase a transaction's events through the per-transaction index
   (tombstones) rather than rebuilding the whole log;
8. the idle-gap jump respects ``max_ticks`` (a far-future ``start_tick``
   used to jump the clock past the cap and admit/execute anyway);
9. ``active_integral`` counts a transaction from its admission tick, so
   ``mean_active`` no longer undercounts staggered arrivals;
10. ``CellResult.row()`` surfaces the computed standard deviations and
    huge live populations are truncated in ``SimulationError`` messages;

plus direct unit coverage of the deadlock machinery
(``_pick_deadlock_victim`` / ``_find_cycle``) and the livelock error path.
"""

import pytest

from repro.core import LockMode, Operation, Step, StructuralState
from repro.core.schedules import Event
from repro.exceptions import PolicyViolation, SimulationError
from repro.policies import Access, TwoPhasePolicy
from repro.policies.base import (
    Admission,
    AdmissionResult,
    LockingPolicy,
    PolicyContext,
    PolicySession,
    ScriptedSession,
    access_steps,
)
from repro.sim import LockTable, Simulator, WorkloadItem, run_cell
from repro.sim.metrics import TxnRecord
from repro.sim.scheduler import (
    _Live,
    _Run,
    _assemble,
    _find_cycle,
    _pick_deadlock_victim,
)


ENGINES = ("event", "naive")


# ----------------------------------------------------------------------
# Test policies
# ----------------------------------------------------------------------


class _LeakyContext(PolicyContext):
    """Sessions lock and access but never unlock: they commit while holding
    their whole footprint."""

    def begin(self, name, intents):
        steps = []
        for intent in intents:
            assert isinstance(intent, Access)
            steps.append(Step(Operation.LOCK_EXCLUSIVE, intent.entity))
            steps.extend(access_steps(intent.entity))
        return ScriptedSession(name, steps)


class LeakyPolicy(LockingPolicy):
    name = "Leaky"

    def create_context(self, **kwargs):
        return _LeakyContext()


class _AbortingSession(PolicySession):
    """Admission always says ABORT; the pending step never executes."""

    dynamic = True

    def peek(self):
        return Step(Operation.LOCK_EXCLUSIVE, "a")

    def executed(self):
        raise AssertionError("an always-aborting session must never run")

    def admission(self):
        return AdmissionResult(Admission.ABORT, reason="always aborts")


class _LyingAbortingSession(_AbortingSession):
    """Claims to be static while overriding admission(): the scheduler must
    treat it as dynamic anyway (the flag only covers the default PROCEED)."""

    dynamic = False


class _AbortingContext(PolicyContext):
    def __init__(self, begins_allowed):
        self.begins_allowed = begins_allowed
        self.begins = 0

    def begin(self, name, intents):
        self.begins += 1
        if self.begins > self.begins_allowed:
            raise PolicyViolation("TEST", "no more begins")
        return self.session_cls(name)


class AbortingPolicy(LockingPolicy):
    name = "AlwaysAbort"
    session_cls = _AbortingSession

    def create_context(self, begins_allowed=10**9, **kwargs):
        ctx = _AbortingContext(begins_allowed)
        ctx.session_cls = self.session_cls
        return ctx


class LyingAbortingPolicy(AbortingPolicy):
    name = "AlwaysAbort-lying"
    session_cls = _LyingAbortingSession


class _WaitForeverSession(PolicySession):
    """Admission WAITs on a transaction that is not in the run: the
    waits-for graph stays acyclic and the scheduler must diagnose a
    livelock rather than spin."""

    dynamic = True

    def peek(self):
        return Step(Operation.LOCK_EXCLUSIVE, "a")

    def executed(self):
        raise AssertionError("never runs")

    def admission(self):
        return AdmissionResult(Admission.WAIT, waiting_on=("GHOST",))


class _WaitForeverContext(PolicyContext):
    def begin(self, name, intents):
        return _WaitForeverSession(name)


class WaitForeverPolicy(LockingPolicy):
    name = "WaitForever"

    def create_context(self, **kwargs):
        return _WaitForeverContext()


# ----------------------------------------------------------------------
# 1. Commit releases held locks
# ----------------------------------------------------------------------


class TestCommitReleasesLocks:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_later_session_runs_after_leaky_commit(self, engine):
        # T1 commits while holding "a"; T2 arrives afterwards and needs it.
        # Before the fix T1's lock leaked forever and T2 livelocked.
        items = [
            WorkloadItem("T1", [Access("a")]),
            WorkloadItem("T2", [Access("a")], start_tick=10),
        ]
        result = Simulator(LeakyPolicy(), seed=0, engine=engine).run(
            items, StructuralState.of("a"), validate=False
        )
        assert result.committed == ("T1", "T2")
        assert result.ok

    @pytest.mark.parametrize("engine", ENGINES)
    def test_concurrent_contenders_all_commit(self, engine):
        items = [WorkloadItem(f"T{i}", [Access("a"), Access("b")]) for i in range(4)]
        result = Simulator(LeakyPolicy(), seed=1, engine=engine).run(
            items, StructuralState.of("a", "b"), validate=False
        )
        assert result.metrics.committed == 4


# ----------------------------------------------------------------------
# 2. Restart accounting
# ----------------------------------------------------------------------


class TestRestartAccounting:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_drop_via_restart_none_counts_no_restart(self, engine):
        items = [
            WorkloadItem("T1", [Access("a")], restart=lambda n, a, c: None)
        ]
        result = Simulator(AbortingPolicy(), seed=0, engine=engine).run(
            items, StructuralState.of("a"), validate=False
        )
        assert result.aborted == ("T1",)
        m = result.metrics
        assert m.aborted == 1
        assert m.restarts == 0, "a drop is not a restart"
        assert m.records["T1"].restarts == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_drop_via_begin_refusal_counts_no_restart(self, engine):
        items = [WorkloadItem("T1", [Access("a")])]
        sim = Simulator(
            AbortingPolicy(),
            seed=0,
            engine=engine,
            context_kwargs={"begins_allowed": 1},
        )
        result = sim.run(items, StructuralState.of("a"), validate=False)
        assert result.aborted == ("T1",)
        assert result.metrics.restarts == 0
        assert result.metrics.records["T1"].restarts == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_exhausted_budget_counts_each_actual_restart(self, engine):
        items = [WorkloadItem("T1", [Access("a")])]
        sim = Simulator(AbortingPolicy(), seed=0, engine=engine, max_restarts=3)
        result = sim.run(items, StructuralState.of("a"), validate=False)
        assert result.aborted == ("T1",)
        m = result.metrics
        # Attempts 1..4 abort; attempts 2..4 were actual restarts.
        assert m.aborted == 4
        assert m.restarts == 3
        assert m.records["T1"].restarts == 3


    @pytest.mark.parametrize("engine", ENGINES)
    def test_overridden_admission_enforced_despite_static_flag(self, engine):
        # dynamic=False only covers the default always-PROCEED admission; a
        # session that overrides admission() must still be re-checked, so
        # the ABORT verdict fires under both engines.
        items = [
            WorkloadItem("T1", [Access("a")], restart=lambda n, a, c: None)
        ]
        result = Simulator(LyingAbortingPolicy(), seed=0, engine=engine).run(
            items, StructuralState.of("a"), validate=False
        )
        assert result.aborted == ("T1",)


# ----------------------------------------------------------------------
# 3. Lock upgrades
# ----------------------------------------------------------------------


class TestLockUpgrade:
    def test_release_shared_after_upgrade_keeps_exclusive(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.SHARED)
        t.acquire("T1", "a", LockMode.EXCLUSIVE)  # self-upgrade
        assert t.modes_held("T1", "a") == {LockMode.SHARED, LockMode.EXCLUSIVE}
        assert t.release("T1", "a", LockMode.SHARED) == []
        # The exclusive grant must survive the shared release...
        assert t.mode_held("T1", "a") is LockMode.EXCLUSIVE
        assert t.blockers("T2", "a", LockMode.SHARED) == ["T1"]
        # ...and releasing it actually frees the entity (the old overwrite
        # semantics made the SHARED release a silent no-op and leaked the
        # exclusive lock until abort).
        t.release("T1", "a", LockMode.EXCLUSIVE)
        assert t.mode_held("T1", "a") is None
        assert t.grantable("T2", "a", LockMode.EXCLUSIVE)

    def test_release_exclusive_after_upgrade_downgrades(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.SHARED)
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        t.release("T1", "a", LockMode.EXCLUSIVE)
        assert t.mode_held("T1", "a") is LockMode.SHARED
        assert t.grantable("T2", "a", LockMode.SHARED)
        assert not t.grantable("T2", "a", LockMode.EXCLUSIVE)

    def test_held_by_and_release_all_report_strongest_mode(self):
        t = LockTable()
        t.acquire("T1", "a", LockMode.SHARED)
        t.acquire("T1", "a", LockMode.EXCLUSIVE)
        assert t.held_by("T1") == {"a": LockMode.EXCLUSIVE}
        assert t.release_all("T1") == [("a", LockMode.EXCLUSIVE)]
        assert t.locked_entities() == frozenset()


# ----------------------------------------------------------------------
# 4. run_cell zero-run reporting
# ----------------------------------------------------------------------


class TestRunCellZeroRuns:
    def test_all_failed_cell_is_not_green(self):
        def factory(seed):
            items = [
                WorkloadItem("T1", [Access("a"), Access("b")]),
                WorkloadItem("T2", [Access("b"), Access("a")]),
            ]
            return items, StructuralState.of("a", "b")

        cell = run_cell(
            TwoPhasePolicy(), "doomed", factory, seeds=range(3), max_ticks=2
        )
        assert cell.runs == 0
        assert cell.failures == 3
        assert cell.means == {}
        assert cell.all_serializable is False, (
            "a cell whose every seed failed must not report serializable"
        )
        assert cell.row()["serializable"] is False


class TestRowSurfacesStdevs:
    def test_row_includes_sd_columns(self):
        from repro.sim import long_transaction_workload

        def factory(seed):
            return long_transaction_workload(5, 2, seed=seed)

        cell = run_cell(TwoPhasePolicy(), "long", factory, seeds=range(4))
        row = cell.row()
        for k, v in cell.stdevs.items():
            assert row[f"{k}_sd"] == round(v, 4), (
                "row() must surface the computed standard deviations"
            )
        assert any(v > 0 for v in cell.stdevs.values()), (
            "different seeds should produce some spread"
        )


# ----------------------------------------------------------------------
# Deadlock machinery units
# ----------------------------------------------------------------------


def _live_entry(name, steps_executed=0, structural=False):
    steps = [Step(Operation.INSERT if structural else Operation.READ, "x")]
    session = ScriptedSession(name, steps)
    if structural:
        session.executed()  # records the structural effect
    entry = _Live(
        item=WorkloadItem(name, []),
        session=session,
        record=TxnRecord(name, start_tick=0),
    )
    entry.step_count = steps_executed
    return entry


class _RecordingLeakyContext(_LeakyContext):
    """Leaky sessions plus a record of every begin() call."""

    def __init__(self):
        self.begun = []

    def begin(self, name, intents):
        self.begun.append(name)
        return super().begin(name, intents)


class RecordingLeakyPolicy(LockingPolicy):
    name = "RecordingLeaky"

    def __init__(self):
        self.contexts = []

    def create_context(self, **kwargs):
        ctx = _RecordingLeakyContext()
        self.contexts.append(ctx)
        return ctx


class TestIdleGapRespectsMaxTicks:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_far_future_arrival_raises_before_admission(self, engine):
        # The idle-gap jump happened *after* the max_ticks guard, so a
        # far-future start_tick jumped the clock past the cap and the run
        # admitted and executed the arrival before the guard caught up.
        items = [
            WorkloadItem("T1", [Access("a")]),
            WorkloadItem("T2", [Access("a")], start_tick=10_000),
        ]
        policy = RecordingLeakyPolicy()
        sim = Simulator(policy, seed=0, engine=engine, max_ticks=100)
        with pytest.raises(SimulationError, match="exceeded 100 ticks"):
            sim.run(items, StructuralState.of("a"), validate=False)
        assert policy.contexts[0].begun == ["T1"], (
            "the guard must fire before the far-future arrival is admitted"
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_arrival_exactly_at_cap_still_runs(self, engine):
        items = [WorkloadItem("T1", [Access("a")], start_tick=95)]
        result = Simulator(
            TwoPhasePolicy(), seed=0, engine=engine, max_ticks=100
        ).run(items, StructuralState.of("a"), validate=False)
        assert result.committed == ("T1",)
        assert result.metrics.records["T1"].start_tick == 95


class TestActiveIntegralCountsAdmissionTick:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_arrival_counts_from_its_first_tick(self, engine):
        # T1 idles until tick 5, then is live for every remaining tick of
        # the run: the integral is exactly (ticks - 4), admission tick
        # included (it used to be invisible until tick 6).
        items = [WorkloadItem("T1", [Access("a")], start_tick=5)]
        result = Simulator(TwoPhasePolicy(), seed=0, engine=engine).run(
            items, StructuralState.of("a"), validate=False
        )
        m = result.metrics
        assert m.records["T1"].start_tick == 5
        assert m.active_integral == m.ticks - 4

    def test_engines_agree_on_mean_active_under_staggering(self):
        items = [
            WorkloadItem(f"T{i}", [Access(f"e{i % 3}")], start_tick=3 * i)
            for i in range(6)
        ]
        initial = StructuralState.of("e0", "e1", "e2")
        summaries = {
            engine: Simulator(TwoPhasePolicy(), seed=0, engine=engine)
            .run(items, initial, validate=False)
            .metrics.summary()
            for engine in ENGINES
        }
        assert summaries["event"] == summaries["naive"]
        assert summaries["event"]["mean_active"] > 0


class TestErrorMessageTruncation:
    def test_small_population_is_listed_in_full(self):
        from repro.sim.scheduler import _truncated

        assert _truncated(["T1", "T2"]) == "['T1', 'T2']"

    def test_large_population_is_truncated(self):
        from repro.sim.scheduler import _truncated

        names = [f"T{i:05d}" for i in range(5000)]
        text = _truncated(names)
        assert "+4988 more" in text
        assert len(text) < 300

    def test_max_ticks_error_mentions_counts_not_every_name(self):
        items = [
            WorkloadItem(f"T{i:04d}", [Access("a"), Access("b")])
            for i in range(200)
        ]
        with pytest.raises(SimulationError) as exc:
            Simulator(TwoPhasePolicy(), seed=0, max_ticks=3).run(
                items, StructuralState.of("a", "b"), validate=False
            )
        assert "more]" in str(exc.value)
        assert len(str(exc.value)) < 400


class TestIdleGapArrival:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_arrival_behind_idle_gap_admits_at_start_tick(self, engine):
        # T1 finishes long before T2 arrives; the clock idles, jumps, and
        # used to admit T2 at start_tick + 1.
        items = [
            WorkloadItem("T1", [Access("a")]),
            WorkloadItem("T2", [Access("a")], start_tick=50),
        ]
        result = Simulator(TwoPhasePolicy(), seed=0, engine=engine).run(
            items, StructuralState.of("a"), validate=False
        )
        assert result.committed == ("T1", "T2")
        assert result.metrics.records["T2"].start_tick == 50

    @pytest.mark.parametrize("engine", ENGINES)
    def test_idle_from_tick_zero(self, engine):
        items = [WorkloadItem("T1", [Access("a")], start_tick=10)]
        result = Simulator(TwoPhasePolicy(), seed=0, engine=engine).run(
            items, StructuralState.of("a"), validate=False
        )
        assert result.metrics.records["T1"].start_tick == 10

    @pytest.mark.parametrize("engine", ENGINES)
    def test_staggered_chain_of_idle_gaps(self, engine):
        starts = [0, 20, 45, 90]
        items = [
            WorkloadItem(f"T{i}", [Access("a")], start_tick=s)
            for i, s in enumerate(starts)
        ]
        result = Simulator(TwoPhasePolicy(), seed=1, engine=engine).run(
            items, StructuralState.of("a"), validate=False
        )
        for i, s in enumerate(starts):
            assert result.metrics.records[f"T{i}"].start_tick == s


class TestEraseIndex:
    def _run(self):
        return _Run(Simulator(TwoPhasePolicy(), seed=0), [])

    def test_erase_tombstones_only_own_events(self):
        run = self._run()
        e = [
            Event("T1", 0, Step(Operation.READ, "a")),
            Event("T2", 0, Step(Operation.READ, "b")),
            Event("T1", 1, Step(Operation.WRITE, "a")),
            Event("T2", 1, Step(Operation.WRITE, "b")),
        ]
        for ev in e:
            run.record_event(ev.txn, ev)
        run.erase("T1")
        assert run.events == [None, e[1], None, e[3]]
        assert "T1" not in run.events_by_txn
        assert run.events_by_txn["T2"] == [1, 3]

    def test_erase_unknown_and_repeat_are_noops(self):
        run = self._run()
        ev = Event("T1", 0, Step(Operation.READ, "a"))
        run.record_event("T1", ev)
        run.erase("GHOST")
        run.erase("T1")
        run.erase("T1")
        assert run.events == [None]

    def test_assemble_skips_tombstones_and_reindexes(self):
        run = self._run()
        for ev in (
            Event("T1", 0, Step(Operation.READ, "a")),
            Event("T2", 0, Step(Operation.READ, "b")),
            Event("T1", 1, Step(Operation.WRITE, "a")),
        ):
            run.record_event(ev.txn, ev)
        run.erase("T1")
        # A restarted T1 records fresh events after the erasure.
        run.record_event("T1", Event("T1", 0, Step(Operation.READ, "c")))
        schedule = _assemble(run.events)
        assert [(ev.txn, ev.index, ev.step) for ev in schedule.events] == [
            ("T2", 0, Step(Operation.READ, "b")),
            ("T1", 0, Step(Operation.READ, "c")),
        ]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_aborted_attempts_leave_no_events(self, engine):
        # Deadlock-prone pair: whoever aborts must leave only its final
        # (restarted) attempt in the schedule.
        items = [
            WorkloadItem("T1", [Access("a"), Access("b")]),
            WorkloadItem("T2", [Access("b"), Access("a")]),
        ]
        for seed in range(8):
            result = Simulator(TwoPhasePolicy(), seed=seed, engine=engine).run(
                items, StructuralState.of("a", "b")
            )
            assert result.metrics.committed == 2
            for txn in ("T1", "T2"):
                steps = result.schedule.transactions[txn].steps
                # One full clean pass: 2 locks + 2 reads + 2 writes + 2 unlocks.
                assert len(steps) == 8


class TestFindCycle:
    def test_no_cycle_returns_none(self):
        assert _find_cycle({"A": {"B"}, "B": {"C"}, "C": set()}) is None

    def test_self_loop(self):
        assert _find_cycle({"A": {"A"}}) == ["A"]

    def test_cycle_members_only(self):
        graph = {"A": {"B"}, "B": {"C"}, "C": {"B"}}
        cycle = _find_cycle(graph)
        assert cycle is not None
        assert set(cycle) == {"B", "C"}

    def test_finds_cycle_beyond_first_component(self):
        graph = {"A": set(), "B": {"C"}, "C": {"B"}}
        assert set(_find_cycle(graph)) == {"B", "C"}

    def test_deep_chain_without_cycle(self):
        # Far past the default recursion limit: the old recursive DFS blew
        # RecursionError on wait chains ≳1,000 deep.
        n = 5000
        graph = {f"T{i:05d}": {f"T{i + 1:05d}"} for i in range(n)}
        graph[f"T{n:05d}"] = set()
        assert _find_cycle(graph) is None

    def test_deep_chain_ending_in_cycle(self):
        n = 5000
        graph = {f"T{i:05d}": {f"T{i + 1:05d}"} for i in range(n)}
        graph[f"T{n:05d}"] = {f"T{n - 1:05d}"}
        cycle = _find_cycle(graph)
        assert cycle is not None
        assert set(cycle) == {f"T{n - 1:05d}", f"T{n:05d}"}

    def test_deep_chain_deadlock_victim_comes_from_cycle(self):
        # The full deadlock path over a deep chain: detector plus victim
        # selection must work at depths the recursive DFS could not reach.
        n = 3000
        graph = {f"T{i:05d}": {f"T{i + 1:05d}"} for i in range(n)}
        graph[f"T{n:05d}"] = {f"T{n - 1:05d}"}
        live = {
            name: _live_entry(name, steps_executed=i)
            for i, name in enumerate(graph)
        }
        live[f"T{n:05d}"] = _live_entry(f"T{n:05d}", steps_executed=0)
        victim = _pick_deadlock_victim(graph, live)
        assert victim == f"T{n:05d}"


class TestPickDeadlockVictim:
    def test_no_cycle_is_livelock(self):
        live = {n: _live_entry(n) for n in "AB"}
        assert _pick_deadlock_victim({"A": {"B"}}, live) is None

    def test_prefers_fewest_steps(self):
        live = {
            "A": _live_entry("A", steps_executed=5),
            "B": _live_entry("B", steps_executed=2),
        }
        graph = {"A": {"B"}, "B": {"A"}}
        assert _pick_deadlock_victim(graph, live) == "B"

    def test_prefers_no_structural_effects_over_fewer_steps(self):
        live = {
            "A": _live_entry("A", steps_executed=1, structural=True),
            "B": _live_entry("B", steps_executed=9),
        }
        graph = {"A": {"B"}, "B": {"A"}}
        assert _pick_deadlock_victim(graph, live) == "B"

    def test_name_breaks_ties(self):
        live = {n: _live_entry(n, steps_executed=3) for n in "BA"}
        graph = {"A": {"B"}, "B": {"A"}}
        assert _pick_deadlock_victim(graph, live) == "A"

    def test_victim_outside_cycle_never_picked(self):
        # D waits into the cycle but is not on it; the victim must come
        # from the cycle itself.
        live = {n: _live_entry(n) for n in "ABD"}
        live["D"].step_count = 0
        graph = {"A": {"B"}, "B": {"A"}, "D": {"A"}}
        assert _pick_deadlock_victim(graph, live) in {"A", "B"}


class TestLivelockDiagnosis:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_acyclic_wait_reports_livelock(self, engine):
        items = [WorkloadItem("T1", [Access("a")])]
        with pytest.raises(SimulationError, match="livelock"):
            Simulator(WaitForeverPolicy(), seed=0, engine=engine).run(
                items, StructuralState.of("a"), validate=False
            )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_deadlock_is_resolved_not_livelock(self, engine):
        # Two 2PL transactions locking in opposite orders will eventually
        # deadlock on some seed; the detector must abort a victim and finish.
        items = [
            WorkloadItem("T1", [Access("a"), Access("b")]),
            WorkloadItem("T2", [Access("b"), Access("a")]),
        ]
        saw_deadlock = False
        for seed in range(12):
            result = Simulator(TwoPhasePolicy(), seed=seed, engine=engine).run(
                items, StructuralState.of("a", "b")
            )
            assert result.metrics.committed == 2
            saw_deadlock |= result.metrics.deadlocks > 0
        assert saw_deadlock, "expected at least one seed to deadlock"
