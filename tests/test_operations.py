"""Unit tests for the operation algebra (repro.core.operations)."""

import pytest

from repro.core.operations import (
    ALL_OPERATIONS,
    DATA_OPERATIONS,
    LS,
    LX,
    NON_CONFLICTING,
    US,
    UX,
    D,
    I,
    LockMode,
    Operation,
    R,
    W,
    operations_conflict,
    parse_operation,
)


class TestClassification:
    def test_data_operations(self):
        assert DATA_OPERATIONS == {R, W, I, D}
        for op in DATA_OPERATIONS:
            assert op.is_data
            assert not op.is_lock
            assert not op.is_unlock

    def test_lock_operations(self):
        assert LS.is_lock and LX.is_lock
        assert US.is_unlock and UX.is_unlock
        assert not LS.is_data

    def test_structural_operations(self):
        assert I.is_structural and D.is_structural
        assert not R.is_structural and not W.is_structural

    def test_lock_modes(self):
        assert LS.lock_mode is LockMode.SHARED
        assert LX.lock_mode is LockMode.EXCLUSIVE
        assert US.lock_mode is LockMode.SHARED
        assert UX.lock_mode is LockMode.EXCLUSIVE
        assert R.lock_mode is None

    def test_definedness_requirements(self):
        assert R.requires_present and W.requires_present and D.requires_present
        assert I.requires_absent
        assert not LX.requires_present and not LX.requires_absent

    def test_all_operations_has_eight(self):
        assert len(ALL_OPERATIONS) == 8


class TestConflicts:
    def test_non_conflicting_set_is_paper_set(self):
        assert NON_CONFLICTING == {R, LS, US}

    def test_reads_and_shared_locks_do_not_conflict(self):
        for a in (R, LS, US):
            for b in (R, LS, US):
                assert not operations_conflict(a, b)

    def test_write_conflicts_with_everything(self):
        for other in ALL_OPERATIONS:
            assert operations_conflict(W, other)
            assert operations_conflict(other, W)

    def test_insert_delete_conflict_with_reads(self):
        assert operations_conflict(I, R)
        assert operations_conflict(D, R)

    def test_exclusive_lock_conflicts_with_shared(self):
        assert operations_conflict(LX, LS)
        assert operations_conflict(UX, LS)

    def test_conflict_symmetric(self):
        for a in ALL_OPERATIONS:
            for b in ALL_OPERATIONS:
                assert operations_conflict(a, b) == operations_conflict(b, a)


class TestLockMode:
    def test_mode_conflicts(self):
        assert LockMode.EXCLUSIVE.conflicts_with(LockMode.EXCLUSIVE)
        assert LockMode.EXCLUSIVE.conflicts_with(LockMode.SHARED)
        assert LockMode.SHARED.conflicts_with(LockMode.EXCLUSIVE)
        assert not LockMode.SHARED.conflicts_with(LockMode.SHARED)

    def test_mode_ops_roundtrip(self):
        assert LockMode.SHARED.lock_op is LS
        assert LockMode.SHARED.unlock_op is US
        assert LockMode.EXCLUSIVE.lock_op is LX
        assert LockMode.EXCLUSIVE.unlock_op is UX


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [("R", R), ("W", W), ("I", I), ("D", D), ("LS", LS), ("LX", LX),
         ("US", US), ("UX", UX), ("lx", LX), ("r", R)],
    )
    def test_parse_valid(self, text, expected):
        assert parse_operation(text) is expected

    def test_parse_invalid_raises(self):
        with pytest.raises(ValueError, match="unknown operation"):
            parse_operation("Q")

    def test_str_is_abbreviation(self):
        assert str(LX) == "LX" and str(R) == "R"
