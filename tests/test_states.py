"""Unit tests for structural/value states (repro.core.states)."""

import pytest

from repro.core.operations import Operation
from repro.core.states import (
    DatabaseState,
    StructuralState,
    ValueState,
    first_undefined_step,
    is_defined_sequence,
)
from repro.core.steps import Step, parse_steps
from repro.exceptions import ImproperScheduleError


class TestStructuralState:
    def test_empty(self):
        g = StructuralState.empty()
        assert len(g) == 0
        assert "a" not in g

    def test_of(self):
        g = StructuralState.of("a", "b")
        assert "a" in g and "b" in g and "c" not in g
        assert len(g) == 2

    def test_definedness_read_write_delete_need_presence(self):
        g = StructuralState.of("a")
        for op in (Operation.READ, Operation.WRITE, Operation.DELETE):
            assert g.defines(Step(op, "a"))
            assert not g.defines(Step(op, "b"))

    def test_definedness_insert_needs_absence(self):
        g = StructuralState.of("a")
        assert not g.defines(Step(Operation.INSERT, "a"))
        assert g.defines(Step(Operation.INSERT, "b"))

    def test_lock_steps_always_defined(self):
        g = StructuralState.empty()
        # "Before inserting an entity a transaction must lock it even though
        # it does not actually exist in the database."
        assert g.defines(Step(Operation.LOCK_EXCLUSIVE, "ghost"))
        assert g.defines(Step(Operation.UNLOCK_SHARED, "ghost"))

    def test_apply_insert_delete(self):
        g = StructuralState.empty()
        g2 = g.apply(Step(Operation.INSERT, "a"))
        assert "a" in g2 and "a" not in g  # immutability
        g3 = g2.apply(Step(Operation.DELETE, "a"))
        assert "a" not in g3

    def test_apply_undefined_raises(self):
        with pytest.raises(ImproperScheduleError):
            StructuralState.empty().apply(Step(Operation.WRITE, "a"))

    def test_apply_all_matches_paper_example(self):
        # T1 prefix (I a)(I b) then T2 (R a)(D b)(I c): state is {a, c}.
        steps = parse_steps("(I a) (I b) (R a) (D b) (I c)")
        g = StructuralState.empty().apply_all(steps)
        assert g.entities == frozenset({"a", "c"})

    def test_trace_lists_intermediate_states(self):
        steps = parse_steps("(I a) (D a)")
        trace = StructuralState.empty().trace(steps)
        assert [set(s.entities) for s in trace] == [set(), {"a"}, set()]

    def test_is_defined_sequence(self):
        good = parse_steps("(I a) (W a) (D a)")
        bad = parse_steps("(I a) (D a) (W a)")
        assert is_defined_sequence(good, StructuralState.empty())
        assert not is_defined_sequence(bad, StructuralState.empty())

    def test_first_undefined_step_locates_failure(self):
        bad = parse_steps("(I a) (D a) (W a)")
        found = first_undefined_step(bad, StructuralState.empty())
        assert found is not None
        pos, step, state = found
        assert pos == 2 and step == Step(Operation.WRITE, "a")
        assert "a" not in state


class TestValueState:
    def test_set_get_remove(self):
        v = ValueState().set("a", 1).set("b", 2)
        assert v.get("a") == 1 and v.get("b") == 2
        assert v.remove("a").get("a") is None

    def test_immutability(self):
        v = ValueState().set("a", 1)
        v2 = v.set("a", 2)
        assert v.get("a") == 1 and v2.get("a") == 2

    def test_from_mapping_roundtrip(self):
        v = ValueState.from_mapping({"x": 10})
        assert v.as_dict() == {"x": 10}


class TestDatabaseState:
    def test_insert_write_read_delete_cycle(self):
        db = DatabaseState()
        db.apply(Step(Operation.INSERT, "a"))
        db.apply(Step(Operation.WRITE, "a"), value=42)
        assert db.apply(Step(Operation.READ, "a")) == 42
        db.apply(Step(Operation.DELETE, "a"))
        assert "a" not in db.structure

    def test_write_default_versions_are_distinct(self):
        db = DatabaseState()
        db.apply(Step(Operation.INSERT, "a"))
        db.apply(Step(Operation.WRITE, "a"))
        v1 = db.apply(Step(Operation.READ, "a"))
        db.apply(Step(Operation.WRITE, "a"))
        v2 = db.apply(Step(Operation.READ, "a"))
        assert v1 != v2

    def test_improper_apply_raises(self):
        with pytest.raises(ImproperScheduleError):
            DatabaseState().apply(Step(Operation.READ, "missing"))
