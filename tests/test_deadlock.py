"""Direct unit coverage of the deadlock-resolution layer
(:mod:`repro.sim.deadlock`): the deterministic victim tie-break and
multi-cycle victim selection.

The victim ordering (documented in the module) is the lexicographic
minimum of ``(has_structural_effects, step_count, name)`` over the *found
cycle's* members — and the found cycle itself is deterministic (sorted
roots, sorted neighbours, first back edge), so when the graph holds
several cycles the victim pool is the cycle the reference DFS meets
first, not the global cheapest session.  Until now this was covered only
indirectly through the engine-equivalence suites.
"""

from repro.core import Operation, Step
from repro.policies.base import ScriptedSession
from repro.sim import WorkloadItem
from repro.sim.deadlock import (
    find_cycle,
    find_cycle_counted,
    pick_victim,
    resolve_deadlock,
    victim_cost,
)
from repro.sim.metrics import TxnRecord
from repro.sim.scheduler import _Live


def entry(name, steps_executed=0, structural=False):
    steps = [Step(Operation.INSERT if structural else Operation.READ, "x")]
    session = ScriptedSession(name, steps)
    if structural:
        session.executed()  # records the structural effect
    e = _Live(
        item=WorkloadItem(name, []),
        session=session,
        record=TxnRecord(name, start_tick=0),
    )
    e.step_count = steps_executed
    return e


class TestVictimCost:
    def test_ordering_is_effects_then_steps_then_name(self):
        live = {
            "A": entry("A", steps_executed=1, structural=True),
            "B": entry("B", steps_executed=9),
            "C": entry("C", steps_executed=9),
        }
        cost = victim_cost(live)
        assert cost("A") == (1, 1, "A")
        assert cost("B") == (0, 9, "B")
        # Pure sessions beat structural ones regardless of step count...
        assert cost("B") < cost("A")
        # ...fewer steps beat more steps, and the name breaks exact ties.
        assert cost("B") < cost("C")

    def test_pick_victim_is_min_over_cycle_only(self):
        live = {
            "A": entry("A", steps_executed=5),
            "B": entry("B", steps_executed=2),
            "D": entry("D", steps_executed=0),  # cheapest, but off-cycle
        }
        assert pick_victim(["A", "B"], live) == "B"


class TestMultiCycleSelection:
    def test_victim_comes_from_first_found_cycle(self):
        # Two disjoint cycles; the reference DFS (sorted roots) meets the
        # A/B cycle first, so the victim pool is {A, B} even though Y has
        # executed fewer steps than either.
        graph = {
            "A": {"B"}, "B": {"A"},
            "X": {"Y"}, "Y": {"X"},
        }
        live = {
            "A": entry("A", steps_executed=5),
            "B": entry("B", steps_executed=4),
            "X": entry("X", steps_executed=9),
            "Y": entry("Y", steps_executed=0),
        }
        assert set(find_cycle(graph)) == {"A", "B"}
        victim, cycle, visits = resolve_deadlock(graph, live)
        assert victim == "B"
        assert set(cycle) == {"A", "B"}
        assert visits >= 2

    def test_overlapping_cycles_resolve_deterministically(self):
        # Two cycles sharing node B: A->B->A and B->C->B.  The sorted DFS
        # from A finds the back edge to A first, so the victim pool is
        # the A/B cycle on every run.
        graph = {"A": {"B"}, "B": {"A", "C"}, "C": {"B"}}
        live = {
            "A": entry("A", steps_executed=3),
            "B": entry("B", steps_executed=3),
            "C": entry("C", steps_executed=0),
        }
        for _ in range(3):  # determinism: same answer every time
            victim, cycle, _ = resolve_deadlock(graph, live)
            assert set(cycle) == {"A", "B"}
            assert victim == "A"  # tie on (0, 3): name breaks it

    def test_structural_member_survives_while_pure_member_exists(self):
        graph = {"A": {"B"}, "B": {"A"}}
        live = {
            "A": entry("A", steps_executed=0, structural=True),
            "B": entry("B", steps_executed=50),
        }
        victim, _, _ = resolve_deadlock(graph, live)
        assert victim == "B"

    def test_acyclic_graph_reports_no_deadlock(self):
        live = {n: entry(n) for n in "AB"}
        assert resolve_deadlock({"A": {"B"}}, live) is None

    def test_counted_visits_cover_whole_walk(self):
        # An acyclic 4-node graph: the counted walk must push every node
        # exactly once (the baseline the incremental detector undercuts).
        graph = {"A": {"B"}, "B": {"C"}, "C": {"D"}, "D": set()}
        cycle, visits = find_cycle_counted(graph)
        assert cycle is None
        assert visits == 4
