"""Tests for the safety deciders and their Theorem-1 agreement."""

import pytest

from repro import (
    StructuralState,
    Transaction,
    decide_safety,
    find_nonserializable_schedule,
    is_safe_bruteforce,
    is_safe_canonical,
    is_serializable,
)
from repro.core.safety import SearchStats
from repro.enumeration import corpus_initial_state, fig2_system, random_locked_system

#: The non-two-phase pair operates on pre-existing entities a and b.
AB = StructuralState.of("a", "b")


class TestBruteForce:
    def test_two_phase_pair_is_safe(self, simple_locked_pair):
        assert is_safe_bruteforce(simple_locked_pair)

    def test_nontwophase_pair_is_unsafe(self, nontwophase_pair):
        schedule = find_nonserializable_schedule(nontwophase_pair, AB)
        assert schedule is not None
        assert schedule.is_legal() and schedule.is_proper(AB)
        assert not is_serializable(schedule)

    def test_nontwophase_pair_safe_from_empty_state(self, nontwophase_pair):
        # Properness can rescue safety: from the empty database no data step
        # of the pair is ever defined, so no anomaly can materialise.
        assert is_safe_bruteforce(nontwophase_pair, StructuralState.empty())

    def test_fig2_is_unsafe(self, fig2_txns):
        schedule = find_nonserializable_schedule(fig2_txns)
        assert schedule is not None
        assert not is_serializable(schedule)
        # All three transactions participate (pairs are never proper).
        assert set(schedule.active_transactions()) == {"T1", "T2", "T3"}

    def test_fig2_pairs_are_vacuously_safe(self, fig2_txns):
        for i in range(3):
            for j in range(i + 1, 3):
                assert is_safe_bruteforce([fig2_txns[i], fig2_txns[j]])

    def test_stats_collected(self, nontwophase_pair):
        stats = SearchStats()
        find_nonserializable_schedule(nontwophase_pair, AB, stats=stats)
        assert stats.nodes_explored > 0

    def test_single_transaction_safe(self):
        t = Transaction.from_text("T", "(LX a) (I a) (UX a)")
        assert is_safe_bruteforce([t])


class TestCanonicalDecider:
    def test_agreement_on_safe_pair(self, simple_locked_pair):
        assert is_safe_canonical(simple_locked_pair)

    def test_agreement_on_unsafe_pair(self, nontwophase_pair):
        assert not is_safe_canonical(nontwophase_pair, AB)

    def test_decide_safety_verdict(self, nontwophase_pair):
        verdict = decide_safety(nontwophase_pair, AB)
        assert not verdict.safe
        assert verdict.agree
        assert verdict.schedule_witness is not None
        assert verdict.canonical_witness is not None
        assert verdict.canonical_witness.is_valid(AB)

    def test_decide_safety_safe_system(self, simple_locked_pair):
        verdict = decide_safety(simple_locked_pair)
        assert verdict.safe and verdict.agree
        assert verdict.schedule_witness is None
        assert verdict.canonical_witness is None


class TestTheorem1Corpus:
    """The empirical Theorem-1 check over a deterministic corpus of random
    systems: the two deciders must agree on every instance."""

    @pytest.mark.parametrize("style", ["2pl", "early", "chaotic", "mixed"])
    def test_decider_agreement(self, style):
        disagreements = []
        unsafe_seen = 0
        for seed in range(12):
            txns = random_locked_system(
                num_txns=2, num_entities=2, steps_per_txn=2, style=style, seed=seed
            )
            verdict = decide_safety(txns, corpus_initial_state(2), budget=300_000)
            if not verdict.agree:
                disagreements.append((style, seed))
            if not verdict.safe:
                unsafe_seen += 1
        assert not disagreements
        if style == "2pl":
            assert unsafe_seen == 0  # condition 1 can never fire

    def test_unsafe_instances_exist_in_corpus(self):
        # The corpus must exercise the unsafe path, otherwise the agreement
        # test is vacuous.
        unsafe = 0
        for seed in range(12):
            txns = random_locked_system(2, 2, 2, style="early", seed=seed)
            if not is_safe_bruteforce(txns, corpus_initial_state(2), budget=300_000):
                unsafe += 1
        assert unsafe >= 1

    def test_shared_lock_systems(self):
        for seed in range(6):
            txns = random_locked_system(
                2, 2, 2, style="chaotic", seed=seed, use_shared=True
            )
            verdict = decide_safety(txns, corpus_initial_state(2), budget=300_000)
            assert verdict.agree
