"""The audited asyncio lock service (``repro.service``): the
boundary-enforcement-integrity invariants — every denied mutation leaves
lock state unchanged and writes an audit entry with the reason; the
holder-only visibility view; per-client backpressure; concurrent-session
stress with a serializable audit order; graceful drain; and the wire
protocol's error handling (including over real TCP)."""

import asyncio
import json

import pytest

from repro.kernel import Outcome
from repro.service import LockService, ProtocolError, decode, encode, parse_mode
from repro.service.protocol import MUTATING_OPS


def run(coro):
    return asyncio.run(coro)


async def make_service(**kwargs):
    kwargs.setdefault("lock_shards", 2)
    return LockService(**kwargs)


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "acquire", "txn": "t1", "entity": "a", "id": 7}
        line = encode(message)
        assert line.endswith(b"\n")
        assert decode(line) == message

    def test_decode_rejects_non_object_and_junk(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode(b"not json\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode(b"[1,2]\n")

    def test_parse_mode(self):
        from repro.kernel import LockMode

        assert parse_mode(None) is LockMode.EXCLUSIVE
        assert parse_mode("S") is LockMode.SHARED
        assert parse_mode("exclusive") is LockMode.EXCLUSIVE
        with pytest.raises(ProtocolError, match="unknown lock mode"):
            parse_mode("Z")

    def test_field_error_reply_keeps_the_request_id(self):
        """A request that decodes but fails validation (missing ``txn``,
        unknown op) must be answered under its own id — an ``id: null``
        error would strand the client waiting on its rid forever."""

        async def scenario():
            svc = await make_service()
            client = await svc.connect("alice")
            reply = await client.request("locks")  # no txn field
            assert reply["outcome"] == Outcome.ERROR.value
            assert reply["op"] == "protocol"
            assert "txn" in reply["reason"]
            reply = await client.request("mystery", txn="t1")
            assert reply["outcome"] == Outcome.ERROR.value
            assert "unknown op" in reply["reason"]
            # The connection survives the malformed requests.
            assert (await client.request("begin", txn="t1"))["outcome"] == \
                Outcome.GRANTED.value
            await svc.drain()

        run(scenario())


class TestAuthorizationBoundary:
    """A denied mutating op: no lock-state change + one audit entry with
    the decision reason — checked for every mutating op."""

    def test_every_mutating_op_denied_without_state_change(self):
        async def scenario():
            svc = await make_service()
            owner = await svc.connect("owner")
            intruder = await svc.connect("intruder")
            assert (await owner.request("begin", txn="t1"))["outcome"] == "granted"
            granted = await owner.request(
                "acquire", txn="t1", entity="a", mode="X"
            )
            assert granted["outcome"] == "granted"
            for op in sorted(MUTATING_OPS - {"begin"}):
                fingerprint = svc.kernel.state_fingerprint()
                audit_len = len(svc.audit)
                fields = {"txn": "t1"}
                if op in ("acquire", "release"):
                    fields["entity"] = "a"
                reply = await intruder.request(op, **fields)
                assert reply["outcome"] == "denied", (op, reply)
                assert "does not own" in reply["reason"]
                assert svc.kernel.state_fingerprint() == fingerprint, (
                    f"denied {op} changed lock state"
                )
                entry = svc.audit.entries()[-1]
                assert len(svc.audit) == audit_len + 1
                assert entry.op == op
                assert entry.actor == "intruder"
                assert entry.decision == "denied"
                assert entry.reason and "does not own" in entry.reason
            # The owner's holdings survived every denied attempt.
            locks = await owner.request("locks", txn="t1")
            assert locks["locks"] == [["a", "X"]]
            await svc.drain()

        run(scenario())

    def test_finished_txn_name_cannot_be_hijacked(self):
        async def scenario():
            svc = await make_service()
            owner = await svc.connect("owner")
            intruder = await svc.connect("intruder")
            await owner.request("begin", txn="t1")
            await owner.request("commit", txn="t1")
            reply = await intruder.request("begin", txn="t1")
            assert reply["outcome"] == "denied"
            assert "does not own" in reply["reason"]
            await svc.drain()

        run(scenario())

    def test_holder_only_visibility(self):
        """A client sees its own holdings through ``locks`` and is denied
        (audited) on anyone else's — the lock_owner_only view."""

        async def scenario():
            svc = await make_service()
            alice = await svc.connect("alice")
            bob = await svc.connect("bob")
            await alice.request("begin", txn="a1")
            await alice.request("acquire", txn="a1", entity="x", mode="X")
            await bob.request("begin", txn="b1")
            await bob.request("acquire", txn="b1", entity="y", mode="S")
            mine = await alice.request("locks", txn="a1")
            assert mine["locks"] == [["x", "X"]]
            other = await alice.request("locks", txn="b1")
            assert other["outcome"] == "denied"
            assert "locks" not in other
            denial = svc.audit.entries()[-1]
            assert (denial.op, denial.decision) == ("locks", "denied")
            await svc.drain()

        run(scenario())


class TestBlockingAndWake:
    def test_blocked_acquire_wakes_with_grant(self):
        async def scenario():
            svc = await make_service()
            alice = await svc.connect("alice")
            bob = await svc.connect("bob")
            await alice.request("begin", txn="a1")
            await bob.request("begin", txn="b1")
            await alice.request("acquire", txn="a1", entity="x")
            blocked = await bob.request("acquire", txn="b1", entity="x")
            assert blocked["outcome"] == "blocked"
            # Visibility: a count of conflicts, never holder names.
            assert blocked["conflicts"] == 1
            assert "blockers" not in blocked
            await alice.request("commit", txn="a1")
            wake = await bob.wait_wake(blocked["id"])
            assert wake["outcome"] == "granted"
            locks = await bob.request("locks", txn="b1")
            assert locks["locks"] == [["x", "X"]]
            await svc.drain()

        run(scenario())

    def test_deadlock_victim_wakes_with_victim_outcome(self):
        async def scenario():
            svc = await make_service()
            alice = await svc.connect("alice")
            bob = await svc.connect("bob")
            await alice.request("begin", txn="a1")
            await bob.request("begin", txn="b1")
            await alice.request("acquire", txn="a1", entity="x")
            await bob.request("acquire", txn="b1", entity="y")
            first = await alice.request("acquire", txn="a1", entity="y")
            assert first["outcome"] == "blocked"
            second = await bob.request("acquire", txn="b1", entity="x")
            # The cycle resolved synchronously inside the kernel call:
            # a1 (tie-broken by name) was sacrificed, b1 was granted.
            wake_a = await alice.wait_wake(first["id"])
            assert wake_a["outcome"] == "victim"
            wake_b = await bob.wait_wake(second["id"])
            assert wake_b["outcome"] == "granted"
            assert svc.kernel.victims == ["a1"]
            await svc.drain()

        run(scenario())

    def test_backpressure_stops_reading_at_the_inflight_cap(self):
        async def scenario():
            svc = await make_service(max_inflight=2)
            holder = await svc.connect("holder")
            flooder = await svc.connect("flooder")
            await holder.request("begin", txn="h")
            for entity in ("e0", "e1", "e2"):
                await holder.request("acquire", txn="h", entity=entity)
            for i, entity in enumerate(("e0", "e1", "e2")):
                await flooder.request("begin", txn=f"f{i}")
            # Two parked acquires fill the cap...
            parked_ids = []
            for i, entity in enumerate(("e0", "e1")):
                reply = await flooder.request(
                    "acquire", txn=f"f{i}", entity=entity
                )
                assert reply["outcome"] == "blocked"
                parked_ids.append(reply["id"])
            # ...so the third request is written but NOT answered: the
            # service has stopped reading this connection.
            rid = flooder.send_raw("acquire", txn="f2", entity="e2")
            await asyncio.sleep(0.05)
            assert len(svc.kernel.blocked_txns()) == 2  # f2 never reached the kernel
            # Releasing one entity resolves a parked request, freeing a
            # slot; the stalled third request now completes.
            await holder.request("release", txn="h", entity="e0")
            wake = await flooder.wait_wake(parked_ids[0])
            assert wake["outcome"] == "granted"
            third = await flooder.response_for(rid)
            assert third["outcome"] == "blocked"
            await svc.drain()

        run(scenario())


class TestStress:
    def test_concurrent_sessions_serializable_audit(self):
        """≥8 concurrent clients mixing authorized and unauthorized ops:
        denied ops leave no trace in lock state, every mutation is
        audited, and the audit log is one gap-free serializable order."""

        async def client_loop(svc, i, clients):
            me = await svc.connect(f"actor{i}")
            for r in range(6):
                txn = f"c{i}-r{r}"
                assert (await me.request("begin", txn=txn))["outcome"] == "granted"
                await me.request("acquire", txn=txn, entity=f"p{i}", mode="X")
                got = await me.request(
                    "acquire", txn=txn,
                    entity=f"hot{(i + r) % 3}", mode="S",
                )
                if got["outcome"] == "blocked":
                    got = await me.wait_wake(got["id"])
                # Unauthorized probe at a peer's transaction.
                probe = await me.request(
                    "release", txn=f"c{(i + 1) % clients}-r0", entity="p0"
                )
                assert probe["outcome"] in ("denied", "error")
                assert (await me.request("commit", txn=txn))["outcome"] == "granted"
            await me.close()

        async def scenario():
            clients = 8
            svc = await make_service(lock_shards=4)
            await asyncio.gather(
                *(client_loop(svc, i, clients) for i in range(clients))
            )
            drained = await svc.drain()
            assert drained == ()  # every transaction committed
            entries = svc.audit.entries()
            # Serializable order: sequence numbers are the positions —
            # gap-free, strictly increasing, assigned under one kernel.
            assert [e.seq for e in entries] == list(range(len(entries)))
            denied = [e for e in entries if e.decision == "denied"]
            assert denied, "stress produced no unauthorized denials"
            assert all(e.reason for e in denied)
            # Every mutating grant traces to an audit entry: commits per
            # transaction, begins per transaction.
            begins = [e for e in entries
                      if e.op == "begin" and e.decision == "granted"]
            commits = [e for e in entries
                       if e.op == "commit" and e.decision == "granted"]
            assert len(begins) == len(commits) == clients * 6
            # No lock state survives the run.
            assert svc.kernel.state_fingerprint()[0] == ()

        run(scenario())


class TestDrain:
    def test_drain_unblocks_parked_clients_and_closes(self):
        async def scenario():
            svc = await make_service()
            alice = await svc.connect("alice")
            bob = await svc.connect("bob")
            await alice.request("begin", txn="a1")
            await bob.request("begin", txn="b1")
            await alice.request("acquire", txn="a1", entity="x")
            blocked = await bob.request("acquire", txn="b1", entity="x")
            assert blocked["outcome"] == "blocked"
            drained = await svc.drain()
            assert drained == ("a1", "b1")
            # The parked client got a terminal wake, not a hang.
            wake = await bob.wait_wake(blocked["id"])
            assert wake["outcome"] == "error"
            assert "draining" in wake["reason"]
            # Then the drain event and EOF.
            assert (await bob.next_event())["event"] == "drain"
            with pytest.raises(ConnectionError):
                await bob.next_event()
            # Drain is idempotent and the service stays refusing.
            assert await svc.drain() == ()

        run(scenario())

    def test_requests_after_drain_are_refused_and_audited(self):
        async def scenario():
            svc = await make_service()
            client = await svc.connect("alice")
            svc._draining = True
            reply = await client.request("begin", txn="t1")
            assert reply["outcome"] == "error"
            assert reply["reason"] == "service draining"
            entry = svc.audit.entries()[-1]
            assert (entry.op, entry.decision) == ("begin", "error")

        run(scenario())


class TestTcpTransport:
    def test_full_round_trip_over_tcp(self):
        async def scenario():
            svc = await make_service()
            host, port = await svc.serve_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode({"op": "hello", "actor": "alice"}))
            await writer.drain()
            hello = json.loads(await reader.readline())
            assert hello["outcome"] == "granted"
            assert hello["protocol"] == 1
            writer.write(encode({"op": "begin", "txn": "t1", "id": 0}))
            writer.write(encode(
                {"op": "acquire", "txn": "t1", "entity": "a", "id": 1}
            ))
            await writer.drain()
            assert json.loads(await reader.readline())["outcome"] == "granted"
            assert json.loads(await reader.readline())["outcome"] == "granted"
            assert svc.kernel.held("t1")
            writer.close()
            await writer.wait_closed()
            await svc.drain()

        run(scenario())

    def test_malformed_first_line_is_rejected(self):
        async def scenario():
            svc = await make_service()
            host, port = await svc.serve_tcp("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"garbage\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["outcome"] == "error"
            assert (await reader.readline()) == b""  # connection closed
            writer.close()
            await writer.wait_closed()
            await svc.drain()

        run(scenario())
