"""Tests for the DDAG policy (rules L1-L5, Fig. 3, Theorem 2's claim)."""

import pytest

from repro.core import is_serializable
from repro.exceptions import PolicyViolation
from repro.graphs import RootedDag, chain, random_rooted_dag
from repro.policies import (
    Access,
    Admission,
    BrokenDdagPolicy,
    DdagPolicy,
    InsertEdge,
    InsertNode,
    Unlock,
    check_ddag_schedule,
)
from repro.sim import (
    Simulator,
    WorkloadItem,
    dag_structural_state,
    dynamic_traversal_workload,
    fig3_dag,
    fig3_workload,
    traversal_workload,
)


class TestSessionRules:
    def test_first_lock_anywhere_L4(self):
        dag = chain(4)
        ctx = DdagPolicy().create_context(dag=dag)
        session = ctx.begin("T", [Access(3)])
        step = session.peek()
        assert step.is_lock and step.entity == 3
        assert session.admission().verdict is Admission.PROCEED

    def test_L5_requires_all_predecessors(self):
        dag = RootedDag(1, [(1, 2), (1, 3), (2, 4), (3, 4)])  # diamond
        ctx = DdagPolicy().create_context(dag=dag)
        # Accessing 2 then 4 skips predecessor 3 of node 4: L5 must abort.
        session = ctx.begin("T", [Access(2), Access(4)])
        self._drain_until_lock_of(session, 4)
        assert session.admission().verdict is Admission.ABORT

    def test_L5_satisfied_with_all_predecessors(self):
        dag = RootedDag(1, [(1, 2), (1, 3), (2, 4), (3, 4)])
        ctx = DdagPolicy().create_context(dag=dag)
        session = ctx.begin("T", [Access(1), Access(2), Access(3), Access(4)])
        self._drain_until_lock_of(session, 4)
        assert session.admission().verdict is Admission.PROCEED

    def test_insert_lock_anytime_L2(self):
        dag = chain(2)
        ctx = DdagPolicy().create_context(dag=dag)
        session = ctx.begin("T", [Access(2), InsertNode(99, parents=(2,))])
        self._drain_until_lock_of(session, 99)
        assert session.admission().verdict is Admission.PROCEED

    def test_reinsertion_of_deleted_node_rejected(self):
        dag = chain(2)
        ctx = DdagPolicy().create_context(dag=dag)
        ctx.tombstones.add(99)
        session = ctx.begin("T", [Access(2), InsertNode(99, parents=(2,))])
        with pytest.raises(PolicyViolation, match="reinsert"):
            self._drain_until_lock_of(session, 99)

    def test_edge_insert_requires_held_endpoints(self):
        dag = chain(3)
        ctx = DdagPolicy().create_context(dag=dag)
        session = ctx.begin("T", [InsertEdge(1, 3)])
        with pytest.raises(PolicyViolation, match="without holding"):
            session.peek()

    @staticmethod
    def _drain_until_lock_of(session, node):
        """Execute session steps until the pending step is (LX node)."""
        while True:
            step = session.peek()
            assert step is not None, f"never reached lock of {node}"
            if step.is_lock and step.entity == node:
                return
            session.executed()


class TestFig3:
    def test_fig3_without_edge_insert_commits_both(self):
        items, init = fig3_workload()
        result = Simulator(
            DdagPolicy(auto_release=False), seed=0, context_kwargs={"dag": fig3_dag()}
        ).run(items, init)
        assert set(result.committed) == {"T1", "T2"}
        assert is_serializable(result.schedule)
        assert check_ddag_schedule(result.schedule, fig3_dag()) == []

    def test_fig3_edge_insert_forces_t2_abort(self):
        # T1 additionally inserts edge (2,4) while holding 2 and 4; if T2's
        # lock of 4 happens afterwards, rule L5 now also requires node 2 and
        # T2 must abort and restart from the dominator.
        dag = fig3_dag()
        t1 = [Access(2), Access(3), Access(4), Unlock(3), InsertEdge(2, 4),
              Unlock(4), Unlock(2)]
        t2 = [Access(3), Access(4)]
        from repro.sim.workloads import ddag_restart_from_cone

        items = [
            WorkloadItem("T1", t1),
            WorkloadItem("T2", t2, restart=ddag_restart_from_cone([3, 4])),
        ]
        aborted_runs = 0
        for seed in range(25):
            result = Simulator(
                DdagPolicy(auto_release=False),
                seed=seed,
                context_kwargs={"dag": fig3_dag()},
            ).run(items, dag_structural_state(dag))
            assert is_serializable(result.schedule)
            if result.metrics.aborted:
                aborted_runs += 1
        assert aborted_runs > 0  # the Fig. 3 race fires in some interleavings


class TestTheorem2Empirically:
    @pytest.mark.parametrize("seed", range(8))
    def test_static_traversals_serializable(self, seed):
        dag = random_rooted_dag(8, 0.3, seed=seed)
        items, init = traversal_workload(dag, 4, 4, seed=seed)
        result = Simulator(
            DdagPolicy(), seed=seed, context_kwargs={"dag": dag.snapshot()}
        ).run(items, init)
        assert is_serializable(result.schedule)
        assert check_ddag_schedule(result.schedule, dag) == []

    @pytest.mark.parametrize("seed", range(8))
    def test_dynamic_traversals_serializable(self, seed):
        dag = random_rooted_dag(8, 0.3, seed=seed)
        items, init = dynamic_traversal_workload(dag, 4, 3, 0.6, seed=seed)
        result = Simulator(
            DdagPolicy(), seed=seed, context_kwargs={"dag": dag.snapshot()}
        ).run(items, init)
        assert is_serializable(result.schedule)
        if not result.aborted:
            assert check_ddag_schedule(result.schedule, dag) == []


class TestNegativeControl:
    def test_broken_ddag_produces_nonserializable_run(self):
        # With L5 disabled, traversals in opposite directions can cycle.
        bad = 0
        for seed in range(60):
            dag = chain(3)
            items = [
                WorkloadItem("T1", [Access(2), Unlock(2), Access(3)]),
                WorkloadItem("T2", [Access(3), Unlock(3), Access(2)]),
            ]
            result = Simulator(
                BrokenDdagPolicy(auto_release=False),
                seed=seed,
                context_kwargs={"dag": dag},
            ).run(items, dag_structural_state(dag))
            if not is_serializable(result.schedule):
                bad += 1
        assert bad > 0

    def test_real_ddag_rejects_the_same_workload(self):
        # The same opposite-direction traversal is impossible under L5: T2's
        # jump from 3 back up to 2 violates the predecessor rule.
        dag = chain(3)
        ctx = DdagPolicy(auto_release=False).create_context(dag=dag)
        session = ctx.begin("T2", [Access(3), Unlock(3), Access(2)])
        while True:
            step = session.peek()
            if step.is_lock and step.entity == 2:
                break
            session.executed()
        assert session.admission().verdict is Admission.ABORT
