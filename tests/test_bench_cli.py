"""The ``python -m repro.bench`` CLI surface: preset/factory discovery via
``--list``, the preset definitions themselves (shapes only — the full
grid runs are exercised by benchmarks/ and the CI smoke jobs), and the
``--compare`` artifact-diff mode CI uses as its regression gate."""

import json

import pytest

from repro import bench
from repro.sim import grid_factory_names


class TestListFlag:
    def test_list_prints_presets_and_factories(self, capsys):
        assert bench.main(["--list"]) == 0
        out = capsys.readouterr().out
        for preset in bench.PRESETS:
            assert preset in out
        for factory in grid_factory_names():
            assert factory in out

    def test_list_needs_no_preset(self, capsys):
        # --list alone must not trip the "a preset is required" error.
        assert bench.main(["--list"]) == 0

    def test_missing_preset_errors(self, capsys):
        with pytest.raises(SystemExit):
            bench.main([])


class TestPresets:
    def test_registry_covers_the_documented_grids(self):
        assert set(bench.PRESETS) == {
            "stress", "deadlock", "traversal", "mega_stress",
            "mega_stress_50k",
        }

    def test_special_benches_registered_and_listed(self, capsys):
        assert set(bench.SPECIAL_BENCHES) == {"parallel_shards", "service"}
        assert bench.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "parallel_shards" in out
        assert "service" in out

    def test_mega_stress_shape(self):
        spec = bench.PRESETS["mega_stress"](1.0)
        (workload,) = spec.workloads
        assert workload.kwargs["num_txns"] >= 5000
        assert spec.lock_shards > 1
        assert not spec.check_serializability
        scaled = bench.PRESETS["mega_stress"](0.02)
        assert scaled.workloads[0].kwargs["num_txns"] < 5000

    def test_mega_stress_50k_shape(self):
        spec = bench.PRESETS["mega_stress_50k"](1.0)
        (workload,) = spec.workloads
        assert workload.kwargs["num_txns"] == 50_000
        assert workload.kwargs["arrival_rate"] < 1.0  # staggered arrivals
        assert spec.lock_shards > 1
        assert not spec.check_serializability

    def test_scale_shrinks_with_floor(self):
        spec = bench.PRESETS["stress"](0.0001)
        assert spec.workloads[0].kwargs["num_txns"] == 50

    def test_shards_flag_overrides_spec(self):
        args = bench.build_parser().parse_args(
            ["mega_stress", "--shards", "4"]
        )
        assert args.shards == 4

    def test_parser_accepts_engine_and_workers(self):
        args = bench.build_parser().parse_args(
            ["deadlock", "--workers", "2", "--engine", "naive",
             "--scale", "0.1"]
        )
        assert (args.workers, args.engine, args.scale) == (2, "naive", 0.1)


class TestArgValidation:
    """Explicit ``--workers``/``--seeds`` below 1 are parse-time errors
    (the same ``_positive_int`` treatment ``--shards`` already gets);
    omitting ``--workers`` still selects the in-process reference path."""

    @pytest.mark.parametrize("flag", ["--workers", "--seeds", "--shards"])
    @pytest.mark.parametrize("value", ["0", "-1", "-8"])
    def test_non_positive_values_rejected_at_parse_time(
        self, capsys, flag, value
    ):
        with pytest.raises(SystemExit) as exc:
            bench.build_parser().parse_args(["stress", flag, value])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--workers", "--seeds"])
    def test_non_integer_values_rejected(self, capsys, flag):
        with pytest.raises(SystemExit):
            bench.build_parser().parse_args(["stress", flag, "two"])

    def test_defaults_survive_validation(self):
        args = bench.build_parser().parse_args(["stress"])
        assert args.workers == 0  # in-process reference path
        assert args.seeds is None  # preset's own seed tuple

    def test_positive_values_accepted(self):
        args = bench.build_parser().parse_args(
            ["stress", "--workers", "3", "--seeds", "5"]
        )
        assert (args.workers, args.seeds) == (3, 5)

    @pytest.mark.parametrize("value", ["0", "-0.5", "nan"])
    def test_non_positive_scale_rejected_at_parse_time(self, capsys, value):
        with pytest.raises(SystemExit) as exc:
            bench.build_parser().parse_args(["stress", "--scale", value])
        assert exc.value.code == 2
        assert "must be > 0" in capsys.readouterr().err

    def test_fractional_scale_accepted(self):
        args = bench.build_parser().parse_args(["stress", "--scale", "0.05"])
        assert args.scale == 0.05

    def test_shard_workers_zero_is_explicit_serial(self):
        # 0 is meaningful (force the serial executor / filter the sweep
        # to serial rows), so --shard-workers gets the non-negative
        # validator, not the >= 1 one.
        args = bench.build_parser().parse_args(
            ["stress", "--shard-workers", "0"]
        )
        assert args.shard_workers == 0

    def test_negative_shard_workers_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            bench.build_parser().parse_args(
                ["stress", "--shard-workers", "-1"]
            )
        assert exc.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_shard_workers_default_is_unset(self):
        # None (not 0) so parallel_shards can tell "sweep everything"
        # apart from "serial only".
        args = bench.build_parser().parse_args(["stress"])
        assert args.shard_workers is None

    def test_executor_flag_parses_and_defaults_unset(self):
        args = bench.build_parser().parse_args(["stress"])
        assert args.executor is None
        args = bench.build_parser().parse_args(
            ["stress", "--executor", "process"]
        )
        assert args.executor == "process"
        with pytest.raises(SystemExit):
            bench.build_parser().parse_args(["stress", "--executor", "gpu"])


def _artifact(tmp_path, name, rows, *, bench_name="parallel_shards",
              wall_s=10.0, schema=1):
    doc = {
        "bench": bench_name,
        "schema": schema,
        "scale": 1.0,
        "workers": 0,
        "rows": rows,
        "wall_s": wall_s,
    }
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def _row(shards=4, workers=2, executor="thread", wall_s=1.0, **extra):
    row = {
        "shards": shards,
        "shard_workers": workers,
        "executor": executor,
        "wall_s": wall_s,
        "committed": 100,
        "work": {"classify_checks": 500},
    }
    row.update(extra)
    return row


class TestCompare:
    """``--compare OLD.json NEW.json``: the artifact-diff regression gate
    (replaces CI's ad-hoc wall-clock guards)."""

    def test_identical_artifacts_report_no_differences(self, tmp_path, capsys):
        old = _artifact(tmp_path, "old.json", [_row()])
        new = _artifact(tmp_path, "new.json", [_row()])
        assert bench.main(["--compare", old, new]) == 0
        assert "no numeric differences" in capsys.readouterr().out

    def test_deltas_reported_without_threshold_exit_zero(
        self, tmp_path, capsys
    ):
        old = _artifact(tmp_path, "old.json", [_row(wall_s=1.0)])
        new = _artifact(
            tmp_path, "new.json",
            [_row(wall_s=2.0, work={"classify_checks": 600})],
        )
        assert bench.main(["--compare", old, new]) == 0
        out = capsys.readouterr().out
        # Flat metrics and nested work counters both diffed, with %.
        assert "wall_s" in out
        assert "work.classify_checks" in out
        assert "+100.0%" in out

    def test_wall_regression_beyond_threshold_fails(self, tmp_path, capsys):
        old = _artifact(tmp_path, "old.json", [_row(wall_s=1.0)])
        new = _artifact(tmp_path, "new.json", [_row(wall_s=2.0)])
        assert bench.main(
            ["--compare", old, new, "--max-wall-regression", "0.5"]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_wall_regression_within_threshold_passes(self, tmp_path):
        old = _artifact(tmp_path, "old.json", [_row(wall_s=1.0)])
        new = _artifact(tmp_path, "new.json", [_row(wall_s=1.3)])
        assert bench.main(
            ["--compare", old, new, "--max-wall-regression", "0.5"]
        ) == 0

    def test_artifact_level_wall_gated_too(self, tmp_path, capsys):
        # Grid presets record only the harness wall at the top level; the
        # gate must catch a regression there even with identical rows.
        old = _artifact(tmp_path, "old.json", [_row()], wall_s=10.0)
        new = _artifact(tmp_path, "new.json", [_row()], wall_s=30.0)
        assert bench.main(
            ["--compare", old, new, "--max-wall-regression", "0.5"]
        ) == 1
        assert "artifact wall_s" in capsys.readouterr().out

    def test_bench_mismatch_is_a_usage_failure(self, tmp_path, capsys):
        old = _artifact(tmp_path, "old.json", [_row()])
        new = _artifact(
            tmp_path, "new.json", [_row()], bench_name="mega_stress"
        )
        assert bench.main(["--compare", old, new]) == 2
        assert "mismatch" in capsys.readouterr().out

    def test_row_identity_mismatch_is_a_usage_failure(self, tmp_path, capsys):
        old = _artifact(tmp_path, "old.json", [_row(executor="thread")])
        new = _artifact(tmp_path, "new.json", [_row(executor="process")])
        assert bench.main(["--compare", old, new]) == 2
        assert "identity" in capsys.readouterr().out

    def test_row_count_mismatch_is_a_usage_failure(self, tmp_path, capsys):
        old = _artifact(tmp_path, "old.json", [_row(), _row(shards=8)])
        new = _artifact(tmp_path, "new.json", [_row()])
        assert bench.main(["--compare", old, new]) == 2
        assert "row count" in capsys.readouterr().out

    def test_one_sided_keys_are_skipped_not_fatal(self, tmp_path, capsys):
        old = _artifact(tmp_path, "old.json", [_row(spill_fraction=0.1)])
        new = _artifact(tmp_path, "new.json", [_row()])
        assert bench.main(["--compare", old, new]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_compare_rejects_a_preset(self, tmp_path):
        old = _artifact(tmp_path, "old.json", [_row()])
        new = _artifact(tmp_path, "new.json", [_row()])
        with pytest.raises(SystemExit):
            bench.main(["stress", "--compare", old, new])

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(SystemExit):
            bench.build_parser().parse_args(
                ["--compare", "a.json", "b.json",
                 "--max-wall-regression", "0"]
            )
