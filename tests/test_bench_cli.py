"""The ``python -m repro.bench`` CLI surface: preset/factory discovery via
``--list`` and the preset definitions themselves (shapes only — the full
grid runs are exercised by benchmarks/ and the CI smoke jobs)."""

import pytest

from repro import bench
from repro.sim import grid_factory_names


class TestListFlag:
    def test_list_prints_presets_and_factories(self, capsys):
        assert bench.main(["--list"]) == 0
        out = capsys.readouterr().out
        for preset in bench.PRESETS:
            assert preset in out
        for factory in grid_factory_names():
            assert factory in out

    def test_list_needs_no_preset(self, capsys):
        # --list alone must not trip the "a preset is required" error.
        assert bench.main(["--list"]) == 0

    def test_missing_preset_errors(self, capsys):
        with pytest.raises(SystemExit):
            bench.main([])


class TestPresets:
    def test_registry_covers_the_documented_grids(self):
        assert set(bench.PRESETS) == {
            "stress", "deadlock", "traversal", "mega_stress",
        }

    def test_special_benches_registered_and_listed(self, capsys):
        assert set(bench.SPECIAL_BENCHES) == {"parallel_shards", "service"}
        assert bench.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "parallel_shards" in out
        assert "service" in out

    def test_mega_stress_shape(self):
        spec = bench.PRESETS["mega_stress"](1.0)
        (workload,) = spec.workloads
        assert workload.kwargs["num_txns"] >= 5000
        assert spec.lock_shards > 1
        assert not spec.check_serializability
        scaled = bench.PRESETS["mega_stress"](0.02)
        assert scaled.workloads[0].kwargs["num_txns"] < 5000

    def test_scale_shrinks_with_floor(self):
        spec = bench.PRESETS["stress"](0.0001)
        assert spec.workloads[0].kwargs["num_txns"] == 50

    def test_shards_flag_overrides_spec(self):
        args = bench.build_parser().parse_args(
            ["mega_stress", "--shards", "4"]
        )
        assert args.shards == 4

    def test_parser_accepts_engine_and_workers(self):
        args = bench.build_parser().parse_args(
            ["deadlock", "--workers", "2", "--engine", "naive",
             "--scale", "0.1"]
        )
        assert (args.workers, args.engine, args.scale) == (2, "naive", 0.1)


class TestArgValidation:
    """Explicit ``--workers``/``--seeds`` below 1 are parse-time errors
    (the same ``_positive_int`` treatment ``--shards`` already gets);
    omitting ``--workers`` still selects the in-process reference path."""

    @pytest.mark.parametrize("flag", ["--workers", "--seeds", "--shards"])
    @pytest.mark.parametrize("value", ["0", "-1", "-8"])
    def test_non_positive_values_rejected_at_parse_time(
        self, capsys, flag, value
    ):
        with pytest.raises(SystemExit) as exc:
            bench.build_parser().parse_args(["stress", flag, value])
        assert exc.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--workers", "--seeds"])
    def test_non_integer_values_rejected(self, capsys, flag):
        with pytest.raises(SystemExit):
            bench.build_parser().parse_args(["stress", flag, "two"])

    def test_defaults_survive_validation(self):
        args = bench.build_parser().parse_args(["stress"])
        assert args.workers == 0  # in-process reference path
        assert args.seeds is None  # preset's own seed tuple

    def test_positive_values_accepted(self):
        args = bench.build_parser().parse_args(
            ["stress", "--workers", "3", "--seeds", "5"]
        )
        assert (args.workers, args.seeds) == (3, 5)

    @pytest.mark.parametrize("value", ["0", "-0.5", "nan"])
    def test_non_positive_scale_rejected_at_parse_time(self, capsys, value):
        with pytest.raises(SystemExit) as exc:
            bench.build_parser().parse_args(["stress", "--scale", value])
        assert exc.value.code == 2
        assert "must be > 0" in capsys.readouterr().err

    def test_fractional_scale_accepted(self):
        args = bench.build_parser().parse_args(["stress", "--scale", "0.05"])
        assert args.scale == 0.05

    def test_shard_workers_zero_is_explicit_serial(self):
        # 0 is meaningful (force the serial executor / filter the sweep
        # to serial rows), so --shard-workers gets the non-negative
        # validator, not the >= 1 one.
        args = bench.build_parser().parse_args(
            ["stress", "--shard-workers", "0"]
        )
        assert args.shard_workers == 0

    def test_negative_shard_workers_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            bench.build_parser().parse_args(
                ["stress", "--shard-workers", "-1"]
            )
        assert exc.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_shard_workers_default_is_unset(self):
        # None (not 0) so parallel_shards can tell "sweep everything"
        # apart from "serial only".
        args = bench.build_parser().parse_args(["stress"])
        assert args.shard_workers is None
