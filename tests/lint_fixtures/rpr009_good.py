# repro-lint-module: repro.sim.fixture_rpr009_good
"""RPR009-negative fixture: the classify phase mutates scheduler state
only through the sanctioned calls — the executor hand-off and the
post-barrier abort path."""


class MiniRun:
    def __init__(self, cache, table, executor, classifier, live):
        self.cache = cache
        self.table = table
        self.executor = executor
        self.classifier = classifier
        self.live = live

    def abort(self, entry, reason):
        raise NotImplementedError

    def _phase_classify(self):
        aborts = []
        slices, global_slice = self.cache.take_check_slices(
            self.table.shard_of, 4
        )
        self.executor.run_classify(
            self.classifier, self.live, slices, global_slice, aborts
        )
        for entry, reason in aborts:
            self.abort(entry, reason)
        return bool(aborts)
