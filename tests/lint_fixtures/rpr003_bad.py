# repro-lint-module: repro.policies.fixture_rpr003_bad
"""RPR003-positive fixture: a policy reaching into the event engine."""

from repro.sim.scheduler import Simulator


def peek(sim):
    return isinstance(sim, Simulator)
