# repro-lint-module: repro.sim.fixture_rpr006_bad
"""RPR006-positive fixture: a shard-phase callable mutating global
scheduler state instead of its per-shard buffer."""


def shard_phase(fn):
    fn.__shard_phase__ = True
    return fn


@shard_phase
def classify_slice(run, names, buf):
    for name in names:
        run.cache.dirty.add(name)  # global cache mutation from a worker
        buf.decisions.append(name)
    return buf
