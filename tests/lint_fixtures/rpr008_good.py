# repro-lint-module: repro.sim.fixture_rpr008_good
"""RPR008-negative fixture: worker writes are shard-partitioned — each
entry point writes only its own shard's partition via ``_part()``."""


def tally_reads(shared, shard, names):
    shared._part(shard).tally = len(names)


def tally_writes(shared, shard, names):
    shared._part(shard).written = 2 * len(names)


class FanoutExecutor:
    def __init__(self, pool):
        self._pool = pool

    def run_all(self, shared, names):
        futures = [
            self._pool.submit(tally_reads, shared, 0, names),
            self._pool.submit(tally_writes, shared, 1, names),
        ]
        return [f.result() for f in futures]
