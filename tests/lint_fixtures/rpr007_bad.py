# repro-lint-module: repro.sim.fixture_rpr007_bad
"""RPR007-positive fixture: a shard-phase callable that looks pure one
body deep (RPR006-clean) but calls a helper whose body mutates shared
state — the transitive hole only the whole-program analysis sees."""


def shard_phase(fn):
    fn.__shard_phase__ = True
    return fn


def bump_totals(stats, name):
    # Mutates shared state on behalf of the worker that calls it.
    stats.seen.append(name)


@shard_phase
def classify_slice(live, names, stats, buf):
    for name in names:
        bump_totals(stats, name)
        buf.decisions.append(live[name])
    return buf
