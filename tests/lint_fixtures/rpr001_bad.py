# repro-lint-module: repro.sim.fixture_rpr001_bad
"""RPR001-positive fixture: one of each determinism hazard."""

import random
import time

WATCHERS = {"a", "b", "c"}


def schedule_order(live):
    out = []
    for name in WATCHERS:  # unsorted set iteration
        out.append(name)
    ranked = sorted(live, key=lambda s: id(s))  # ordering via id()
    stamp = time.time()  # wall-clock read outside the bench allowlist
    pick = random.choice(ranked)  # module-level random state
    return out, pick, stamp
