# repro-lint-module: repro.sim.fixture_rpr004_good
"""RPR004-negative fixture: module-level factory, picklable specs."""

GRID_FACTORIES = {}


def register_grid_factory(name):
    def decorate(fn):
        GRID_FACTORIES[name] = fn  # repro: noqa[RPR004] sanctioned import-time registration point
        return fn

    return decorate


@register_grid_factory("fixture")
def fixture_factory(scale):
    return []


def build_spec(GridSpec, PolicySpec):
    return GridSpec(
        policies=[PolicySpec(name="p", make=fixture_factory)],
        workloads=[],
    )


def worker_loop(conn):
    while True:
        if conn.recv_bytes() is None:
            break


def start_worker(ctx, conn):
    proc = ctx.Process(target=worker_loop, args=(conn,))
    proc.start()
    return proc


def ship_payload(conn, pool, pickle, holder_delta, names):
    payload = pickle.dumps((holder_delta, names))
    conn.send_bytes(payload)
    pool.submit(worker_loop, conn)
