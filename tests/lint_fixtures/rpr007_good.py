# repro-lint-module: repro.sim.fixture_rpr007_good
"""RPR007-negative fixture: the shard-phase callable's helpers are pure
— reads of frozen inputs, results routed through the per-shard buffer."""


def shard_phase(fn):
    fn.__shard_phase__ = True
    return fn


def derive_one(live, name):
    entry = live[name]
    return (name, entry.state)


@shard_phase
def classify_slice(live, names, buf):
    for name in names:
        buf.decisions.append(derive_one(live, name))
    return buf
