# repro-lint-module: repro.policies.fixture_rpr003_good
"""RPR003-negative fixture: a policy using only the layers below it."""

from repro.core.steps import Entity
from repro.graphs.digraph import DiGraph


def touch(graph: DiGraph, entity: Entity):
    return entity in graph
