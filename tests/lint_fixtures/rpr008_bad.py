# repro-lint-module: repro.sim.fixture_rpr008_bad
"""RPR008-positive fixture: two worker entry points fanned out by an
executor's ``.submit()`` both write the same non-shard-partitioned
attribute — a write-write race decided by thread timing."""


def tally_reads(shared, names):
    shared.tally = shared.tally + len(names)


def tally_writes(shared, names):
    shared.tally = shared.tally + 2 * len(names)


class FanoutExecutor:
    def __init__(self, pool):
        self._pool = pool

    def run_all(self, shared, names):
        futures = [
            self._pool.submit(tally_reads, shared, names),
            self._pool.submit(tally_writes, shared, names),
        ]
        return [f.result() for f in futures]
