# repro-lint-module: repro.sim.fixture_rpr005_bad
"""RPR005-positive fixture: a shard-local method peeking across shards."""


class ShardedTable:
    def __init__(self, shards):
        self._parts = [dict() for _ in range(shards)]

    def _part(self, entity):
        return self._parts[hash(entity) % len(self._parts)]

    def acquire(self, entity, txn):
        part = self._part(entity)
        for other in self._parts:  # cross-shard read on a shard-local path
            if entity in other:
                return False
        part[entity] = txn
        return True
