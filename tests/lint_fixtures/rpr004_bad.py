# repro-lint-module: repro.sim.fixture_rpr004_bad
"""RPR004-positive fixture: unpicklable objects smuggled into grid specs."""


def build_spec(GridSpec, PolicySpec, register_grid_factory):
    @register_grid_factory("local")
    def local_factory(scale):
        return []

    return GridSpec(
        policies=[PolicySpec(name="p", make=lambda: None)],
        workloads=[],
    )
