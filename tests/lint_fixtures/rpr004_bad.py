# repro-lint-module: repro.sim.fixture_rpr004_bad
"""RPR004-positive fixture: unpicklable objects smuggled into grid specs."""


def build_spec(GridSpec, PolicySpec, register_grid_factory):
    @register_grid_factory("local")
    def local_factory(scale):
        return []

    return GridSpec(
        policies=[PolicySpec(name="p", make=lambda: None)],
        workloads=[],
    )


def start_worker(ctx, conn):
    def local_loop(pipe):
        while True:
            pipe.recv_bytes()

    proc = ctx.Process(target=local_loop, args=(conn,))
    proc.start()
    return proc


def ship_payload(conn, pool, pickle, names):
    class LocalDelta:
        pass

    conn.send_bytes(pickle.dumps((LocalDelta, names)))
    conn.send({"callback": lambda reply: reply})
    pool.submit(lambda: names)
