# repro-lint-module: repro.sim.fixture_rpr006_good
"""RPR006-negative fixture: a shard-phase callable reading frozen phase
inputs and writing only its per-shard buffer."""


def shard_phase(fn):
    fn.__shard_phase__ = True
    return fn


@shard_phase
def classify_slice(derive, live, names, buf):
    for name in names:
        entry = live[name]
        buf.decisions.append((name, derive(entry)))
    return buf
