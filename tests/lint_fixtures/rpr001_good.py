# repro-lint-module: repro.sim.fixture_rpr001_good
"""RPR001-negative fixture: the same shapes done deterministically."""

import random

WATCHERS = {"a", "b", "c"}


def schedule_order(live, seed):
    out = []
    for name in sorted(WATCHERS):
        out.append(name)
    rng = random.Random(seed)
    pick = rng.choice(sorted(live))
    busy = any(w.startswith("a") for w in WATCHERS)
    return out, pick, busy and "b" in WATCHERS
