# repro-lint-module: repro.policies.fixture_rpr002_bad
"""RPR002-positive fixture: declared dependency state mutated silently."""


class BadSession:
    def __init__(self, name, context):
        self.name = name
        self.context = context

    def admission_dependencies(self):
        return tuple(("item", i) for i in sorted(self.context.items))

    def admission(self):
        if self.name in self.context.items:
            return "wait"
        return "proceed"

    def executed(self):
        # Changes other sessions' admission verdicts but never notifies.
        self.context.items.add(self.name)
