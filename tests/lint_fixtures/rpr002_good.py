# repro-lint-module: repro.policies.fixture_rpr002_good
"""RPR002-negative fixture: every mutation is paired with a notification."""


class GoodSession:
    def __init__(self, name, context):
        self.name = name
        self.context = context

    def admission_dependencies(self):
        return tuple(("item", i) for i in sorted(self.context.items))

    def admission(self):
        if self.name in self.context.items:
            return "wait"
        return "proceed"

    def executed(self):
        self.context.items.add(self.name)
        self.context.notify_changed((("item", self.name),))
