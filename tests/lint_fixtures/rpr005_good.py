# repro-lint-module: repro.sim.fixture_rpr005_good
"""RPR005-negative fixture: shard access routed through _part and the
global held index only."""


class ShardedTable:
    def __init__(self, shards):
        self._parts = [dict() for _ in range(shards)]
        self._held = {}

    def _part(self, entity):
        return self._parts[hash(entity) % len(self._parts)]

    def acquire(self, entity, txn):
        part = self._part(entity)
        if entity in part:
            return False
        part[entity] = txn
        self._held.setdefault(txn, []).append(entity)
        return True
