"""Shard invariance of the lock table.

The sharded :class:`repro.sim.LockTable` must be observably identical at
any shard count: every query and mutation is per-entity (shard-local) and
the cross-entity walks iterate the global per-transaction index in sorted
order, so ``shards=1`` and ``shards=8`` have to produce the same grants,
wake-up sets, release orders — and, end to end, byte-identical
:class:`CellResult` rows for every registered grid factory.
"""

import dataclasses
import random

import pytest

from repro.core import LockMode
from repro.policies import AltruisticPolicy, DdagPolicy, TwoPhasePolicy
from repro.sim import (
    GRID_FACTORIES,
    GridSpec,
    LockTable,
    PolicySpec,
    WorkloadSpec,
    grid_factory,
    run_grid,
    run_seed,
)

SHARD_COUNTS = (1, 2, 8)


class TestTableLevelInvariance:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_op_sequences_are_shard_invariant(self, seed):
        """Apply one seeded random op sequence to differently sharded
        tables; every return value (wake sets, released lists) and every
        observable view (holders, waiters, held_by) must match at each
        step."""
        rng = random.Random(seed)
        entities = [f"e{i}" for i in range(12)]
        txns = [f"T{i}" for i in range(8)]
        tables = [LockTable(shards=s) for s in SHARD_COUNTS]
        for _ in range(400):
            op = rng.random()
            t, e = rng.choice(txns), rng.choice(entities)
            mode = rng.choice((LockMode.SHARED, LockMode.EXCLUSIVE))
            if op < 0.4:
                if tables[0].grantable(t, e, mode):
                    for table in tables:
                        table.acquire(t, e, mode)
                else:
                    outs = [table.add_waiter(t, e, mode) for table in tables]
                    assert outs.count(None) == len(tables)
            elif op < 0.65:
                outs = [table.release(t, e, mode) for table in tables]
                assert all(o == outs[0] for o in outs), "wake sets diverge"
            elif op < 0.8:
                outs = [table.release_all_wake(t) for table in tables]
                assert all(o == outs[0] for o in outs), (
                    "release order / combined wake sets diverge"
                )
            else:
                for table in tables:
                    table.remove_waiter(t)
            ref = tables[0]
            for table in tables[1:]:
                for entity in entities:
                    assert table.holders(entity) == ref.holders(entity)
                    assert table.waiter_modes(entity) == ref.waiter_modes(entity)
                for txn in txns:
                    assert table.held_by(txn) == ref.held_by(txn)
                    assert table.waiting_entity(txn) == ref.waiting_entity(txn)
                assert table.locked_entities() == ref.locked_entities()

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="shards"):
            LockTable(shards=0)

    def test_upgrade_release_semantics_survive_sharding(self):
        for shards in SHARD_COUNTS:
            t = LockTable(shards=shards)
            t.acquire("T1", "a", LockMode.SHARED)
            t.acquire("T1", "a", LockMode.EXCLUSIVE)
            t.add_waiter("T2", "a", LockMode.SHARED)
            assert t.release("T1", "a", LockMode.SHARED) == []
            assert t.release("T1", "a", LockMode.EXCLUSIVE) == ["T2"]


# Small-but-contended kwargs per registered factory, plus the policy that
# exercises the factory's intended scenario.
FACTORY_CELLS = {
    "stress": (
        TwoPhasePolicy,
        {"num_entities": 30, "num_txns": 40, "arrival_rate": 1.0,
         "hot_fraction": 0.1},
    ),
    "deadlock_storm": (
        TwoPhasePolicy,
        {"num_entities": 20, "num_txns": 30, "accesses_per_txn": 2,
         "arrival_rate": 0.5, "hot_set_size": 4, "hot_traffic": 0.7},
    ),
    "long_transaction": (
        AltruisticPolicy,
        {"num_entities": 12, "num_short": 6, "short_start": 4},
    ),
    "random_access": (TwoPhasePolicy, {"num_entities": 8, "num_txns": 8}),
    "traversal": (DdagPolicy, {"nodes": 8, "num_txns": 5}),
    "dynamic_traversal": (DdagPolicy, {"nodes": 8, "num_txns": 5}),
}


class TestFullRunInvariance:
    @pytest.mark.parametrize("factory_name", sorted(GRID_FACTORIES))
    @pytest.mark.parametrize("seed", (0, 1))
    def test_every_factory_is_shard_invariant(self, factory_name, seed):
        """Property: for every registered grid factory, a seeded run's
        whole :class:`SeedOutcome` (metric summary, work counters,
        serializability verdict) is identical at every shard count."""
        assert factory_name in FACTORY_CELLS, (
            f"add a FACTORY_CELLS entry for new factory {factory_name!r}"
        )
        policy_cls, kwargs = FACTORY_CELLS[factory_name]
        outcomes = []
        for shards in SHARD_COUNTS:
            items, initial, context_kwargs = grid_factory(factory_name)(
                seed, **kwargs
            )
            outcomes.append(run_seed(
                policy_cls(), items, initial, seed,
                context_kwargs=context_kwargs,
                max_ticks=500_000,
                lock_shards=shards,
            ))
        ref = outcomes[0]
        assert ref.error is None, f"seed run failed: {ref.error}"
        for shards, outcome in zip(SHARD_COUNTS[1:], outcomes[1:]):
            assert outcome.summary == ref.summary, (
                f"{factory_name}: summary diverges at shards={shards}"
            )
            assert outcome.work == ref.work, (
                f"{factory_name}: work counters diverge at shards={shards}"
            )
            assert outcome.serializable == ref.serializable
            assert outcome.error == ref.error

    def test_grid_cell_rows_identical_across_shard_counts(self):
        """End to end through the grid runner: ``lock_shards=8`` must
        produce byte-identical ``CellResult.row()`` dicts to the
        single-partition reference on a multi-cell grid."""
        spec = GridSpec(
            policies=(PolicySpec(TwoPhasePolicy), PolicySpec(AltruisticPolicy)),
            workloads=(
                WorkloadSpec("deadlock_storm", {
                    "num_entities": 20, "num_txns": 25, "accesses_per_txn": 2,
                    "arrival_rate": 0.5, "hot_set_size": 4, "hot_traffic": 0.7,
                }),
            ),
            seeds=(0, 1),
            max_ticks=500_000,
            check_serializability=True,
            lock_shards=1,
        )
        reference = run_grid(spec, workers=0)
        sharded = run_grid(
            dataclasses.replace(spec, lock_shards=8), workers=0
        )
        assert [c.row() for c in sharded] == [c.row() for c in reference]
        assert [c.work_means for c in sharded] == [
            c.work_means for c in reference
        ]
