"""Fig. 2 — the proper nonserializable schedule S_p and the failure of the
static chordless-cycle heuristic.

Paper: a three-transaction system where (i) the interaction graph has a pair
of edges between every two transactions, so the only chordless cycles have
two nodes; (ii) no schedule involving only two of the three transactions is
proper; and yet (iii) a legal, proper, nonserializable schedule of all three
exists.  Restricting attention to chordless cycles would wrongly pronounce
the system safe.

Measured: exactly those three facts, plus the sound deciders (brute force
and Theorem 1) both flagging the system unsafe.
"""

from conftest import banner

from repro import (
    InteractionGraph,
    canonicalize,
    find_canonical_witness,
    is_serializable,
    static_chordless_heuristic,
)
from repro.core.safety import find_nonserializable_schedule
from repro.enumeration import count_schedules, fig2_proper_schedule, fig2_system
from repro.viz import render_schedule


def test_fig2_sp_is_proper_legal_nonserializable():
    banner("Fig. 2 — the schedule S_p")
    sp = fig2_proper_schedule()
    print(render_schedule(sp, ["T1", "T2", "T3"]))
    assert sp.is_legal()
    assert sp.is_proper()
    assert not is_serializable(sp)
    print("\nlegal: True | proper: True | serializable: False  (paper: same)")


def test_fig2_pairs_have_no_proper_schedules():
    banner("Fig. 2 — two-transaction subsystems are never proper")
    txns = fig2_system()
    for i in range(3):
        for j in range(i + 1, 3):
            pair = [txns[i], txns[j]]
            n = count_schedules(pair, legal_only=True, proper_only=True)
            print(f"  {{{pair[0].name}, {pair[1].name}}}: "
                  f"{n} complete legal+proper schedules")
            assert n == 0


def test_fig2_chordless_cycles_are_pairs_only():
    banner("Fig. 2 — interaction graph: only 2-node chordless cycles")
    graph = InteractionGraph.of(fig2_system())
    cycles = graph.chordless_cycles()
    for pair, count in graph.multiplicity:
        print(f"  {pair}: {count} conflicting data-step pairs")
    print(f"  chordless cycles: {cycles}")
    assert all(len(c) == 2 for c in cycles)


def test_fig2_heuristic_vs_sound_deciders():
    banner("Fig. 2 — static heuristic says SAFE; sound deciders say UNSAFE")
    txns = fig2_system()
    verdict = static_chordless_heuristic(txns)
    schedule = find_nonserializable_schedule(txns)
    witness = find_canonical_witness(txns)
    print(f"  chordless-cycle heuristic: "
          f"{'safe' if verdict.declared_safe else 'unsafe'}  (paper: safe — wrongly)")
    print(f"  brute-force decider:       "
          f"{'safe' if schedule is None else 'unsafe'}  (paper: unsafe)")
    print(f"  canonical decider (Thm 1): "
          f"{'safe' if witness is None else 'unsafe'}  (paper: unsafe)")
    assert verdict.declared_safe
    assert schedule is not None and witness is not None
    canonical = canonicalize(schedule)
    assert canonical.is_valid()
    print("\n  canonicalised brute-force witness:")
    print("  " + "\n  ".join(canonical.describe().splitlines()))


def test_bench_fig2_bruteforce_decider(benchmark):
    """Kernel: brute-force unsafety search on the Fig. 2 system."""
    txns = fig2_system()
    result = benchmark(lambda: find_nonserializable_schedule(txns))
    assert result is not None
