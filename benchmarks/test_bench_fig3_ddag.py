"""Fig. 3 — the DDAG policy walk-through.

Paper: on the graph (reconstructed as the chain 1->2->3->4->5), T1 locks
node 2 (rule L4), then 3 and 4 (L5), unlocks 3; T2 begins at 3 (L4); T1
releases 4; T2 locks 4.  If T1 had inserted the edge (2, 4) while holding
2 and 4, T2 would be unable to lock 4 — rule L5 now also demands node 2 —
and must abort and restart from node 2.

Measured: both variants, the L1–L5 audit, serializability, and the abort-
and-restart behaviour across seeds.
"""

from conftest import banner

from repro.core import is_serializable
from repro.policies import Access, DdagPolicy, InsertEdge, Unlock, check_ddag_schedule
from repro.sim import (
    Simulator,
    WorkloadItem,
    dag_structural_state,
    fig3_dag,
    fig3_workload,
)
from repro.sim.workloads import ddag_restart_from_cone
from repro.viz import render_dag, render_schedule


def test_fig3_baseline_walkthrough():
    banner("Fig. 3 — T1 crabs 2,3,4; T2 follows 3,4 (no edge insert)")
    print(render_dag(fig3_dag()))
    items, init = fig3_workload()
    result = Simulator(
        DdagPolicy(auto_release=False), seed=0, context_kwargs={"dag": fig3_dag()}
    ).run(items, init)
    print(render_schedule(result.schedule, ["T1", "T2"]))
    print(f"\ncommitted: {result.committed}  (paper: both commit)")
    assert set(result.committed) == {"T1", "T2"}
    assert is_serializable(result.schedule)
    assert check_ddag_schedule(result.schedule, fig3_dag()) == []
    print("serializable: True | L1-L5 violations: none  (paper: same)")


def _edge_insert_items():
    t1 = [Access(2), Access(3), Access(4), Unlock(3), InsertEdge(2, 4),
          Unlock(4), Unlock(2)]
    t2 = [Access(3), Access(4)]
    return [
        WorkloadItem("T1", t1),
        WorkloadItem("T2", t2, restart=ddag_restart_from_cone([3, 4])),
    ]


def test_fig3_edge_insert_forces_abort():
    banner("Fig. 3 — T1 inserts edge (2,4): T2 must abort under rule L5")
    dag = fig3_dag()
    total = aborted = 0
    for seed in range(40):
        result = Simulator(
            DdagPolicy(auto_release=False), seed=seed,
            context_kwargs={"dag": fig3_dag()},
        ).run(_edge_insert_items(), dag_structural_state(dag))
        assert is_serializable(result.schedule)
        total += 1
        if result.metrics.aborted:
            aborted += 1
    print(f"runs with a rule-L5 abort of T2: {aborted}/{total} "
          f"(paper: whenever T2's lock of 4 follows the edge insert)")
    print("all runs serializable: True  (Theorem 2)")
    assert aborted > 0


def test_bench_fig3_simulation(benchmark):
    """Kernel: one full Fig. 3 edge-insert run."""

    def run():
        return Simulator(
            DdagPolicy(auto_release=False), seed=7,
            context_kwargs={"dag": fig3_dag()},
        ).run(_edge_insert_items(), dag_structural_state(fig3_dag()))

    result = benchmark(run)
    assert is_serializable(result.schedule)
