"""Section 3.1's payoff — canonical schedules are a "small and highly
structured set".

Paper: the benefit of Theorem 1 is that a correctness proof need only
consider canonical schedules — serial executions of prefixes plus one lock
step — instead of arbitrary interleavings.

Measured, in two parts:

1. **Two-phase systems** — the space of complete legal & proper
   interleavings explodes combinatorially with system size, while the
   canonical candidate space is *empty* (condition 1 of Theorem 1 rules out
   every ``T_c``): safety follows with zero search.
2. **Early-release (unsafe) systems** — the work to *find* the
   counterexample: brute-force nodes explored vs canonical candidates
   considered before a witness is found.
"""

from conftest import banner

from repro.core.canonical import WitnessSearchStats, find_canonical_witness
from repro.core.safety import SearchStats, find_nonserializable_schedule
from repro.core.states import StructuralState
from repro.core.steps import Step
from repro.core.operations import Operation
from repro.core.transactions import Transaction
from repro.enumeration import count_schedules, lock_wrap
from repro.exceptions import SearchBudgetExceeded

import random


def _entities(n):
    return [chr(ord("a") + i) for i in range(n)]


def _initial(n):
    return StructuralState(frozenset(_entities(n)))


def _disjoint_system(num_txns: int, steps: int):
    """W-only transactions over disjoint entities, strict-2PL wrapped: every
    interleaving is legal and proper, so the schedule count is the raw
    multinomial of the step sequences."""
    rng = random.Random(0)
    txns = []
    for i in range(num_txns):
        ents = [f"{chr(ord('a') + i)}{k}" for k in range(steps)]
        data = [Step(Operation.WRITE, e) for e in ents]
        txns.append(lock_wrap(f"T{i + 1}", data, "2pl", rng))
    return txns


def _disjoint_initial(num_txns: int, steps: int):
    ents = {f"{chr(ord('a') + i)}{k}" for i in range(num_txns) for k in range(steps)}
    return StructuralState(frozenset(ents))


def _opposed_system(num_txns: int, steps: int):
    """Transactions over one shared entity pool, odd ones in reverse order,
    early-release wrapped: classically unsafe."""
    rng = random.Random(0)
    pool = _entities(steps)
    txns = []
    for i in range(num_txns):
        order = list(reversed(pool)) if i % 2 else list(pool)
        data = [Step(Operation.WRITE, e) for e in order]
        txns.append(lock_wrap(f"T{i + 1}", data, "early", rng))
    return txns


def test_search_space_two_phase_table():
    banner("Two-phase systems: interleavings explode, canonical set is empty")
    print(f"{'txns x steps':>12} {'complete legal+proper':>22} "
          f"{'canonical candidates':>21}")
    counts = []
    for num_txns, steps in [(2, 1), (2, 2), (2, 3), (3, 2)]:
        txns = _disjoint_system(num_txns, steps)
        initial = _disjoint_initial(num_txns, steps)
        try:
            schedules = count_schedules(txns, initial, budget=5_000_000)
            shown = str(schedules)
        except SearchBudgetExceeded:
            schedules = None
            shown = "> 5e6 (budget)"
        stats = WitnessSearchStats()
        witness = find_canonical_witness(txns, initial, stats=stats)
        assert witness is None
        print(f"{num_txns}x{steps:>10} {shown:>22} "
              f"{stats.candidates_considered:>21}")
        assert stats.candidates_considered == 0  # condition 1 prunes all
        counts.append(schedules)
    grown = [c for c in counts if c is not None]
    assert all(x < y for x, y in zip(grown, grown[1:]))
    print("\npaper: 'if all transactions obey two-phase locking we can "
          "immediately\nconclude that the transaction system is safe' — "
          "measured: zero candidates")


def test_search_space_unsafe_effort():
    banner("Unsafe early-release systems: effort to find the counterexample")
    print(f"{'txns x steps':>12} {'bruteforce nodes':>17} "
          f"{'canonical candidates':>21}")
    for num_txns, steps in [(2, 2), (2, 3), (3, 3)]:
        txns = _opposed_system(num_txns, steps)
        bf = SearchStats()
        schedule = find_nonserializable_schedule(
            txns, _initial(steps), budget=2_000_000, stats=bf
        )
        cn = WitnessSearchStats()
        witness = find_canonical_witness(txns, _initial(steps), stats=cn)
        assert schedule is not None and witness is not None
        print(f"{num_txns}x{steps:>10} {bf.nodes_explored:>17} "
              f"{cn.candidates_considered:>21}")
    print("\nshape: the canonical search touches a small, structured candidate"
          "\nspace; brute force walks the interleaving tree")


def test_bench_count_interleavings(benchmark):
    """Kernel: counting the complete legal+proper interleavings (2x3, 2PL)."""
    txns = _disjoint_system(2, 3)
    initial = _disjoint_initial(2, 3)
    n = benchmark(lambda: count_schedules(txns, initial, budget=5_000_000))
    assert n > 0


def test_bench_canonical_enumeration(benchmark):
    """Kernel: the canonical candidate sweep on an unsafe 2x3 system."""
    txns = _opposed_system(2, 3)
    witness = benchmark(lambda: find_canonical_witness(txns, _initial(3)))
    assert witness is not None
