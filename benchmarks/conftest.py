"""Shared helpers for the benchmark harness.

Each bench module reproduces one figure/theorem of the paper: it prints the
paper-vs-measured comparison (captured into EXPERIMENTS.md) and times a
representative kernel with pytest-benchmark.
"""

from __future__ import annotations


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
