"""Performance study — the simulated substitute for [CHMS94].

The paper defers quantitative evaluation of the DDAG policy to its companion
paper (a KBMS testbed we do not have); per the reproduction's substitution
rule we rerun the comparisons on the discrete-event simulator driving the
actual policy implementations.  Absolute numbers are simulator ticks, not
testbed seconds; the *shapes* under test:

* **altruistic vs 2PL, long transactions** — late-arriving short
  transactions queue behind a 2PL sweep's lifetime but run in an altruistic
  sweep's wake; the gap widens with sweep length (crossover at small
  sweeps, where wake bookkeeping costs more than it saves).
* **DDAG vs 2PL, traversals** — DDAG's early lock release along a traversal
  admits more concurrency than strict 2PL holding the whole path.
* **all policies** — every recorded schedule serializable (the safety side
  of the trade).
* **event-driven vs naive scheduler** — the per-tick classification work of
  the event engine stays near-constant while the naive rescan grows with
  the live population; identical schedules, orders of magnitude less work.
"""

import statistics
import time

from conftest import banner

from repro.core import is_serializable
from repro.graphs import random_rooted_dag
from repro.policies import AltruisticPolicy, DdagPolicy, TwoPhasePolicy
from repro.sim import (
    GridSpec,
    PolicySpec,
    Simulator,
    WorkloadSpec,
    format_table,
    long_transaction_workload,
    run_grid,
    stress_workload,
    traversal_workload,
)

SEEDS = range(8)


def test_altruistic_vs_2pl_long_transactions():
    banner("[CHMS94-substitute] late shorts behind a sweep: 2PL vs altruistic")
    rows = []
    crossover_seen = False
    for sweep in (8, 16, 24, 32):
        means = {}
        for policy in (TwoPhasePolicy(), AltruisticPolicy()):
            lat = []
            for seed in SEEDS:
                items, init = long_transaction_workload(
                    sweep, 5, short_length=2, seed=seed,
                    region="leading", short_start=int(sweep * 2.5),
                )
                result = Simulator(policy, seed=seed).run(items, init)
                assert is_serializable(result.schedule)
                lat.append(statistics.fmean(
                    rec.latency
                    for name, rec in result.metrics.records.items()
                    if name != "LONG"
                ))
            means[policy.name] = statistics.fmean(lat)
        speedup = means["2PL"] / means["Altruistic"]
        rows.append({
            "sweep": sweep,
            "2PL short-latency": round(means["2PL"], 1),
            "AL short-latency": round(means["Altruistic"], 1),
            "speedup": round(speedup, 2),
        })
        if speedup < 1:
            crossover_seen = True
    print(format_table(rows, ["sweep", "2PL short-latency", "AL short-latency", "speedup"]))
    assert rows[-1]["speedup"] > 1.2, "altruism must win for long sweeps"
    print("\nshape: altruistic wins and the gap widens with sweep length"
          + ("; crossover at small sweeps observed" if crossover_seen else ""))


def test_ddag_vs_2pl_traversals():
    banner("[CHMS94-substitute] concurrent traversals: DDAG vs strict 2PL")
    # A declarative grid: the registered "traversal" factory derives both
    # the workload and the DDAG context from the seed (2PL ignores the
    # context kwarg), so the whole cell is a picklable spec.
    spec = GridSpec(
        policies=(PolicySpec(DdagPolicy), PolicySpec(TwoPhasePolicy)),
        workloads=(
            WorkloadSpec("traversal", {
                "nodes": 10, "edge_prob": 0.25, "num_txns": 6,
                "walk_length": 5,
            }, label="traversals"),
        ),
        seeds=tuple(SEEDS),
    )
    cells = run_grid(spec, workers=0)
    rows = [c.row() for c in cells]
    print(format_table(
        rows,
        ["policy", "committed", "ticks", "mean_latency", "wait_fraction",
         "serializable"],
    ))
    ddag, tpl = cells
    assert ddag.all_serializable and tpl.all_serializable
    assert ddag.means["wait_fraction"] <= tpl.means["wait_fraction"] + 0.02, (
        "DDAG's early release should not block more than 2PL"
    )
    print("\nshape: DDAG's crab-style early release keeps blocking at or below"
          "\nstrict 2PL while preserving serializability")


def test_event_engine_vs_naive_classification_work():
    """Head-to-head at 300 transactions: the event-driven scheduler must
    reproduce the naive engine's schedule exactly while doing a fraction of
    its classification work."""
    banner("[scheduler] event-driven engine vs naive per-tick rescan")
    items, initial = stress_workload(100, 300, arrival_rate=2.0, seed=0)
    rows = []
    results = {}
    for engine in ("naive", "event"):
        start = time.perf_counter()
        result = Simulator(TwoPhasePolicy(), seed=0, engine=engine).run(
            items, initial
        )
        wall = time.perf_counter() - start
        results[engine] = result
        work = result.metrics.work_summary()
        rows.append({
            "engine": engine,
            "ticks": result.metrics.ticks,
            "classify_checks": int(work["classify_checks"]),
            "classify/tick": round(work["classify_per_tick"], 2),
            "blocker_queries": int(work["blocker_queries"]),
            "wall_s": round(wall, 3),
        })
    print(format_table(
        rows,
        ["engine", "ticks", "classify_checks", "classify/tick",
         "blocker_queries", "wall_s"],
    ))
    naive, event = results["naive"], results["event"]
    assert naive.schedule.events == event.schedule.events, (
        "engines must produce identical schedules on the same seed"
    )
    assert naive.metrics.summary() == event.metrics.summary()
    saving = naive.metrics.classify_checks / max(1, event.metrics.classify_checks)
    assert saving > 10, f"expected >10x fewer classifications, got {saving:.1f}x"
    print(f"\nshape: identical schedules; the event engine performs "
          f"{saving:.0f}x fewer classification operations")


def test_event_engine_thousand_transaction_stress():
    """Scale run: >= 1,000 transactions through the event engine, with
    near-constant per-tick classification work (the naive engine's per-tick
    work at this population is in the hundreds)."""
    banner("[scheduler] 1,200-transaction stress workload, event engine")
    items, initial = stress_workload(400, 1200, arrival_rate=2.0, seed=0)
    start = time.perf_counter()
    result = Simulator(TwoPhasePolicy(), seed=0, max_ticks=500_000).run(
        items, initial, validate=False
    )
    wall = time.perf_counter() - start
    m = result.metrics
    work = m.work_summary()
    print(format_table(
        [{
            "txns": len(items),
            "committed": m.committed,
            "ticks": m.ticks,
            "classify/tick": round(work["classify_per_tick"], 2),
            "wakeups": int(work["wakeups"]),
            "wall_s": round(wall, 3),
        }],
        ["txns", "committed", "ticks", "classify/tick", "wakeups", "wall_s"],
    ))
    assert m.committed == 1200
    assert result.ok
    assert work["classify_per_tick"] < 25, (
        "event engine classification work must not scale with the population"
    )
    print("\nshape: thousands of transactions complete with per-tick "
          "classification work independent of the live population")


def test_bench_perf_stress_event_engine(benchmark):
    """Kernel: one 300-transaction stress run under the event engine."""
    items, initial = stress_workload(100, 300, arrival_rate=2.0, seed=0)

    def run():
        return Simulator(TwoPhasePolicy(), seed=0).run(
            items, initial, validate=False
        )

    result = benchmark(run)
    assert result.metrics.committed == 300


def test_bench_perf_altruistic_cell(benchmark):
    """Kernel: one altruistic long-transaction run (sweep 16)."""

    def run():
        items, init = long_transaction_workload(
            16, 5, short_length=2, seed=3, region="leading", short_start=40
        )
        return Simulator(AltruisticPolicy(), seed=3).run(items, init)

    result = benchmark(run)
    assert is_serializable(result.schedule)


def test_bench_perf_ddag_cell(benchmark):
    """Kernel: one DDAG traversal run (10-node DAG, 6 transactions)."""

    def run():
        dag = random_rooted_dag(10, 0.25, seed=3)
        items, init = traversal_workload(dag, 6, 5, seed=3)
        return Simulator(
            DdagPolicy(), seed=3, context_kwargs={"dag": dag.snapshot()}
        ).run(items, init)

    result = benchmark(run)
    assert is_serializable(result.schedule)
