"""Ablations — what each design knob of the policies buys.

Two ablations called out in DESIGN.md:

* **DDAG auto-release** (crab locking) on vs off: early release is where the
  DDAG policy's concurrency comes from; holding every lock to commit
  degenerates it into 2PL-over-a-DAG.
* **Altruistic donation** on vs off: with donation disabled the policy *is*
  strict 2PL (the wake machinery never engages), so the short-transaction
  latency advantage must disappear.

Both ablations must preserve safety — the rules stay intact; only the
generosity changes.
"""

import statistics

from conftest import banner

from repro.core import is_serializable
from repro.graphs import random_rooted_dag
from repro.policies import AltruisticPolicy, DdagPolicy
from repro.sim import Simulator, long_transaction_workload, traversal_workload

SEEDS = range(8)


def _chain_pipeline(length: int, num_txns: int):
    """Full-chain traversals: every transaction walks root..leaf — the
    configuration where crab locking pipelines (T2 enters the chain while T1
    is further down) and hold-to-commit serialises."""
    from repro.graphs import chain
    from repro.policies import Access
    from repro.sim import WorkloadItem, dag_structural_state

    dag = chain(length)
    walk = list(range(1, length + 1))
    items = [
        WorkloadItem(f"T{i}", [Access(n) for n in walk])
        for i in range(1, num_txns + 1)
    ]
    return dag, items, dag_structural_state(dag)


def test_ablation_ddag_auto_release():
    banner("Ablation — DDAG crab release on vs off (chain pipeline)")
    rows = {}
    for auto in (True, False):
        waits = []
        for seed in SEEDS:
            dag, items, init = _chain_pipeline(6, 3)
            from repro.graphs import chain

            result = Simulator(
                DdagPolicy(auto_release=auto),
                seed=seed,
                context_kwargs={"dag": chain(6)},
            ).run(items, init)
            assert is_serializable(result.schedule)
            waits.append(result.metrics.wait_fraction)
        rows[auto] = statistics.fmean(waits)
    print(f"  auto-release on:  wait_fraction = {rows[True]:.4f}")
    print(f"  auto-release off: wait_fraction = {rows[False]:.4f}")
    assert rows[True] < rows[False], (
        "early release must block less than hold-to-commit on the chain"
    )
    print("\nshape: crab release pipelines traversals down the chain; "
          "holding\nevery lock to commit serialises them")


def test_ablation_altruistic_donation():
    banner("Ablation — altruistic donation on vs off (off == strict 2PL)")
    rows = {}
    for donate in (True, False):
        lat = []
        for seed in SEEDS:
            items, init = long_transaction_workload(
                24, 5, short_length=2, seed=seed,
                region="leading", short_start=60,
            )
            result = Simulator(
                AltruisticPolicy(donate_immediately=donate), seed=seed
            ).run(items, init)
            assert is_serializable(result.schedule)
            lat.append(statistics.fmean(
                rec.latency
                for name, rec in result.metrics.records.items()
                if name != "LONG"
            ))
        rows[donate] = statistics.fmean(lat)
    print(f"  donation on:  short-latency = {rows[True]:.1f}")
    print(f"  donation off: short-latency = {rows[False]:.1f}")
    assert rows[True] < rows[False], "donation is where the wake benefit lives"
    print("\nshape: without donation the wake machinery never engages and the "
          "policy behaves like 2PL")


def test_bench_ablation_ddag_no_release(benchmark):
    """Kernel: one hold-to-commit DDAG traversal run."""

    def run():
        dag = random_rooted_dag(10, 0.25, seed=3)
        items, init = traversal_workload(dag, 6, 5, seed=3)
        return Simulator(
            DdagPolicy(auto_release=False), seed=3,
            context_kwargs={"dag": dag.snapshot()},
        ).run(items, init)

    result = benchmark(run)
    assert is_serializable(result.schedule)
