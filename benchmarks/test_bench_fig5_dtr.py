"""Fig. 5 — dynamic tree policy walk-through.

Paper: when T1 begins, the forest is a single tree (Fig. 5a, rules DT0/DT2);
T2's access of node 4 adds it to the forest (Fig. 5b, DT1/DT2); once T2
finishes, node 4 can be deleted because T1 remains tree-locked with respect
to G(4) (DT3); T3 behaves analogously.

Measured: the forest trace for that exact scenario, tree-lockedness of
every precomputed locked transaction, and serializability (Theorem 4).
"""

from conftest import banner

from repro.core import StructuralState, is_serializable
from repro.core.transactions import Transaction
from repro.policies import Access, DtrPolicy, check_tree_locked
from repro.sim import Simulator, WorkloadItem
from repro.viz import render_forest


def test_fig5_forest_trace():
    banner("Fig. 5 — the database forest under DT0-DT3")
    ctx = DtrPolicy().create_context()
    print("DT0: forest initially empty:", render_forest(ctx.forest))

    s1 = ctx.begin("T1", [Access(1), Access(2), Access(3)])
    print("\nT1 over {1,2,3} (Fig. 5a):")
    print(render_forest(ctx.forest))
    assert ctx.forest.nodes() == {1, 2, 3}

    s2 = ctx.begin("T2", [Access(2), Access(4)])
    print("\nT2 over {2,4} adds node 4 (Fig. 5b):")
    print(render_forest(ctx.forest))
    assert 4 in ctx.forest

    for name, session in (("T1", s1), ("T2", s2)):
        txn = Transaction(name, tuple(session._steps))
        assert check_tree_locked(txn, ctx.plan_parents[name]) == []
    print("\nboth precomputed locked transactions are tree-locked (DT2)")

    while s2.peek() is not None:
        s2.executed()
    s2.on_commit()
    print("\nT2 commits; DT3 deletes node 4 (T1 tree-locked in G(4)):")
    print(render_forest(ctx.forest))
    assert 4 not in ctx.forest

    s3 = ctx.begin("T3", [Access(3), Access(5)])
    print("\nT3 over {3,5} adds node 5 (the analogous step for T3):")
    print(render_forest(ctx.forest))
    assert 5 in ctx.forest


def test_fig5_concurrent_runs():
    banner("Fig. 5 — concurrent T1, T2, T3 under the simulator")
    items = [
        WorkloadItem("T1", [Access(1), Access(2), Access(3)]),
        WorkloadItem("T2", [Access(2), Access(4)]),
        WorkloadItem("T3", [Access(3), Access(5)]),
    ]
    init = StructuralState.of(1, 2, 3, 4, 5)
    for seed in range(20):
        result = Simulator(DtrPolicy(), seed=seed).run(items, init)
        assert set(result.committed) == {"T1", "T2", "T3"}
        assert is_serializable(result.schedule)
    print("20/20 runs serializable  (Theorem 4)")


def test_bench_fig5_simulation(benchmark):
    items = [
        WorkloadItem("T1", [Access(1), Access(2), Access(3)]),
        WorkloadItem("T2", [Access(2), Access(4)]),
        WorkloadItem("T3", [Access(3), Access(5)]),
    ]
    init = StructuralState.of(1, 2, 3, 4, 5)
    result = benchmark(lambda: Simulator(DtrPolicy(), seed=5).run(items, init))
    assert is_serializable(result.schedule)
