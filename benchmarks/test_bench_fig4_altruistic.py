"""Fig. 4 — altruistic locking walk-through.

Paper: once T1 releases entity 1, T2 locks it and enters T1's wake; from
then on T2 may lock only entities T1 has donated, until T1 reaches its
locked point (its lock of entity 3), after which T2 may lock anything.

Measured: the wake lifecycle on the exact scenario, plus AL1–AL3 audits and
serializability over many seeds.
"""

from conftest import banner

from repro.core import StructuralState, is_serializable
from repro.policies import (
    Access,
    Admission,
    AltruisticPolicy,
    check_altruistic_schedule,
)
from repro.sim import Simulator, WorkloadItem
from repro.viz import render_schedule


def test_fig4_wake_lifecycle():
    banner("Fig. 4 — T2 in T1's wake")
    ctx = AltruisticPolicy().create_context()
    t1 = ctx.begin("T1", [Access(1), Access(2), Access(3)])
    # T1: lock 1, access, donate 1 (pre-locked-point).
    for _ in range(4):
        assert t1.peek() is not None
        t1.executed()
    assert 1 in t1.donated and not t1.reached_locked_point
    print("T1 donated entity 1 before its locked point (its lock of 3)")

    t2 = ctx.begin("T2", [Access(1), Access(4)])
    for _ in range(4):  # T2 takes donated entity 1
        assert t2.peek() is not None
        t2.executed()
    assert t2.in_wake_of(t1)
    print("T2 locked entity 1 -> T2 is in the wake of T1")

    assert t2.peek().entity == 4
    assert t2.admission().verdict is Admission.WAIT
    print("T2 wants entity 4 (never donated): AL2 makes it WAIT  (paper: same)")

    while not t1.reached_locked_point:
        assert t1.peek() is not None
        t1.executed()
    assert t2.admission().verdict is Admission.PROCEED
    print("T1 reaches its locked point: the wake dissolves, T2 may proceed")


def test_fig4_full_runs_audited():
    banner("Fig. 4 — full concurrent runs, AL1-AL3 audited")
    items = [
        WorkloadItem("T1", [Access(1), Access(2), Access(3)]),
        WorkloadItem("T2", [Access(1), Access(2), Access(4)]),
    ]
    init = StructuralState.of(1, 2, 3, 4)
    shown = False
    for seed in range(20):
        result = Simulator(AltruisticPolicy(), seed=seed).run(items, init)
        assert set(result.committed) == {"T1", "T2"}
        assert is_serializable(result.schedule)
        assert check_altruistic_schedule(result.schedule) == []
        if not shown and seed == 0:
            print(render_schedule(result.schedule, ["T1", "T2"]))
            shown = True
    print("\n20/20 runs: serializable, AL1-AL3 clean  (Theorem 3)")


def test_bench_fig4_simulation(benchmark):
    """Kernel: one Fig. 4 run."""
    items = [
        WorkloadItem("T1", [Access(1), Access(2), Access(3)]),
        WorkloadItem("T2", [Access(1), Access(2), Access(4)]),
    ]
    init = StructuralState.of(1, 2, 3, 4)
    result = benchmark(
        lambda: Simulator(AltruisticPolicy(), seed=3).run(items, init)
    )
    assert is_serializable(result.schedule)
