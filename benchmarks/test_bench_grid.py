"""Parallel experiment grid bench — multiprocess ``run_cell`` fan-out.

The reproduction's evaluation budget is measured in (policy, workload,
seed) cells, and until this bench's subject change every seed of every
cell ran serially in one process.  The grid runner
(:func:`repro.sim.run_grid`) fans the seed-runs out over a multiprocessing
pool from picklable specs (policy constructors + registered factory names,
never live objects) and streams per-seed summaries back to the parent,
which aggregates them exactly as the serial path does.

This bench runs the 1,200-transaction stress grid through both paths and
asserts the grid's correctness contract:

* **byte-identical rows** — ``workers=0`` (the in-process reference) and
  ``workers>=2`` produce equal :class:`CellResult` objects, means, stdevs,
  failure lists and all;
* **no green without a check** — the grid skips per-seed serializability
  checking at this scale, and every row must say ``"skipped"``, not
  ``True`` (the headline harness bugfix of this change).

Wall-clock for both paths is recorded in ``BENCH_grid_stress.json`` (the
unified artifact schema — see benchmarks/README.md).  Near-linear scaling
only shows on a multi-core runner, so the speedup is reported, not
asserted.

``BENCH_SMOKE_SCALE`` (a float in ``(0, 1]``, default 1) shrinks the
transaction counts for CI smoke runs; ``BENCH_GRID_WORKERS`` (default 2)
sets the parallel worker count.
"""

import os
import time
from pathlib import Path

from conftest import banner

from repro.policies import AltruisticPolicy, TwoPhasePolicy
from repro.sim import (
    GridSpec,
    PolicySpec,
    WorkloadSpec,
    cell_rows_with_work,
    format_table,
    run_grid,
    write_bench_artifact,
)

SCALE = float(os.environ.get("BENCH_SMOKE_SCALE", "1"))
WORKERS = int(os.environ.get("BENCH_GRID_WORKERS", "2"))
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_grid_stress.json"


def _scaled(n: int) -> int:
    return max(50, int(n * SCALE))


def _grid_spec() -> GridSpec:
    """The stress grid: both static-policy scale scenarios of the earlier
    PRs as one declarative spec.  ``pairs`` instead of a cross product —
    the altruistic deadlock storm needs its own (smaller) tuning and is
    already covered by test_bench_deadlock.py."""
    two_pl = PolicySpec(TwoPhasePolicy)
    altruistic = PolicySpec(AltruisticPolicy)
    open_stress = WorkloadSpec("stress", {
        "num_entities": 2000, "num_txns": _scaled(1200),
        "arrival_rate": 0.085, "hot_fraction": 0.0,
    }, label="open-stress")
    storm = WorkloadSpec("deadlock_storm", {
        "num_entities": 600, "num_txns": _scaled(1200),
        "accesses_per_txn": 2, "arrival_rate": 0.4,
        "hot_set_size": 8, "hot_traffic": 0.5,
    }, label="deadlock-storm")
    return GridSpec(
        pairs=(
            (two_pl, open_stress),
            (altruistic, open_stress),
            (two_pl, storm),
        ),
        seeds=(0, 1, 2),
        max_ticks=2_000_000,
        check_serializability=False,
    )


def test_grid_parallel_equivalence_and_scaling():
    banner(
        f"[harness] multiprocess grid fan-out at {_scaled(1200)} txns/cell: "
        f"workers=0 vs workers={WORKERS} (scale={SCALE:g})"
    )
    spec = _grid_spec()

    start = time.perf_counter()
    serial = run_grid(spec, workers=0)
    wall_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_grid(spec, workers=WORKERS)
    wall_parallel = time.perf_counter() - start

    # The contract: identical CellResult objects — rows, means, stdevs,
    # failure lists, work counters — regardless of the worker count.
    assert [c.row() for c in serial] == [c.row() for c in parallel], (
        "parallel grid rows diverge from the serial reference"
    )
    for s_cell, p_cell in zip(serial, parallel):
        assert s_cell == p_cell, (
            f"cell {s_cell.policy}×{s_cell.workload}: aggregates diverge"
        )

    # Headline harness fix: unchecked serializability must not read green.
    rows = [c.row() for c in serial]
    assert all(r["serializable"] == "skipped" for r in rows), (
        "a cell that skipped the serializability check reported a verdict"
    )
    assert all(c.runs == len(spec.seeds) and c.failures == 0 for c in serial)

    print(format_table(rows, [
        "policy", "workload", "runs", "failures", "serializable",
        "ticks", "committed", "throughput", "mean_latency",
    ]))
    speedup = wall_serial / max(wall_parallel, 1e-9)
    print(f"\nserial {wall_serial:.2f}s vs {WORKERS} workers "
          f"{wall_parallel:.2f}s ({speedup:.2f}x, {os.cpu_count()} cpus)")

    write_bench_artifact(
        RESULTS_PATH, "grid_stress",
        cell_rows_with_work(serial),
        scale=SCALE, workers=WORKERS, wall_s=wall_parallel,
        extra={
            "wall_serial_s": round(wall_serial, 3),
            "wall_parallel_s": round(wall_parallel, 3),
            "speedup": round(speedup, 2),
            "cpu_count": os.cpu_count(),
            "seeds": list(spec.seeds),
        },
    )
    print(f"\nshape: seed-runs fan out across processes and aggregate to "
          f"byte-identical rows; results in {RESULTS_PATH.name}")


def test_bench_grid_kernel(benchmark):
    """Kernel: one small in-process grid (2 policies × 1 workload × 2
    seeds) — the serial reference path the fan-out is measured against."""
    spec = GridSpec(
        policies=(PolicySpec(TwoPhasePolicy), PolicySpec(AltruisticPolicy)),
        workloads=(WorkloadSpec("stress", {
            "num_entities": 200, "num_txns": 60, "arrival_rate": 0.5,
        }),),
        seeds=(0, 1),
        max_ticks=500_000,
        check_serializability=False,
    )

    cells = benchmark(lambda: run_grid(spec, workers=0))
    assert all(c.failures == 0 for c in cells)
