"""Dynamic-policy stress benchmark — the policy-aware invalidation protocol.

PR 1's event-driven scheduler explicitly degraded to the naive per-tick
rescan for dynamic sessions, which is exactly the paper's own policies:
DDAG rule L5 consults "the present state of G" and altruistic AL2 consults
the shared wake bookkeeping.  The invalidation protocol
(``PolicySession.admission_dependencies`` + ``PolicyContext.notify_changed``)
lets those sessions declare precisely which shared-state changes can flip
their cached verdicts, so the scheduler re-examines them only when such a
change is reported instead of every tick.

This bench runs 1,000+ transaction stress workloads under the paper's two
dynamic policies through **both** engines and asserts:

* exact equivalence — identical schedules, metric summaries, and
  per-transaction records on the same seed;
* the protocol's win — ``classify_checks + admission_checks`` drop ≥ 10×
  versus the naive rescan (the acceptance bar of the invalidation work).

``BENCH_SMOKE_SCALE`` (a float in ``(0, 1]``, default 1) shrinks the
transaction counts for CI smoke runs; below full scale the ratio assertion
relaxes (the saving grows with the live population, which grows with the
workload).  Results are written to ``BENCH_invalidation_stress.json`` so CI
can upload them as an artifact.
"""

import json
import os
import time
from pathlib import Path

from conftest import banner

from repro.graphs import random_rooted_dag
from repro.policies import AltruisticPolicy, DdagPolicy
from repro.sim import (
    Simulator,
    dynamic_traversal_workload,
    format_table,
    stress_workload,
)

SCALE = float(os.environ.get("BENCH_SMOKE_SCALE", "1"))
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_invalidation_stress.json"


def _scaled(n: int) -> int:
    return max(50, int(n * SCALE))


def _run_cell(name, policy_factory, items, initial, context_kwargs_factory=None):
    """Run one workload under both engines; assert equivalence; return the
    per-engine work numbers."""
    results = {}
    rows = []
    for engine in ("naive", "event"):
        sim = Simulator(
            policy_factory(),
            seed=0,
            engine=engine,
            max_ticks=2_000_000,
            context_kwargs=context_kwargs_factory() if context_kwargs_factory else {},
        )
        start = time.perf_counter()
        result = sim.run(items, initial, validate=False)
        wall = time.perf_counter() - start
        results[engine] = (result, wall)
        m = result.metrics
        rows.append({
            "workload": name,
            "engine": engine,
            "txns": len(items),
            "ticks": m.ticks,
            "classify+admission": m.classify_checks + m.admission_checks,
            "invalidations": m.invalidations,
            "wall_s": round(wall, 3),
        })
    print(format_table(
        rows,
        ["workload", "engine", "txns", "ticks", "classify+admission",
         "invalidations", "wall_s"],
    ))

    naive, event = results["naive"][0], results["event"][0]
    assert naive.schedule.events == event.schedule.events, (
        f"{name}: engines must produce identical schedules"
    )
    assert naive.metrics.summary() == event.metrics.summary(), (
        f"{name}: metric summaries diverge"
    )
    for txn, rn in naive.metrics.records.items():
        re_ = event.metrics.records[txn]
        assert (
            rn.start_tick, rn.end_tick, rn.committed, rn.restarts,
            rn.steps_executed, rn.blocked_ticks,
        ) == (
            re_.start_tick, re_.end_tick, re_.committed, re_.restarts,
            re_.steps_executed, re_.blocked_ticks,
        ), f"{name}: per-transaction record for {txn} diverges"

    checks = {
        e: r.metrics.classify_checks + r.metrics.admission_checks
        for e, (r, _) in results.items()
    }
    ratio = checks["naive"] / max(1, checks["event"])
    floor = 10.0 if len(items) >= 1000 else 2.0
    assert ratio >= floor, (
        f"{name}: expected >= {floor}x fewer classification+admission checks "
        f"at {len(items)} txns, got {ratio:.1f}x"
    )
    return {
        "workload": name,
        "txns": len(items),
        "ticks": naive.metrics.ticks,
        "committed": naive.metrics.committed,
        "naive_checks": checks["naive"],
        "event_checks": checks["event"],
        "ratio": round(ratio, 2),
        "invalidations": event.metrics.invalidations,
        "naive_wall_s": round(results["naive"][1], 3),
        "event_wall_s": round(results["event"][1], 3),
    }


def test_dynamic_policy_invalidation_stress():
    banner(
        "[scheduler] policy-aware invalidation: dynamic policies at "
        f"{_scaled(1200)}/{_scaled(1100)} txns (scale={SCALE:g})"
    )
    cells = []

    # Altruistic locking: an open system of short transactions arriving
    # just above the simulator's service capacity, so a standing population
    # of wake-constrained and lock-blocked sessions accumulates.  AL2 is
    # the shared-state verdict; donations/locked-points invalidate it.
    items, initial = stress_workload(
        2000, _scaled(1200), arrival_rate=0.085, hot_fraction=0.0, seed=0
    )
    cells.append(_run_cell("altruistic-stress", AltruisticPolicy, items, initial))

    # DDAG: dynamic traversals (structural churn: fresh-leaf inserts) over
    # a shared rooted DAG at an overload arrival rate, piling traversals
    # behind the hot upper nodes.  L5 is the shared-state verdict; graph
    # mutations invalidate the affected node channels.
    dag_seed = 0
    items, initial = dynamic_traversal_workload(
        random_rooted_dag(60, 0.05, seed=dag_seed),
        _scaled(1100),
        3,
        insert_prob=0.3,
        seed=0,
        arrival_rate=0.18,
    )
    cells.append(_run_cell(
        "ddag-dynamic-stress",
        DdagPolicy,
        items,
        initial,
        context_kwargs_factory=lambda: {
            "dag": random_rooted_dag(60, 0.05, seed=dag_seed).snapshot()
        },
    ))

    # The altruistic cell must actually exercise the notification path —
    # a zero here would mean the protocol silently fell back to every-tick
    # re-checks (or donations stopped being reported).
    assert cells[0]["invalidations"] > 0

    RESULTS_PATH.write_text(json.dumps({"scale": SCALE, "cells": cells}, indent=2))
    print(format_table(
        cells,
        ["workload", "txns", "naive_checks", "event_checks", "ratio",
         "invalidations"],
    ))
    print(f"\nshape: the paper's own (dynamic) policies now ride the "
          f"event-driven engine; results in {RESULTS_PATH.name}")


def test_bench_invalidation_kernel(benchmark):
    """Kernel: one 300-transaction altruistic stress run, event engine."""
    items, initial = stress_workload(
        600, 300, arrival_rate=0.085, hot_fraction=0.0, seed=0
    )

    def run():
        return Simulator(AltruisticPolicy(), seed=0, max_ticks=500_000).run(
            items, initial, validate=False
        )

    result = benchmark(run)
    # Deadlock victims may exhaust their restart budget and drop; everything
    # else must commit.
    assert result.metrics.committed + len(result.aborted) == 300
    assert result.metrics.committed >= 290
