"""Dynamic-policy stress benchmark — the policy-aware invalidation protocol.

PR 1's event-driven scheduler explicitly degraded to the naive per-tick
rescan for dynamic sessions, which is exactly the paper's own policies:
DDAG rule L5 consults "the present state of G" and altruistic AL2 consults
the shared wake bookkeeping.  The invalidation protocol
(``PolicySession.admission_dependencies`` + ``PolicyContext.notify_changed``)
lets those sessions declare precisely which shared-state changes can flip
their cached verdicts, so the scheduler re-examines them only when such a
change is reported instead of every tick.

This bench runs 1,000+ transaction stress workloads under the paper's two
dynamic policies through **both** engines and asserts:

* exact equivalence — identical schedules, metric summaries, and
  per-transaction records on the same seed;
* the protocol's win — ``classify_checks + admission_checks`` drop ≥ 10×
  versus the naive rescan (the acceptance bar of the invalidation work).

``BENCH_SMOKE_SCALE`` (a float in ``(0, 1]``, default 1) shrinks the
transaction counts for CI smoke runs; below full scale the ratio assertion
relaxes (the saving grows with the live population, which grows with the
workload).  Results are written to ``BENCH_invalidation_stress.json`` (the
unified artifact schema — see benchmarks/README.md) so CI can upload them.

Workloads are built through the registered grid factories
(:data:`repro.sim.GRID_FACTORIES`) — the same by-name specs the parallel
grid runner pickles — so this bench and the grid harness exercise one
construction path.
"""

import os
import time
from pathlib import Path

from conftest import banner

from repro.policies import AltruisticPolicy, DdagPolicy
from repro.sim import Simulator, format_table, grid_factory, write_bench_artifact

SCALE = float(os.environ.get("BENCH_SMOKE_SCALE", "1"))
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_invalidation_stress.json"


def _scaled(n: int) -> int:
    return max(50, int(n * SCALE))


def _run_cell(name, policy_factory, build):
    """Run one workload under both engines; assert equivalence; return the
    per-engine work numbers.  ``build()`` constructs ``(items, initial,
    context_kwargs)`` fresh per engine — dynamic policies mutate the
    context's graph, so nothing may be shared between the two runs."""
    results = {}
    rows = []
    num_txns = 0
    for engine in ("naive", "event"):
        items, initial, context_kwargs = build()
        num_txns = len(items)
        sim = Simulator(
            policy_factory(),
            seed=0,
            engine=engine,
            max_ticks=2_000_000,
            context_kwargs=context_kwargs,
        )
        start = time.perf_counter()
        result = sim.run(items, initial, validate=False)
        wall = time.perf_counter() - start
        results[engine] = (result, wall)
        m = result.metrics
        rows.append({
            "workload": name,
            "engine": engine,
            "txns": len(items),
            "ticks": m.ticks,
            "classify+admission": m.classify_checks + m.admission_checks,
            "invalidations": m.invalidations,
            "wall_s": round(wall, 3),
        })
    print(format_table(
        rows,
        ["workload", "engine", "txns", "ticks", "classify+admission",
         "invalidations", "wall_s"],
    ))

    naive, event = results["naive"][0], results["event"][0]
    assert naive.schedule.events == event.schedule.events, (
        f"{name}: engines must produce identical schedules"
    )
    assert naive.metrics.summary() == event.metrics.summary(), (
        f"{name}: metric summaries diverge"
    )
    for txn, rn in naive.metrics.records.items():
        re_ = event.metrics.records[txn]
        assert (
            rn.start_tick, rn.end_tick, rn.committed, rn.restarts,
            rn.steps_executed, rn.blocked_ticks,
        ) == (
            re_.start_tick, re_.end_tick, re_.committed, re_.restarts,
            re_.steps_executed, re_.blocked_ticks,
        ), f"{name}: per-transaction record for {txn} diverges"

    checks = {
        e: r.metrics.classify_checks + r.metrics.admission_checks
        for e, (r, _) in results.items()
    }
    ratio = checks["naive"] / max(1, checks["event"])
    floor = 10.0 if num_txns >= 1000 else 2.0
    assert ratio >= floor, (
        f"{name}: expected >= {floor}x fewer classification+admission checks "
        f"at {num_txns} txns, got {ratio:.1f}x"
    )
    return {
        "workload": name,
        "txns": num_txns,
        "ticks": naive.metrics.ticks,
        "committed": naive.metrics.committed,
        "naive_checks": checks["naive"],
        "event_checks": checks["event"],
        "ratio": round(ratio, 2),
        "invalidations": event.metrics.invalidations,
        "naive_wall_s": round(results["naive"][1], 3),
        "event_wall_s": round(results["event"][1], 3),
    }


def test_dynamic_policy_invalidation_stress():
    banner(
        "[scheduler] policy-aware invalidation: dynamic policies at "
        f"{_scaled(1200)}/{_scaled(1100)} txns (scale={SCALE:g})"
    )
    cells = []
    suite_start = time.perf_counter()

    # Altruistic locking: an open system of short transactions arriving
    # just above the simulator's service capacity, so a standing population
    # of wake-constrained and lock-blocked sessions accumulates.  AL2 is
    # the shared-state verdict; donations/locked-points invalidate it.
    cells.append(_run_cell(
        "altruistic-stress",
        AltruisticPolicy,
        lambda: grid_factory("stress")(
            0, num_entities=2000, num_txns=_scaled(1200),
            arrival_rate=0.085, hot_fraction=0.0,
        ),
    ))

    # DDAG: dynamic traversals (structural churn: fresh-leaf inserts) over
    # a shared rooted DAG at an overload arrival rate, piling traversals
    # behind the hot upper nodes.  L5 is the shared-state verdict; graph
    # mutations invalidate the affected node channels.  The registered
    # factory derives the DAG (and the context's snapshot of it) from the
    # seed, fresh per engine run.
    cells.append(_run_cell(
        "ddag-dynamic-stress",
        DdagPolicy,
        lambda: grid_factory("dynamic_traversal")(
            0, nodes=60, edge_prob=0.05, num_txns=_scaled(1100),
            walk_length=3, insert_prob=0.3, arrival_rate=0.18,
        ),
    ))

    # The altruistic cell must actually exercise the notification path —
    # a zero here would mean the protocol silently fell back to every-tick
    # re-checks (or donations stopped being reported).
    assert cells[0]["invalidations"] > 0

    write_bench_artifact(
        RESULTS_PATH, "invalidation_stress", cells, scale=SCALE,
        wall_s=time.perf_counter() - suite_start,
    )
    print(format_table(
        cells,
        ["workload", "txns", "naive_checks", "event_checks", "ratio",
         "invalidations"],
    ))
    print(f"\nshape: the paper's own (dynamic) policies now ride the "
          f"event-driven engine; results in {RESULTS_PATH.name}")


def test_bench_invalidation_kernel(benchmark):
    """Kernel: one 300-transaction altruistic stress run, event engine."""
    items, initial, _ = grid_factory("stress")(
        0, num_entities=600, num_txns=300, arrival_rate=0.085, hot_fraction=0.0
    )

    def run():
        return Simulator(AltruisticPolicy(), seed=0, max_ticks=500_000).run(
            items, initial, validate=False
        )

    result = benchmark(run)
    # Deadlock victims may exhaust their restart budget and drop; everything
    # else must commit.
    assert result.metrics.committed + len(result.aborted) == 300
    assert result.metrics.committed >= 290
