"""Theorem 1 — empirical equivalence of the two safety deciders.

Paper: a locked transaction system is unsafe iff a canonical nonserializable
schedule exists (conditions 1, 2a, 2b); with exclusive locks only, D(S') has
a unique sink (Section 3.3).

Measured: over a deterministic corpus of random systems, the brute-force
decider (exhaustive interleavings) and the canonical decider (witness
search) return identical verdicts; every brute-force counterexample
canonicalises into a valid witness; every witness realises into a
nonserializable schedule; every exclusive-only witness has a unique sink.
"""

from conftest import banner

from repro import canonicalize, find_canonical_witness
from repro.core.safety import find_nonserializable_schedule
from repro.enumeration import corpus_initial_state, random_locked_system

INITIAL = corpus_initial_state(3)
SEEDS = range(30)
STYLES = ("early", "chaotic", "mixed", "2pl")


def _corpus():
    for style in STYLES:
        for seed in SEEDS:
            yield style, seed, random_locked_system(
                num_txns=2, num_entities=3, steps_per_txn=3, style=style, seed=seed
            )


def test_theorem1_decider_agreement_table():
    banner("Theorem 1 — decider agreement over the random-system corpus")
    rows = []
    for style in STYLES:
        safe = unsafe = disagree = 0
        for _, seed, txns in ((s, x, t) for s, x, t in _corpus() if s == style):
            schedule = find_nonserializable_schedule(txns, INITIAL, budget=400_000)
            witness = find_canonical_witness(txns, INITIAL, budget=400_000)
            if (schedule is None) != (witness is None):
                disagree += 1
            elif schedule is None:
                safe += 1
            else:
                unsafe += 1
        rows.append((style, safe, unsafe, disagree))
    print(f"{'style':<10} {'safe':>6} {'unsafe':>7} {'disagreements':>14}")
    for style, safe, unsafe, disagree in rows:
        print(f"{style:<10} {safe:>6} {unsafe:>7} {disagree:>14}")
    assert all(r[3] == 0 for r in rows), "deciders must agree (Theorem 1)"
    assert any(r[2] > 0 for r in rows), "corpus must include unsafe systems"
    assert dict((r[0], r[2]) for r in rows)["2pl"] == 0
    print("\npaper: agreement is exact (it is a theorem); measured: exact")


def test_theorem1_constructive_directions():
    banner("Theorem 1 — constructive Only-If (canonicalise) and If (realise)")
    canonicalised = realised = 0
    for style, seed, txns in _corpus():
        if style == "2pl":
            continue
        schedule = find_nonserializable_schedule(txns, INITIAL, budget=400_000)
        if schedule is None:
            continue
        witness = canonicalize(schedule)
        assert witness.problems(INITIAL) == []
        canonicalised += 1
        from repro.core.serializability import is_serializable

        realized = witness.realize(INITIAL)
        assert not is_serializable(realized)
        realised += 1
    print(f"brute-force counterexamples canonicalised: {canonicalised}")
    print(f"witnesses realised into nonserializable schedules: {realised}")
    assert canonicalised > 0 and realised == canonicalised


def test_theorem1_exclusive_unique_sink():
    banner("Section 3.3 — exclusive-only witnesses have a unique sink")
    checked = 0
    for style, seed, txns in _corpus():
        if style == "2pl":
            continue
        witness = find_canonical_witness(txns, INITIAL, budget=400_000)
        if witness is None:
            continue
        assert witness.satisfies_exclusive_variant(), witness.describe()
        checked += 1
    print(f"witnesses checked for the unique-sink property: {checked}")
    assert checked > 0


def test_bench_theorem1_canonical_decider(benchmark):
    """Kernel: one canonical-decider call on an unsafe instance."""
    txns = random_locked_system(2, 3, 3, style="early", seed=4)
    benchmark(lambda: find_canonical_witness(txns, INITIAL, budget=400_000))


def test_bench_theorem1_bruteforce_decider(benchmark):
    """Kernel: the brute-force decider on the same instance."""
    txns = random_locked_system(2, 3, 3, style="early", seed=4)
    benchmark(lambda: find_nonserializable_schedule(txns, INITIAL, budget=400_000))
