"""Fig. 1 — shapes of D(S') for canonical schedules.

Paper: in *static* databases the serializability graph of a canonical
schedule is a simple path closed by one back edge, with ``T_c`` first
(Fig. 1a); in *dynamic* databases it need not be — the properness of the
schedule involving ``T_c`` may depend on entities inserted by transactions
``T_1 … T_{c-1}``, so ``T_c`` can sit in the middle of the serial order
(Fig. 1b).

Measured: both shapes from real witnesses — a static-style two-transaction
cycle (``T_c`` first, simple path), and a dynamic system whose witness
*provably cannot* put ``T_c`` first: ``T_c``'s own prefix writes an entity
that only an earlier transaction inserts.
"""

from conftest import banner

from repro import StructuralState, Transaction, find_canonical_witness
from repro.enumeration import fig2_system
from repro.viz import render_conflict_graph

AB = StructuralState.of("a", "b")


def _static_style_pair():
    t1 = Transaction.from_text("T1", "(LX a) (W a) (UX a) (LX b) (W b) (UX b)")
    t2 = Transaction.from_text("T2", "(LX b) (W b) (UX b) (LX a) (W a) (UX a)")
    return [t1, t2]


def _dynamic_forced_system():
    """T1 (= the eventual T_c) writes x, which only T0 inserts: every proper
    canonical schedule must execute T0's prefix before T'_1, so c > 0."""
    t0 = Transaction.from_text("T0", "(LX x) (I x) (UX x)")
    t1 = Transaction.from_text("T1", "(LX x) (W x) (UX x) (LX y) (W y) (UX y)")
    t2 = Transaction.from_text("T2", "(LX x) (W x) (UX x) (LX y) (W y) (UX y)")
    return [t0, t1, t2], StructuralState.of("y")


def test_fig1a_static_shape_path_plus_back_edge():
    banner("Fig. 1a — static-style canonical schedule: simple path")
    witness = find_canonical_witness(_static_style_pair(), AB)
    assert witness is not None
    graph = witness.graph()
    print(witness.describe())
    print(render_conflict_graph(graph))
    # The static shape: T_c first, a single source and a single sink, and
    # the path T_c -> ... -> sink to be closed by the (L A*) back edge.
    assert witness.c_index == 0
    assert len(graph.sources()) == 1
    assert len(graph.sinks()) == 1
    assert witness.tc.name in graph.sources()


def test_fig1b_dynamic_shape_tc_forced_inward():
    banner("Fig. 1b — dynamic canonical schedule: T_c cannot be first")
    txns, initial = _dynamic_forced_system()
    witness = find_canonical_witness(txns, initial)
    assert witness is not None
    print(witness.describe())
    print(render_conflict_graph(witness.graph()))
    # The dynamic difference the paper highlights: "the properness of the
    # schedule involving transactions T_c ... may depend on the entities
    # inserted by transactions T_1 ... T_{c-1}".
    assert witness.c_index > 0, "properness forces an inserter ahead of T_c"
    print(f"\nT_c = {witness.tc.name} at position {witness.c_index} "
          f"(paper: T_c 'is not necessarily the first transaction')")


def test_fig1b_fig2_witness_spans_three_transactions():
    banner("Fig. 1b (companion) — the Fig. 2 witness needs all three prefixes")
    witness = find_canonical_witness(fig2_system())
    assert witness is not None
    print(witness.describe())
    assert len(witness.transactions) == 3


def test_bench_fig1_witness_search(benchmark):
    """Kernel: canonical-witness search on the static-style pair."""
    pair = _static_style_pair()
    result = benchmark(lambda: find_canonical_witness(pair, AB))
    assert result is not None
