"""Deadlock-storm stress benchmark — the always-fresh waits-for graph.

The paper's D-policies trade deadlock-freedom for concurrency (DDAG and
altruistic runs resolve contention through waits-for cycle detection, not
avoidance), so deadlock-heavy workloads are exactly where the reproduction
must scale.  Before this bench's subject change, the event engine fell back
to re-classifying *every* live session on each no-runnable tick — a
safety-net rescan that made the deadlock path O(live), the last
super-linear tick cost in the engine.  The waits-for graph is now
maintained always fresh (reverse blocker→waiters index, eager inbound-edge
pruning at departure, edge refresh across grantability-filtered releases),
so cycle detection runs directly on it.

This bench runs deadlock-storm workloads (unordered access sets over a
small hot set, staggered arrivals) through **both** engines and asserts:

* exact equivalence — identical schedules, metric summaries, deadlock
  victim sequences, and per-transaction records on the same seed;
* the win — ``classify_checks`` drop ≥ 5× versus the naive rescan at
  1,000+ transactions (the acceptance bar of the always-fresh graph work);
* the incremental-detector win — the event engine's certificate/cached-walk
  cycle detection (:class:`repro.sim.WaitsForGraph`) visits measurably
  fewer graph nodes per detection than the naive engine's from-scratch
  DFS, over the *same* detection count and with bit-identical victim
  sequences (``cycle_visits`` / ``cycle_detections`` work counters).

``BENCH_SMOKE_SCALE`` (a float in ``(0, 1]``, default 1) shrinks the
transaction counts for CI smoke runs; below full scale the ratio assertion
relaxes (the saving grows with the live population, which grows with the
workload).  Results are written to ``BENCH_deadlock_stress.json`` (the
unified artifact schema — see benchmarks/README.md) so CI can upload them.

Workloads are built through the registered grid factories
(:data:`repro.sim.GRID_FACTORIES`) — the same by-name specs the parallel
grid runner pickles — so this bench and the grid harness exercise one
construction path.
"""

import os
import time
from pathlib import Path

from conftest import banner

from repro.policies import AltruisticPolicy, TwoPhasePolicy
from repro.sim import Simulator, format_table, grid_factory, write_bench_artifact

SCALE = float(os.environ.get("BENCH_SMOKE_SCALE", "1"))
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_deadlock_stress.json"


def _scaled(n: int) -> int:
    return max(50, int(n * SCALE))


def _run_cell(name, policy_factory, build):
    """Run one storm under both engines; assert equivalence; return the
    per-engine work numbers.  ``build()`` constructs ``(items, initial,
    context_kwargs)`` fresh per engine so nothing is shared between runs."""
    results = {}
    rows = []
    num_txns = 0
    for engine in ("naive", "event"):
        items, initial, _ = build()
        num_txns = len(items)
        sim = Simulator(
            policy_factory(), seed=0, engine=engine, max_ticks=2_000_000
        )
        start = time.perf_counter()
        result = sim.run(items, initial, validate=False)
        wall = time.perf_counter() - start
        results[engine] = (result, wall)
        m = result.metrics
        rows.append({
            "workload": name,
            "engine": engine,
            "txns": len(items),
            "ticks": m.ticks,
            "deadlocks": m.deadlocks,
            "classify_checks": m.classify_checks,
            "cycle_visits": m.cycle_visits,
            "wall_s": round(wall, 3),
        })
    print(format_table(
        rows,
        ["workload", "engine", "txns", "ticks", "deadlocks",
         "classify_checks", "cycle_visits", "wall_s"],
    ))

    naive, event = results["naive"][0], results["event"][0]
    assert naive.schedule.events == event.schedule.events, (
        f"{name}: engines must produce identical schedules"
    )
    assert naive.metrics.summary() == event.metrics.summary(), (
        f"{name}: metric summaries diverge"
    )
    assert naive.metrics.deadlock_victims == event.metrics.deadlock_victims, (
        f"{name}: deadlock victim sequences diverge"
    )
    for txn, rn in naive.metrics.records.items():
        re_ = event.metrics.records[txn]
        assert (
            rn.start_tick, rn.end_tick, rn.committed, rn.restarts,
            rn.steps_executed, rn.blocked_ticks,
        ) == (
            re_.start_tick, re_.end_tick, re_.committed, re_.restarts,
            re_.steps_executed, re_.blocked_ticks,
        ), f"{name}: per-transaction record for {txn} diverges"

    # A storm that does not storm proves nothing.
    assert naive.metrics.deadlocks > 0, f"{name}: expected waits-for cycles"

    checks = {e: r.metrics.classify_checks for e, (r, _) in results.items()}
    ratio = checks["naive"] / max(1, checks["event"])
    floor = 5.0 if num_txns >= 1000 else 2.0
    assert ratio >= floor, (
        f"{name}: expected >= {floor}x fewer classify checks at "
        f"{num_txns} txns, got {ratio:.1f}x"
    )

    # Incremental cycle detection: same number of detections (the engines
    # agree tick for tick), never more node visits, and measurably fewer
    # on the storm — the cached walk skips the untouched chain prefix the
    # from-scratch DFS re-walks on every no-runnable tick.
    nm, em = naive.metrics, event.metrics
    assert nm.cycle_detections == em.cycle_detections, (
        f"{name}: detection counts diverge"
    )
    assert em.cycle_visits <= nm.cycle_visits, (
        f"{name}: incremental detection visited more nodes "
        f"({em.cycle_visits} vs {nm.cycle_visits})"
    )
    visit_ratio = nm.cycle_visits / max(1, em.cycle_visits)
    if nm.cycle_detections >= 50:
        assert visit_ratio >= 1.1, (
            f"{name}: expected measurably fewer graph-node visits per "
            f"detection, got {visit_ratio:.2f}x over "
            f"{nm.cycle_detections} detections"
        )
    detections = max(1, nm.cycle_detections)
    return {
        "workload": name,
        "txns": num_txns,
        "ticks": naive.metrics.ticks,
        "deadlocks": naive.metrics.deadlocks,
        "committed": naive.metrics.committed,
        "naive_checks": checks["naive"],
        "event_checks": checks["event"],
        "ratio": round(ratio, 2),
        "cycle_detections": nm.cycle_detections,
        "naive_cycle_visits": nm.cycle_visits,
        "event_cycle_visits": em.cycle_visits,
        "naive_visits_per_detection": round(nm.cycle_visits / detections, 2),
        "event_visits_per_detection": round(em.cycle_visits / detections, 2),
        "cycle_visit_ratio": round(visit_ratio, 2),
        "naive_wall_s": round(results["naive"][1], 3),
        "event_wall_s": round(results["event"][1], 3),
    }


def test_deadlock_storm_stress():
    banner(
        "[scheduler] always-fresh waits-for graph: deadlock storms at "
        f"{_scaled(1200)}/{_scaled(150)} txns (scale={SCALE:g})"
    )
    cells = []
    suite_start = time.perf_counter()

    # 2PL storm: unordered two-access transactions, half the traffic on an
    # 8-entity hot set, arrivals just above service capacity.  Most ticks
    # find every live session blocked, so the deadlock path dominates —
    # each such tick used to re-classify the whole (growing) backlog.
    cells.append(_run_cell(
        "2pl-deadlock-storm",
        TwoPhasePolicy,
        lambda: grid_factory("deadlock_storm")(
            0, num_entities=600, num_txns=_scaled(1200), accesses_per_txn=2,
            arrival_rate=0.4, hot_set_size=8, hot_traffic=0.5,
        ),
    ))

    # Altruistic storm: the same shape through a dynamic
    # (dependency-declaring) policy, so policy-wait edges and lock-wait
    # edges mix in the cycles being detected.  The entity space scales
    # with the transaction count to keep the contention density — and the
    # storm — intact at smoke scale (the naive engine's O(live·donors)
    # admission work is why this cell stays smaller than the 2PL one).
    n = _scaled(150)
    cells.append(_run_cell(
        "altruistic-deadlock-storm",
        AltruisticPolicy,
        lambda: grid_factory("deadlock_storm")(
            0, num_entities=n, num_txns=n, accesses_per_txn=2,
            arrival_rate=0.15, hot_set_size=8, hot_traffic=0.45,
        ),
    ))

    write_bench_artifact(
        RESULTS_PATH, "deadlock_stress", cells, scale=SCALE,
        wall_s=time.perf_counter() - suite_start,
    )
    print(format_table(
        cells,
        ["workload", "txns", "ticks", "deadlocks", "naive_checks",
         "event_checks", "ratio", "naive_visits_per_detection",
         "event_visits_per_detection", "cycle_visit_ratio"],
    ))
    print(f"\nshape: no-runnable ticks no longer rescan the live set, and "
          f"detections re-walk only the touched suffix of the waits-for "
          f"chain; results in {RESULTS_PATH.name}")


def test_bench_deadlock_kernel(benchmark):
    """Kernel: one 200-transaction 2PL deadlock storm, event engine."""
    items, initial, _ = grid_factory("deadlock_storm")(
        0, num_entities=100, num_txns=200, accesses_per_txn=2,
        arrival_rate=0.4, hot_set_size=6, hot_traffic=0.5,
    )

    def run():
        return Simulator(TwoPhasePolicy(), seed=0, max_ticks=500_000).run(
            items, initial, validate=False
        )

    result = benchmark(run)
    # Storm victims may exhaust their restart budget and drop; everything
    # else must commit, and cycles must actually have formed.
    assert result.metrics.committed + len(result.aborted) == 200
    assert result.metrics.deadlocks > 0
