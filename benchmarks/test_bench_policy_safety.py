"""Theorems 2, 3, 4 — the three policies are safe; broken variants are not.

Paper: the DDAG policy (Thm 2), altruistic locking (Thm 3), and the dynamic
tree policy (Thm 4) are safe — every legal and proper schedule they admit is
serializable.

Measured: the dynamic verifier finds zero nonserializable schedules for the
real policies across seeded workloads (with the rule auditors also clean),
while the negative controls (L5 removed, AL2 removed, free-for-all locking)
are flagged unsafe, with canonical witnesses extracted for the
counterexamples via Theorem 1's Only-If construction.
"""

from conftest import banner

from repro.core import StructuralState
from repro.graphs import random_rooted_dag
from repro.policies import (
    Access,
    AltruisticPolicy,
    BrokenAltruisticPolicy,
    BrokenDdagPolicy,
    DdagPolicy,
    DtrPolicy,
    FreeForAllPolicy,
    TwoPhasePolicy,
    Unlock,
    check_altruistic_schedule,
    check_ddag_schedule,
)
from repro.sim import (
    WorkloadItem,
    dag_structural_state,
    dynamic_traversal_workload,
    long_transaction_workload,
    random_access_workload,
    traversal_workload,
)
from repro.verify import verify_policy

SEEDS = range(12)


def _ddag_factory(seed):
    dag = random_rooted_dag(8, 0.3, seed=seed)
    return dynamic_traversal_workload(dag, 4, 3, 0.5, seed=seed)


def _ddag_ctx(seed):
    return {"dag": random_rooted_dag(8, 0.3, seed=seed).snapshot()}


def test_theorem2_ddag_safe():
    banner("Theorem 2 — DDAG policy: dynamic traversal workloads")
    report = verify_policy(
        DdagPolicy(), _ddag_factory, SEEDS, context_kwargs_factory=_ddag_ctx
    )
    print(report.summary())
    assert report.ok


def test_theorem3_altruistic_safe():
    banner("Theorem 3 — altruistic locking: long-transaction workloads")
    report = verify_policy(
        AltruisticPolicy(),
        lambda seed: long_transaction_workload(8, 3, seed=seed),
        SEEDS,
        auditors=[lambda r: check_altruistic_schedule(r.schedule)],
    )
    print(report.summary())
    assert report.ok


def test_theorem4_dtr_safe():
    banner("Theorem 4 — dynamic tree policy: random access-set workloads")
    report = verify_policy(
        DtrPolicy(),
        lambda seed: random_access_workload(6, 5, 3, seed=seed),
        SEEDS,
    )
    print(report.summary())
    assert report.ok


def test_controls_flagged_unsafe():
    banner("Negative controls — broken variants must fail verification")

    def race(seed):
        items = [
            WorkloadItem("T1", [Access("a"), Access("b")]),
            WorkloadItem("T2", [Access("b"), Access("a")]),
        ]
        return items, StructuralState.of("a", "b")

    def al_race(seed):
        items = [
            WorkloadItem("LONG", [Access("a"), Access("b"), Access("c")]),
            WorkloadItem("S", [Access("c"), Access("a")]),
        ]
        return items, StructuralState.of("a", "b", "c")

    from repro.graphs import chain

    def ddag_race(seed):
        items = [
            WorkloadItem("T1", [Access(2), Unlock(2), Access(3)]),
            WorkloadItem("T2", [Access(3), Unlock(3), Access(2)]),
        ]
        return items, dag_structural_state(chain(3))

    controls = [
        ("FreeForAll", FreeForAllPolicy(), race, None),
        ("Altruistic-noAL2", BrokenAltruisticPolicy(), al_race, None),
        (
            "DDAG-noL5",
            BrokenDdagPolicy(auto_release=False),
            ddag_race,
            lambda seed: {"dag": chain(3)},
        ),
    ]
    for name, policy, factory, ctx in controls:
        report = verify_policy(
            policy, factory, range(80), context_kwargs_factory=ctx
        )
        status = "UNSAFE (counterexample found)" if not report.ok else "not flagged!"
        has_witness = report.witness is not None and report.counterexample is not None
        print(f"  {name:<18} -> {status}; canonical witness: {has_witness}")
        assert not report.ok
        assert report.counterexample is not None


def test_bench_policy_verification(benchmark):
    """Kernel: one DDAG verification run (simulate + validate)."""
    benchmark(
        lambda: verify_policy(
            DdagPolicy(), _ddag_factory, range(2), context_kwargs_factory=_ddag_ctx
        )
    )
