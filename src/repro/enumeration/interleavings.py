"""Exhaustive and randomised enumeration of schedules.

The brute-force side of the Theorem-1 validation needs to walk the space of
legal & proper interleavings; the search-space benchmark needs to *count*
that space to quantify how much smaller the canonical-schedule set is.  Both
live here, together with a random-schedule sampler used by property tests.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.operations import LockMode
from ..core.schedules import Event, Schedule
from ..core.states import StructuralState
from ..core.steps import Entity
from ..core.transactions import Transaction
from ..exceptions import SearchBudgetExceeded


def _admissible_next(
    transactions: Dict[str, Transaction],
    progress: Dict[str, int],
    holders: Dict[Entity, Dict[str, LockMode]],
    state: StructuralState,
    legal_only: bool,
    proper_only: bool,
) -> List[Event]:
    """The events that may execute next under the requested filters."""
    out: List[Event] = []
    for name in sorted(transactions):
        idx = progress[name]
        steps = transactions[name].steps
        if idx >= len(steps):
            continue
        step = steps[idx]
        if proper_only and not state.defines(step):
            continue
        mode = step.lock_mode
        if legal_only and step.is_lock and mode is not None:
            blocked = any(
                other != name and mode.conflicts_with(other_mode)
                for other, other_mode in holders.get(step.entity, {}).items()
            )
            if blocked:
                continue
        out.append(Event(name, idx, step))
    return out


def _apply(
    event: Event,
    holders: Dict[Entity, Dict[str, LockMode]],
    state: StructuralState,
) -> Tuple[Optional[LockMode], StructuralState]:
    """Apply an event; returns (previous lock mode, previous state) for undo."""
    step = event.step
    prior = holders.get(step.entity, {}).get(event.txn)
    mode = step.lock_mode
    if step.is_lock and mode is not None:
        current = holders.setdefault(step.entity, {})
        current[event.txn] = (
            LockMode.EXCLUSIVE if prior is LockMode.EXCLUSIVE else mode
        )
    elif step.is_unlock and mode is not None:
        current = holders.get(step.entity, {})
        if current.get(event.txn) is mode:
            del current[event.txn]
    new_state = state
    if state.defines(step):
        new_state = state.apply(step)
    return prior, new_state


def _undo(
    event: Event,
    prior: Optional[LockMode],
    holders: Dict[Entity, Dict[str, LockMode]],
) -> None:
    step = event.step
    if (step.is_lock or step.is_unlock) and step.lock_mode is not None:
        current = holders.setdefault(step.entity, {})
        if prior is None:
            current.pop(event.txn, None)
        else:
            current[event.txn] = prior


def enumerate_schedules(
    transactions: Sequence[Transaction],
    initial: StructuralState = StructuralState.empty(),
    legal_only: bool = True,
    proper_only: bool = True,
    complete_only: bool = True,
    limit: Optional[int] = None,
) -> Iterator[Schedule]:
    """Yield schedules of the (whole) transaction system, depth first.

    With ``complete_only`` only complete schedules are yielded; otherwise
    every admissible prefix is yielded as well.  ``limit`` caps the number
    of *yielded* schedules.
    """
    by_name = {t.name: t for t in transactions}
    progress = {n: 0 for n in by_name}
    holders: Dict[Entity, Dict[str, LockMode]] = {}
    total = sum(len(t.steps) for t in transactions)
    events: List[Event] = []
    yielded = 0

    def build() -> Schedule:
        return Schedule(by_name.values(), tuple(events))

    def dfs(state: StructuralState) -> Iterator[Schedule]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if len(events) == total:
            yielded += 1
            yield build()
            return
        if not complete_only and events:
            yielded += 1
            yield build()
            if limit is not None and yielded >= limit:
                return
        for event in _admissible_next(
            by_name, progress, holders, state, legal_only, proper_only
        ):
            prior, new_state = _apply(event, holders, state)
            progress[event.txn] += 1
            events.append(event)
            yield from dfs(new_state)
            events.pop()
            progress[event.txn] -= 1
            _undo(event, prior, holders)

    yield from dfs(initial)


def count_schedules(
    transactions: Sequence[Transaction],
    initial: StructuralState = StructuralState.empty(),
    legal_only: bool = True,
    proper_only: bool = True,
    budget: int = 10_000_000,
) -> int:
    """Count the complete schedules matching the filters.

    Walking the full tree (no yields, so far cheaper than materialising the
    schedules); raises :class:`SearchBudgetExceeded` past ``budget`` visited
    nodes.  Used by the search-space benchmark to report how large the space
    Theorem 1 lets a prover skip really is.
    """
    by_name = {t.name: t for t in transactions}
    progress = {n: 0 for n in by_name}
    holders: Dict[Entity, Dict[str, LockMode]] = {}
    total = sum(len(t.steps) for t in transactions)
    visited = 0

    def dfs(state: StructuralState, depth: int) -> int:
        nonlocal visited
        visited += 1
        if visited > budget:
            raise SearchBudgetExceeded(budget)
        if depth == total:
            return 1
        count = 0
        for event in _admissible_next(
            by_name, progress, holders, state, legal_only, proper_only
        ):
            prior, new_state = _apply(event, holders, state)
            progress[event.txn] += 1
            count += dfs(new_state, depth + 1)
            progress[event.txn] -= 1
            _undo(event, prior, holders)
        return count

    return dfs(initial, 0)


def random_schedule(
    transactions: Sequence[Transaction],
    initial: StructuralState = StructuralState.empty(),
    seed: int | random.Random = 0,
    max_attempts: int = 50,
) -> Optional[Schedule]:
    """Sample a complete legal & proper schedule uniformly-ish by random
    greedy descent with restarts; ``None`` if every attempt dead-ends."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    by_name = {t.name: t for t in transactions}
    total = sum(len(t.steps) for t in transactions)
    for _ in range(max_attempts):
        progress = {n: 0 for n in by_name}
        holders: Dict[Entity, Dict[str, LockMode]] = {}
        state = initial
        events: List[Event] = []
        while len(events) < total:
            options = _admissible_next(by_name, progress, holders, state, True, True)
            if not options:
                break
            event = rng.choice(options)
            _, state = _apply(event, holders, state)
            progress[event.txn] += 1
            events.append(event)
        if len(events) == total:
            return Schedule(by_name.values(), tuple(events))
    return None
