"""Schedule-space enumeration and random transaction-system generators."""

from .interleavings import count_schedules, enumerate_schedules, random_schedule
from .systems import (
    corpus_initial_state,
    fig2_proper_schedule,
    fig2_system,
    lock_wrap,
    random_data_steps,
    random_locked_system,
)

__all__ = [
    "corpus_initial_state",
    "count_schedules",
    "enumerate_schedules",
    "fig2_proper_schedule",
    "fig2_system",
    "lock_wrap",
    "random_data_steps",
    "random_locked_system",
    "random_schedule",
]
