"""Random transaction-system generators for the Theorem-1 validation corpus.

The empirical proof check of Theorem 1 compares the brute-force and the
canonical-schedule safety deciders over many small systems.  The corpus must
contain *both* safe and unsafe systems, and must exercise the dynamic
features (INSERT/DELETE, properness constraints) that distinguish the
paper's theorem from Yannakakis' static version.  Three locking styles give
the spread:

* ``"2pl"`` — strict two-phase wrapping: always safe (Condition 1 of the
  theorem can never fire); these systems check the decider's *negative*
  path.
* ``"early"`` — each entity unlocked immediately after its last use: the
  classic non-two-phase shape; unsafe whenever interleavings can cycle.
* ``"chaotic"`` — unlock points drawn at random after last use: a mixture.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.operations import LockMode, Operation
from ..core.steps import Entity, Step
from ..core.transactions import Transaction

#: The data operations a random transaction may draw, with weights chosen so
#: structural operations are common enough to exercise properness.
_OP_WEIGHTS = (
    (Operation.READ, 3),
    (Operation.WRITE, 3),
    (Operation.INSERT, 2),
    (Operation.DELETE, 2),
)


def random_data_steps(
    entities: Sequence[Entity],
    length: int,
    rng: random.Random,
) -> List[Step]:
    """A random sequence of data steps over the entity pool.

    No attempt is made to make the sequence executable in isolation — in a
    dynamic database a transaction may well be proper *only* in cooperation
    with others (that is the point of Fig. 2) — but trivial no-ops like
    inserting an entity twice in a row are avoided to keep the corpus
    interesting.
    """
    ops = [op for op, w in _OP_WEIGHTS for _ in range(w)]
    steps: List[Step] = []
    last_op: dict = {}
    for _ in range(length):
        for _attempt in range(10):
            op = rng.choice(ops)
            entity = rng.choice(list(entities))
            if last_op.get(entity) == op and op.is_structural:
                continue
            steps.append(Step(op, entity))
            last_op[entity] = op
            break
    return steps


def lock_wrap(
    name: str,
    data_steps: Sequence[Step],
    style: str,
    rng: random.Random,
    use_shared: bool = False,
) -> Transaction:
    """Wrap data steps in locks according to the given style.

    The result is well formed (I/D/W under exclusive locks, R under shared
    or exclusive) and locks each entity at most once.
    """
    data_steps = list(data_steps)
    first_use: dict = {}
    last_use: dict = {}
    needs_x: set = set()
    for i, s in enumerate(data_steps):
        first_use.setdefault(s.entity, i)
        last_use[s.entity] = i
        if s.op is not Operation.READ:
            needs_x.add(s.entity)

    def mode_for(entity: Entity) -> LockMode:
        if entity in needs_x or not use_shared:
            return LockMode.EXCLUSIVE
        return LockMode.SHARED

    if style == "2pl":
        ordered = sorted(first_use, key=first_use.get)  # type: ignore[arg-type]
        steps: List[Step] = [Step(mode_for(e).lock_op, e) for e in ordered]
        steps.extend(data_steps)
        steps.extend(Step(mode_for(e).unlock_op, e) for e in ordered)
        return Transaction(name, tuple(steps))

    # Non-two-phase styles: insert lock before first use, unlock at (early)
    # the step after last use or (chaotic) a random later position.
    n = len(data_steps)
    unlock_at: dict = {}
    for e, last in last_use.items():
        if style == "early":
            unlock_at[e] = last + 1
        elif style == "chaotic":
            unlock_at[e] = rng.randint(last + 1, n)
        else:
            raise ValueError(f"unknown locking style {style!r}")
    steps = []
    for i, s in enumerate(data_steps):
        for e, pos in unlock_at.items():
            if pos == i:
                steps.append(Step(mode_for(e).unlock_op, e))
        if first_use[s.entity] == i:
            steps.append(Step(mode_for(s.entity).lock_op, s.entity))
        steps.append(s)
    for e, pos in sorted(unlock_at.items(), key=lambda kv: repr(kv)):
        if pos >= n:
            steps.append(Step(mode_for(e).unlock_op, e))
    return Transaction(name, tuple(steps))


def corpus_initial_state(num_entities: int):
    """The structural state the random corpus runs from: every entity of the
    pool present (R/W/D defined immediately; I defined after a D)."""
    from ..core.states import StructuralState

    return StructuralState(frozenset(chr(ord("a") + i) for i in range(num_entities)))


def random_locked_system(
    num_txns: int = 2,
    num_entities: int = 3,
    steps_per_txn: int = 3,
    style: str = "chaotic",
    seed: int | random.Random = 0,
    use_shared: bool = False,
) -> List[Transaction]:
    """A random locked transaction system for the decider-equivalence corpus.

    ``style`` may also be ``"mixed"``: each transaction draws its own style
    uniformly from {2pl, early, chaotic}.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    entities = [chr(ord("a") + i) for i in range(num_entities)]
    txns: List[Transaction] = []
    for i in range(num_txns):
        data = random_data_steps(entities, steps_per_txn, rng)
        s = style
        if style == "mixed":
            s = rng.choice(["2pl", "early", "chaotic"])
        txns.append(lock_wrap(f"T{i + 1}", data, s, rng, use_shared))
    return txns


def fig2_system() -> List[Transaction]:
    """A three-transaction system with the structure of the paper's Fig. 2.

    The figure itself is not printed in the text, so this is a semantic
    reconstruction with the three properties the paper states:

    * the interaction graph has a *pair* of (conflict) edges between every
      two transactions, so the only chordless cycles are 2-node ones;
    * no schedule involving only two of the three transactions is proper
      (each transaction writes entities only a third one inserts);
    * a proper, legal, **nonserializable** schedule of all three exists.

    Each ``T_i`` inserts two fresh entities and then writes the two entities
    inserted by ``T_{i-1}`` (cyclically), locking each entity just around
    its step (non-two-phase).
    """
    def ring(name: str, ins: Tuple[str, str], wr: Tuple[str, str]) -> Transaction:
        text = " ".join(
            [f"(LX {ins[0]}) (I {ins[0]}) (UX {ins[0]})",
             f"(LX {ins[1]}) (I {ins[1]}) (UX {ins[1]})",
             f"(LX {wr[0]}) (W {wr[0]}) (UX {wr[0]})",
             f"(LX {wr[1]}) (W {wr[1]}) (UX {wr[1]})"]
        )
        return Transaction.from_text(name, text)

    return [
        ring("T1", ("a", "a2"), ("c", "c2")),
        ring("T2", ("b", "b2"), ("a", "a2")),
        ring("T3", ("c", "c2"), ("b", "b2")),
    ]


def fig2_proper_schedule():
    """The schedule ``S_p`` of Fig. 2: all inserts first (serially), then the
    cyclic writes — proper, legal, and nonserializable."""
    from ..core.schedules import Schedule

    txns = fig2_system()
    order = (
        ["T1"] * 6 + ["T2"] * 6 + ["T3"] * 6  # the two insert blocks each
        + ["T1"] * 6 + ["T2"] * 6 + ["T3"] * 6  # the two write blocks each
    )
    return Schedule.from_order(txns, order)
