"""The transport-agnostic lock-manager kernel: a tick-free request API.

The paper's policies decide *admission* of lock requests against a
dynamic database — a decision procedure that PR 9 unfuses from the tick
simulator.  :class:`LockKernel` exposes the decision procedure as five
requests::

    begin(txn)                   -> GRANTED | DENIED | ERROR
    acquire(txn, entity, mode)   -> GRANTED | BLOCKED | DENIED | VICTIM | ERROR
    release(txn, entity)         -> GRANTED | ERROR
    commit(txn)                  -> GRANTED | ERROR
    abort(txn)                   -> GRANTED | ERROR

built from the same state layers the simulator runs on — the sharded
:class:`~repro.sim.lock_table.LockTable` for holder maps and wait
queues, the :mod:`~repro.sim.deadlock` oracle (``find_cycle`` +
``pick_victim``) for resolution — with **no tick, no RNG, and no
transport**: time is whenever a caller invokes a request, and transports
(the asyncio JSON-line service, an in-process test harness, a future
multi-node RPC layer) live entirely above this API.

**Blocking without ticks.**  An acquire that conflicts returns
``BLOCKED`` immediately; the request parks in the entity's wait queue
and the caller's registered *wake-up callback* fires exactly once with
the final outcome — ``GRANTED`` when a release makes the request
grantable (grants happen in arrival order, re-checked against the
then-current holders), ``VICTIM`` when deadlock resolution sacrifices
the transaction, or ``ERROR`` when the kernel drains or the client
aborts its own blocked transaction.

**Deadlock resolution.**  Every transition into ``BLOCKED`` re-derives
the waits-for edges of all blocked transactions from the lock table and
runs the from-scratch oracle.  A fresh block is the only event that can
close a cycle, and every new cycle passes through the new waiter, so
resolution loops victim-by-victim (the simulator's deterministic cost
triple: structural effects, executed work, name) until the graph is
acyclic again.

**Auditing.**  Every request — including every refusal — appends exactly
one entry to the :class:`~repro.kernel.audit.AuditLog` before returning,
and asynchronous resolutions (wake-up grants, victim aborts) append
their own entries; there is no audit-free path (the
boundary-enforcement-integrity contract).  ``DENIED`` and ``ERROR``
guarantee **no state mutation**: the admission hook runs before any
table write, and misuse checks only read.

**Policy seam.**  ``admission_hook`` is evaluated inline on every
mutating request *before* side effects; returning a reason string denies
the request.  The service front-end (:mod:`repro.service`) layers actor
authorization on this seam; the paper's policy sessions can drive it
with a :class:`~repro.policies.base.PolicySession` admission verdict.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.operations import LockMode
from ..core.steps import Entity
from ..sim.deadlock import find_cycle, pick_victim
from ..sim.lock_table import LockTable
from .audit import AuditLog
from .outcomes import KernelResponse, Outcome

#: Wake-up callback: fires once with the blocked request's final outcome.
WakeCallback = Callable[[str, KernelResponse], None]

#: Inline admission hook: ``(op, txn, entity, mode) -> None | reason``.
#: A non-None return denies the request before any state change.
AdmissionHook = Callable[
    [str, str, Optional[Entity], Optional[LockMode]], Optional[str]
]


class _NullSession:
    """Victim-costing stand-in for transactions begun without a policy
    session (service clients): no structural effects, ever."""

    has_structural_effects = False


_NULL_SESSION = _NullSession()

# Transaction states.
_ACTIVE = "active"
_BLOCKED = "blocked"


class _Txn:
    """One live transaction's kernel-side record.  Exposes the
    ``session``/``step_count`` surface :func:`repro.sim.deadlock.victim_cost`
    reads, so the service shares the simulator's deterministic victim
    tie-break."""

    __slots__ = ("name", "session", "state", "step_count", "pending")

    def __init__(self, name: str, session=None) -> None:
        self.name = name
        self.session = session if session is not None else _NULL_SESSION
        self.state = _ACTIVE
        #: Requests executed (grants + releases) — the victim-cost proxy
        #: for "work lost on abort".
        self.step_count = 0
        #: The parked acquire while blocked:
        #: (entity, mode, wake-callback or None).
        self.pending: Optional[
            Tuple[Entity, LockMode, Optional[WakeCallback]]
        ] = None


class LockKernel:
    """The tick-free lock-manager kernel (see the module docstring)."""

    def __init__(
        self,
        *,
        lock_shards: int = 1,
        audit: Optional[AuditLog] = None,
        admission_hook: Optional[AdmissionHook] = None,
        max_live: int = 0,
    ) -> None:
        self.table = LockTable(shards=lock_shards)
        self.audit = audit if audit is not None else AuditLog()
        self.admission_hook = admission_hook
        #: Admission control: refuse ``begin`` beyond this many live
        #: transactions (0 = unbounded); the service's global backstop
        #: behind the per-client in-flight caps.
        self.max_live = max_live
        self._txns: Dict[str, _Txn] = {}
        self._finished: Set[str] = set()
        self._draining = False
        #: Victim aborts performed by deadlock resolution (stats surface).
        self.victims: List[str] = []

    # ------------------------------------------------------------------
    # Introspection (read-only)
    # ------------------------------------------------------------------

    def live_txns(self) -> Tuple[str, ...]:
        return tuple(sorted(self._txns))

    def blocked_txns(self) -> Tuple[str, ...]:
        return tuple(
            sorted(t.name for t in self._txns.values() if t.state == _BLOCKED)
        )

    def held(self, txn: str) -> Dict[Entity, LockMode]:
        """Locks held by ``txn`` (the *holder-only* view the service's
        visibility policy serves — a client never sees another holder's
        state through this)."""
        return self.table.held_by(txn)

    def state_fingerprint(self) -> Tuple:
        """A hashable digest of all observable kernel state — holder
        maps, wait queues, live/blocked sets — used by the misuse tests
        to assert that ``DENIED``/``ERROR`` requests mutated nothing."""
        locked = sorted(self.table.locked_entities(), key=repr)
        holders = tuple(
            (repr(e), tuple(sorted(self.table.holders(e).items(),
                                   key=lambda kv: kv[0])))
            for e in locked
        )
        waiters = tuple(
            (repr(e), tuple(self.table.waiter_modes(e))) for e in locked
        )
        return (holders, waiters, self.live_txns(), self.blocked_txns())

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _audited(
        self,
        op: str,
        response: KernelResponse,
        *,
        actor: Optional[str] = None,
        txn: Optional[str] = None,
        entity: Optional[Entity] = None,
    ) -> KernelResponse:
        """Record the decision and return it — the single exit path of
        every request, so no outcome can skip the audit trail."""
        self.audit.append(
            op,
            actor if actor is not None else (txn or "<kernel>"),
            response.outcome.value,
            txn=txn,
            entity=entity,
            reason=response.reason,
        )
        return response

    def _deny(self, op: str, txn: str, entity: Optional[Entity],
              mode: Optional[LockMode]) -> Optional[str]:
        """Evaluate the inline admission hook (None = admitted)."""
        if self.admission_hook is None:
            return None
        return self.admission_hook(op, txn, entity, mode)

    def _misuse(
        self, op: str, txn: str, *, allow_blocked: bool = False
    ) -> Optional[KernelResponse]:
        """Shared protocol-misuse guard: unknown or finished transaction,
        or an operation issued while blocked.  Read-only."""
        record = self._txns.get(txn)
        if record is None:
            if txn in self._finished:
                return KernelResponse(
                    Outcome.ERROR, f"transaction {txn!r} already finished"
                )
            return KernelResponse(
                Outcome.ERROR, f"unknown transaction {txn!r}"
            )
        if record.state == _BLOCKED and not allow_blocked:
            return KernelResponse(
                Outcome.ERROR,
                f"transaction {txn!r} is blocked; only abort is allowed",
            )
        return None

    def _waits_for(self) -> Dict[str, Set[str]]:
        """Re-derive every blocked transaction's waits-for edges from the
        lock table (fresh by construction — the request-driven kernel has
        no tick on which to maintain them incrementally)."""
        graph: Dict[str, Set[str]] = {}
        for record in self._txns.values():
            if record.state != _BLOCKED or record.pending is None:
                continue
            entity, mode, _ = record.pending
            graph[record.name] = {
                b
                for b in self.table.blockers(record.name, entity, mode)
                if b in self._txns
            }
        return graph

    def _resolve_deadlocks(self) -> List[str]:
        """Abort victims until the waits-for graph is acyclic; returns the
        victims in resolution order."""
        victims: List[str] = []
        while True:
            cycle = find_cycle(self._waits_for())
            if cycle is None:
                return victims
            victim = pick_victim(cycle, self._txns)
            victims.append(victim)
            self.victims.append(victim)
            self._finish(
                victim,
                KernelResponse(Outcome.VICTIM, "deadlock victim"),
                audit_op="abort",
                audit_decision=Outcome.VICTIM,
            )

    def _finish(
        self,
        txn: str,
        pending_response: KernelResponse,
        *,
        audit_op: str,
        audit_decision: Outcome,
        reason: Optional[str] = None,
    ) -> None:
        """Tear a transaction down: cancel its parked request (firing the
        wake-up callback with ``pending_response``), release every lock,
        grant unblocked waiters, and audit the departure."""
        record = self._txns.pop(txn)
        self._finished.add(txn)
        if record.pending is not None:
            _, _, callback = record.pending
            record.pending = None
            if callback is not None:
                callback(txn, pending_response)
        _, woken = self.table.release_all_wake(txn)
        self.audit.append(
            audit_op,
            txn,
            audit_decision.value,
            txn=txn,
            reason=reason or pending_response.reason,
        )
        self._grant_woken(woken)

    def _grant_woken(self, woken: List[str]) -> None:
        """Grant now-grantable parked requests in wake-up (arrival)
        order, re-checking each against the holders the previous grant
        just installed; every grant fires the waiter's callback and is
        audited as its own ``grant`` event.  While draining, nothing is
        granted: a grant would immediately precede the grantee's own
        forced abort, so the parked request instead resolves with the
        terminal ``ERROR`` when its transaction drains."""
        if self._draining:
            return
        for waiter in woken:
            record = self._txns.get(waiter)
            if record is None or record.state != _BLOCKED or record.pending is None:
                continue
            entity, mode, callback = record.pending
            if not self.table.grantable(waiter, entity, mode):
                continue  # an earlier grant in this batch re-conflicted it
            self.table.remove_waiter(waiter)
            self.table.acquire(waiter, entity, mode)
            record.pending = None
            record.state = _ACTIVE
            record.step_count += 1
            self.audit.append(
                "grant", waiter, Outcome.GRANTED.value,
                txn=waiter, entity=entity,
            )
            if callback is not None:
                callback(waiter, KernelResponse(Outcome.GRANTED))

    # ------------------------------------------------------------------
    # The request API
    # ------------------------------------------------------------------

    def begin(
        self, txn, *, actor: Optional[str] = None
    ) -> KernelResponse:
        """Start a transaction.  ``txn`` is a name, or a policy session
        (anything with ``name`` and ``has_structural_effects``) the
        deadlock victim costing should consult."""
        session = None if isinstance(txn, str) else txn
        name = txn if isinstance(txn, str) else txn.name
        if self._draining:
            return self._audited(
                "begin",
                KernelResponse(Outcome.ERROR, "kernel is draining"),
                actor=actor, txn=name,
            )
        if name in self._txns:
            return self._audited(
                "begin",
                KernelResponse(
                    Outcome.ERROR, f"transaction {name!r} already exists"
                ),
                actor=actor, txn=name,
            )
        if name in self._finished:
            return self._audited(
                "begin",
                KernelResponse(
                    Outcome.ERROR, f"transaction {name!r} already finished"
                ),
                actor=actor, txn=name,
            )
        if self.max_live and len(self._txns) >= self.max_live:
            return self._audited(
                "begin",
                KernelResponse(
                    Outcome.ERROR,
                    f"admission control: {self.max_live} live transactions",
                ),
                actor=actor, txn=name,
            )
        denial = self._deny("begin", name, None, None)
        if denial is not None:
            return self._audited(
                "begin", KernelResponse(Outcome.DENIED, denial),
                actor=actor, txn=name,
            )
        self._txns[name] = _Txn(name, session)
        return self._audited(
            "begin", KernelResponse(Outcome.GRANTED), actor=actor, txn=name
        )

    def acquire(
        self,
        txn: str,
        entity: Entity,
        mode: LockMode = LockMode.EXCLUSIVE,
        *,
        on_wake: Optional[WakeCallback] = None,
        actor: Optional[str] = None,
    ) -> KernelResponse:
        """Request ``mode`` on ``entity``.  Same-mode re-acquisition is
        protocol misuse (``ERROR``); acquiring the *other* mode while one
        is held is the upgrade/extension path and goes through the normal
        conflict check (the mode multiset keeps both grants visible)."""
        misuse = self._misuse("acquire", txn)
        if misuse is not None:
            return self._audited(
                "acquire", misuse, actor=actor, txn=txn, entity=entity
            )
        if self._draining:
            return self._audited(
                "acquire",
                KernelResponse(Outcome.ERROR, "kernel is draining"),
                actor=actor, txn=txn, entity=entity,
            )
        if mode in self.table.modes_held(txn, entity):
            return self._audited(
                "acquire",
                KernelResponse(
                    Outcome.ERROR,
                    f"{txn!r} already holds {mode.name} on {entity!r}",
                ),
                actor=actor, txn=txn, entity=entity,
            )
        denial = self._deny("acquire", txn, entity, mode)
        if denial is not None:
            return self._audited(
                "acquire", KernelResponse(Outcome.DENIED, denial),
                actor=actor, txn=txn, entity=entity,
            )
        record = self._txns[txn]
        blockers = self.table.blockers(txn, entity, mode)
        if not blockers:
            self.table.acquire(txn, entity, mode)
            record.step_count += 1
            return self._audited(
                "acquire", KernelResponse(Outcome.GRANTED),
                actor=actor, txn=txn, entity=entity,
            )
        # Park the request and look for a cycle the new edge closed.
        self.table.add_waiter(txn, entity, mode)
        record.state = _BLOCKED
        record.pending = (entity, mode, on_wake)
        response = KernelResponse(
            Outcome.BLOCKED,
            "conflicting holders",
            blockers=tuple(sorted(blockers)),
        )
        audited = self._audited(
            "acquire", response, actor=actor, txn=txn, entity=entity
        )
        # A fresh block is the only event that can close a waits-for
        # cycle; resolve now.  Single-delivery contract: once parked, the
        # wake-up callback is the only channel for the final outcome —
        # if resolution sacrifices the requester (VICTIM) or a victim's
        # released locks grant it (GRANTED), the callback has already
        # fired, synchronously, before this BLOCKED response returns.
        self._resolve_deadlocks()
        return audited

    def release(
        self,
        txn: str,
        entity: Entity,
        *,
        actor: Optional[str] = None,
    ) -> KernelResponse:
        """Release every mode ``txn`` holds on ``entity``; unheld release
        is protocol misuse (``ERROR``, no state change)."""
        misuse = self._misuse("release", txn)
        if misuse is not None:
            return self._audited(
                "release", misuse, actor=actor, txn=txn, entity=entity
            )
        modes = self.table.modes_held(txn, entity)
        if not modes:
            return self._audited(
                "release",
                KernelResponse(
                    Outcome.ERROR,
                    f"{txn!r} holds no lock on {entity!r}",
                ),
                actor=actor, txn=txn, entity=entity,
            )
        denial = self._deny("release", txn, entity, None)
        if denial is not None:
            return self._audited(
                "release", KernelResponse(Outcome.DENIED, denial),
                actor=actor, txn=txn, entity=entity,
            )
        record = self._txns[txn]
        woken: List[str] = []
        seen: Set[str] = set()
        # SHARED before EXCLUSIVE: dropping the weaker half of an upgrade
        # first keeps the strongest-mode view monotone while we unwind.
        for mode in sorted(modes, key=lambda m: m is LockMode.EXCLUSIVE):
            for w in self.table.release(txn, entity, mode):
                if w not in seen:
                    seen.add(w)
                    woken.append(w)
        record.step_count += 1
        response = self._audited(
            "release", KernelResponse(Outcome.GRANTED),
            actor=actor, txn=txn, entity=entity,
        )
        self._grant_woken(woken)
        return response

    def commit(self, txn: str, *, actor: Optional[str] = None) -> KernelResponse:
        """Finish ``txn``, releasing everything it holds.  Committing
        while blocked is protocol misuse — the parked acquire must first
        resolve (or be abandoned via ``abort``)."""
        misuse = self._misuse("commit", txn)
        if misuse is not None:
            return self._audited("commit", misuse, actor=actor, txn=txn)
        denial = self._deny("commit", txn, None, None)
        if denial is not None:
            return self._audited(
                "commit", KernelResponse(Outcome.DENIED, denial),
                actor=actor, txn=txn,
            )
        self._finish(
            txn,
            KernelResponse(Outcome.ERROR, "transaction committed"),
            audit_op="commit",
            audit_decision=Outcome.GRANTED,
        )
        return KernelResponse(Outcome.GRANTED)

    def abort(self, txn: str, *, actor: Optional[str] = None) -> KernelResponse:
        """Abort ``txn`` (allowed while blocked: the parked acquire's
        callback fires with ``ERROR`` before the locks release)."""
        misuse = self._misuse("abort", txn, allow_blocked=True)
        if misuse is not None:
            return self._audited("abort", misuse, actor=actor, txn=txn)
        denial = self._deny("abort", txn, None, None)
        if denial is not None:
            return self._audited(
                "abort", KernelResponse(Outcome.DENIED, denial),
                actor=actor, txn=txn,
            )
        self._finish(
            txn,
            KernelResponse(Outcome.ERROR, "transaction aborted by client"),
            audit_op="abort",
            audit_decision=Outcome.GRANTED,
            reason="aborted by client",
        )
        return KernelResponse(Outcome.GRANTED)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def drain(self) -> Tuple[str, ...]:
        """Graceful shutdown: refuse new work, cancel every parked
        request (callbacks fire with ``ERROR``), abort every live
        transaction, and return the aborted names.  Idempotent."""
        self._draining = True
        drained = self.live_txns()
        for name in drained:
            if name in self._txns:  # a victim cascade may have removed it
                self._finish(
                    name,
                    KernelResponse(Outcome.ERROR, "kernel draining"),
                    audit_op="abort",
                    audit_decision=Outcome.GRANTED,
                    reason="kernel draining",
                )
        return drained
