"""The transport-agnostic lock-manager kernel.

This package is the home of the lock-management state machine the tick
simulator (``repro.sim``) and the asyncio service (``repro.service``)
both drive:

* :mod:`~repro.kernel.lifecycle` — :class:`KernelRun`, the composed
  state layers plus transaction lifecycle transitions (the kernel half
  of the old ``sim/scheduler._Run`` monolith; the simulator's ``_Run``
  is now a driver subclass);
* :mod:`~repro.kernel.core` — :class:`LockKernel`, the tick-free
  request API (``begin/acquire/release/commit/abort`` → explicit
  :class:`Outcome`, wake-up callbacks, inline admission, deadlock
  resolution by the simulator's deterministic victim rule);
* :mod:`~repro.kernel.outcomes` — the :class:`Outcome` enum and
  :class:`KernelResponse`;
* :mod:`~repro.kernel.audit` — the append-only :class:`AuditLog`.

The state layers themselves (lock table, waits-for graph, deadlock
oracle, admission cache, metrics) still live under ``repro.sim`` and are
re-exported here so front-ends above the kernel (``repro.service``)
import **only** this package — lint rule RPR003 enforces both directions
(kernel never imports the sim drivers; service imports nothing from sim).
"""

from ..core.operations import LockMode
from ..core.steps import Entity
from ..sim.admission import AdmissionCache, Classifier
from ..sim.deadlock import find_cycle, pick_victim, victim_cost
from ..sim.live import LiveEntry
from ..sim.lock_table import LockTable
from ..sim.metrics import Metrics, TxnRecord
from ..sim.waits_for import WaitsForGraph
from .audit import AuditEntry, AuditLog
from .core import AdmissionHook, LockKernel, WakeCallback
from .lifecycle import KernelRun
from .outcomes import KernelResponse, Outcome

__all__ = [
    "AdmissionCache",
    "AdmissionHook",
    "AuditEntry",
    "AuditLog",
    "Classifier",
    "Entity",
    "KernelResponse",
    "KernelRun",
    "LiveEntry",
    "LockKernel",
    "LockMode",
    "LockTable",
    "Metrics",
    "Outcome",
    "TxnRecord",
    "WaitsForGraph",
    "WakeCallback",
    "find_cycle",
    "pick_victim",
    "victim_cost",
]
