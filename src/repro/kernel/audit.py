"""Append-only audit log of kernel and service decisions.

Every state-mutating request — and every *refusal* to mutate — must leave
an audit entry (the boundary-enforcement-integrity contract: a denied
request produces no state change **and** an audit record with the
decision reason; there is no audit-free path through the kernel).  The
log assigns each entry a monotonically increasing sequence number at
append time, so concurrent client sessions funneled through one kernel
produce a single serializable audit order that tests can assert on.

Entries are immutable; the log exposes read-only views only — there is
deliberately no ``remove``/``clear`` surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class AuditEntry:
    """One audited decision."""

    #: Position in the log's total order (assigned at append).
    seq: int
    #: Operation name (``begin``/``acquire``/``release``/``commit``/
    #: ``abort``/``locks``/...).
    op: str
    #: The requesting principal (service actor, or the transaction name
    #: when the kernel is driven directly).
    actor: str
    #: Transaction the request addressed (may equal ``actor``).
    txn: Optional[str]
    #: Entity the request addressed, rendered with ``repr`` (``None`` for
    #: lifecycle ops).
    entity: Optional[str]
    #: The outcome's wire value (``granted``/``blocked``/``denied``/
    #: ``victim``/``error``).
    decision: str
    #: Human-readable decision reason (mandatory for every non-granted
    #: decision).
    reason: Optional[str] = None


class AuditLog:
    """Append-only, monotonically sequenced audit trail."""

    def __init__(self) -> None:
        self._entries: List[AuditEntry] = []

    def append(
        self,
        op: str,
        actor: str,
        decision: str,
        *,
        txn: Optional[str] = None,
        entity: Optional[object] = None,
        reason: Optional[str] = None,
    ) -> AuditEntry:
        entry = AuditEntry(
            seq=len(self._entries),
            op=op,
            actor=actor,
            txn=txn,
            entity=None if entity is None else repr(entity),
            decision=decision,
            reason=reason,
        )
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AuditEntry]:
        return iter(tuple(self._entries))

    def entries(self) -> Tuple[AuditEntry, ...]:
        """Immutable snapshot of the whole trail, in sequence order."""
        return tuple(self._entries)

    def for_txn(self, txn: str) -> Tuple[AuditEntry, ...]:
        return tuple(e for e in self._entries if e.txn == txn)

    def decisions(self) -> Tuple[str, ...]:
        return tuple(e.decision for e in self._entries)
