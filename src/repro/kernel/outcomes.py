"""Explicit outcomes of the kernel's request API.

Every request a front-end submits to :class:`repro.kernel.core.LockKernel`
resolves to exactly one :class:`Outcome`, carried on a
:class:`KernelResponse`:

``GRANTED``
    The request took effect — a lock was granted (or upgraded), a
    transaction began, a release/commit/abort completed.  ``GRANTED`` is
    the kernel's one success outcome, so a transport can branch on a
    single value.
``BLOCKED``
    The acquire conflicts with other holders (or a policy WAIT verdict);
    the transaction is queued and the registered wake-up callback fires
    with the final outcome (``GRANTED`` after a release unblocks it,
    ``VICTIM`` if deadlock resolution aborts it, ``ERROR`` if the kernel
    drains while it waits).
``DENIED``
    An authorization or policy admission verdict rejected the request
    *before any state changed* — the boundary-enforcement contract: a
    denied request leaves no lock state and only an audit entry.
``VICTIM``
    The transaction was aborted by deadlock resolution (its locks are
    released, its pending request cancelled).
``ERROR``
    Protocol misuse — unknown or finished transaction, release of an
    unheld lock, duplicate same-mode acquire, an operation while blocked
    — rejected with no state mutation.

The enum values are the wire strings of the service's JSON-line protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class Outcome(enum.Enum):
    """The explicit result of one kernel request (see module docstring)."""

    GRANTED = "granted"
    BLOCKED = "blocked"
    DENIED = "denied"
    VICTIM = "victim"
    ERROR = "error"

    @property
    def is_success(self) -> bool:
        return self is Outcome.GRANTED

    @property
    def mutated_state(self) -> bool:
        """Whether a request with this outcome may have changed kernel
        state.  ``DENIED`` and ``ERROR`` guarantee no mutation; ``BLOCKED``
        queues the request (a mutation of the wait state, not the lock
        state)."""
        return self not in (Outcome.DENIED, Outcome.ERROR)


@dataclass(frozen=True)
class KernelResponse:
    """One request's resolution: the outcome, a machine-readable reason
    for non-success outcomes, and — for ``BLOCKED`` acquires — the names
    currently blocking the transaction (holder names are kernel-internal;
    the service's visibility policy decides what a client may see)."""

    outcome: Outcome
    reason: Optional[str] = None
    blockers: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return self.outcome.is_success


#: Shared success response (no payload beyond the outcome).
GRANTED = KernelResponse(Outcome.GRANTED)
