"""The transaction-lifecycle state machine shared by every driver.

:class:`KernelRun` is the kernel half of the old ``sim/scheduler.py``
``_Run`` monolith: it composes the state layers — the sharded
:class:`~repro.sim.lock_table.LockTable`, the always-fresh
:class:`~repro.sim.waits_for.WaitsForGraph`, the
:class:`~repro.sim.admission.AdmissionCache`/``Classifier`` pair, the
:class:`~repro.sim.event_log.EventLog`, and :class:`~repro.sim.metrics.Metrics`
— and owns the transaction lifecycle transitions every driver needs:
registration, step execution (grant/release/wake), commit, and
abort/restart.  What it deliberately does **not** own is any notion of
*time or transport*: no tick loop, no RNG, no arrival queue, no sockets.

Two drivers sit on top:

* the tick simulator (``repro.sim.scheduler._Run`` subclasses this and
  adds the seeded per-tick loop, batched arrivals, and the phase
  pipeline) — proven byte-identical to the pre-split engine by the
  standing naive/event equivalence suites; and
* the request-driven service kernel (:mod:`repro.kernel.core`), which
  exposes the tick-free ``begin/acquire/release/commit/abort`` API the
  asyncio front-end (:mod:`repro.service`) serves to concurrent clients.

Layering (lint rule RPR003): this package may import the state layers it
absorbs (``sim/lock_table``, ``sim/admission``, ``sim/waits_for``,
``sim/deadlock``, ``sim/live``, ``sim/metrics``, ``sim/event_log``,
``sim/executor``) but never the drivers above it (``sim/scheduler``,
``sim/runner``, ``sim/grid``) — the kernel must stay reusable by any
front-end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.schedules import Event
from ..exceptions import PolicyViolation
from ..policies.base import Intent, PolicyContext, PolicySession
from ..sim.admission import AdmissionCache, Classifier
from ..sim.event_log import EventLog
from ..sim.executor import make_executor
from ..sim.live import LiveEntry
from ..sim.lock_table import LockTable
from ..sim.metrics import Metrics

from ..sim.waits_for import WaitsForGraph


class KernelRun:
    """State and lifecycle helpers of one kernel instance: composes the
    state layers and owns transaction admission, commit, abort/restart,
    and step execution.  Drivers (the tick simulator, the service
    front-end) decide *when* these transitions fire; the kernel decides
    *what* they do — and the two engines' byte-identical equivalence is
    asserted over exactly these transitions."""

    def __init__(
        self,
        context: PolicyContext,
        *,
        metrics: Optional[Metrics] = None,
        max_restarts: int = 10,
        lock_shards: int = 1,
        shard_workers: int = 0,
        executor_kind: str = "thread",
        event_engine: bool = True,
    ):
        self.context = context
        self.max_restarts = max_restarts
        self.event_engine = event_engine
        self.metrics = metrics if metrics is not None else Metrics()
        self.table = LockTable(shards=lock_shards)
        self.graph = WaitsForGraph()
        self.live: Dict[str, LiveEntry] = {}
        self.cache = AdmissionCache(self.live, self.metrics)
        self.classifier = Classifier(
            self.live, self.metrics, self.table, self.graph, self.cache
        )
        #: The classify-phase executor (serial reference, thread-pool
        #: fan-out, or replica-owning worker processes over shard slices;
        #: see :mod:`repro.sim.executor`).  ``bind_table`` lets the
        #: process executor switch on the table's delta tracking before
        #: any lock is granted.
        self.executor = make_executor(shard_workers, kind=executor_kind)
        self.executor.bind_table(self.table)
        self.log = EventLog()
        self.committed: List[str] = []
        self.dropped: List[str] = []
        self._seq = 0
        if self.event_engine:
            self.context.set_change_listener(self.cache.policy_changed)

    # -- legacy views (kept for tests and callers of the old layout) ----

    waits_for = property(lambda self: self.graph.waits_for)
    blocked_by = property(lambda self: self.graph.blocked_by)
    watchers = property(lambda self: self.cache.watchers)
    events = property(lambda self: self.log.events)
    events_by_txn = property(lambda self: self.log.by_txn)

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------

    def _register(self, entry: LiveEntry) -> None:
        name = entry.item.name
        session = entry.session
        self.live[name] = entry
        entry.needs_admission = (
            session.dynamic
            or type(session).admission is not PolicySession.admission
        )
        if not self.event_engine:
            return
        if entry.needs_admission:
            # Policy-aware invalidation when the session can declare what
            # its verdict depends on; the conservative every-tick fallback
            # otherwise.
            entry.tracks_deps = session.admission_dependencies() is not None
            self.cache.register(
                name,
                tracks_deps=entry.tracks_deps,
                dynamic=not entry.tracks_deps,
                complete=False,
            )
        else:
            self.cache.register(
                name,
                tracks_deps=False,
                dynamic=False,
                complete=session.peek() is None,
            )

    def record_event(self, name: str, event: Event) -> None:
        self.log.record(name, event)

    def erase(self, name: str) -> None:
        self.log.erase(name)

    def commit(self, entry: LiveEntry) -> None:
        name = entry.item.name
        m = self.metrics
        self.log.forget(name)  # committed events are permanent
        entry.session.on_commit()
        entry.record.committed = True
        entry.record.end_tick = m.ticks
        m.committed += 1
        self.committed.append(name)
        del self.live[name]
        self._forget(entry)
        # A policy that commits while still holding locks used to leak them
        # forever (later sessions then livelocked with a SimulationError);
        # commit now implies strictness for whatever is still held.
        released, woken = self.table.release_all_wake(name)
        if released:
            self._wake(woken)

    def abort(self, victim: LiveEntry, reason: str) -> None:
        m = self.metrics
        name = victim.item.name
        m.aborted += 1
        victim.session.on_abort()
        self._forget(victim)
        _, woken = self.table.release_all_wake(name)
        self._wake(woken)
        self.log.erase(name)

        def drop() -> None:
            del self.live[name]
            self.dropped.append(name)
            victim.record.end_tick = m.ticks

        if victim.attempt > self.max_restarts:
            drop()
            return
        intents: Optional[Sequence[Intent]] = victim.item.intents
        if victim.item.restart is not None:
            intents = victim.item.restart(name, victim.attempt, self.context)
        if intents is None:
            drop()
            return
        try:
            session = self.context.begin(name, intents)
        except PolicyViolation:
            drop()
            return
        # Count the restart only now that one actually happened — a drop
        # (restart budget exhausted, strategy gave up, or begin refused the
        # replanned script) is an abort, not a restart.
        m.restarts += 1
        victim.record.restarts += 1
        entry = LiveEntry(
            victim.item,
            session,
            victim.record,
            attempt=victim.attempt + 1,
            seq=victim.seq,
        )
        self._register(entry)

    def _execute_step(self, entry: LiveEntry) -> None:
        m = self.metrics
        step = entry.session.peek()
        assert step is not None
        name = entry.item.name
        mode = step.lock_mode
        if step.is_lock and mode is not None:
            self.table.acquire(name, step.entity, mode)
            if self.event_engine:
                # Sessions whose cached classification assumed this entity
                # was free (watchers) must be re-derived; queued waiters
                # stay blocked — a grant can only extend their blocker
                # sets, so their edges are updated in place instead.
                self.cache.mark_dirty(
                    self.cache.watchers.get(step.entity, ()), exclude=name
                )
                self.classifier.extend_lock_edges(name, step.entity)
        elif step.is_unlock and mode is not None:
            weakened = self.event_engine and self.table.would_weaken(
                name, step.entity, mode
            )
            woken = self.table.release(name, step.entity, mode)
            self._wake(woken)
            if weakened:
                self.classifier.refresh_lock_edges(name, step.entity)
        self.log.record(name, Event(name, entry.step_count, step))
        entry.step_count += 1
        entry.session.executed()
        m.events_executed += 1
        entry.record.steps_executed += 1
        if self.event_engine:
            self.classifier.clear(entry)
            if name in self.cache.dynamic:
                pass  # re-examined every tick anyway
            elif entry.tracks_deps:
                # Defer the replanning peek to next tick's phase 1 (it may
                # raise or drain to None — commit/abort are phase-1
                # business, exactly when the naive engine sees them).
                self.cache.phase1.add(name)
                self.cache.dirty.add(name)
            elif entry.session.peek() is None:
                self.cache.complete.add(name)
            else:
                self.cache.dirty.add(name)

    def _wake(self, names) -> None:
        """A release returned these waiters in its wake-up set."""
        if self.event_engine:
            self.cache.wake(names)

    def _forget(self, entry: LiveEntry) -> None:
        """Drop every piece of engine bookkeeping for this incarnation."""
        name = entry.item.name
        self.classifier.clear(entry)
        # Eagerly prune inbound waits-for edges: a departed session blocks
        # nobody, and a restarted incarnation under the same name must not
        # inherit edges aimed at its predecessor.  The waiters' lazy
        # accounting is caught up through the previous tick first (if this
        # departure is their wake-up, re-classification will cover the
        # current tick; if it is not, a later accrual point will).
        waiters = self.graph.forget(name)
        if waiters:
            through = self.metrics.ticks - 1
            for w in waiters:
                w_entry = self.live.get(w)
                if w_entry is not None:
                    self.classifier.accrue(w_entry, through)
        self.cache.forget(name)
