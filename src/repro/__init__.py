"""repro — a reproduction of *Safe Locking Policies for Dynamic Databases*
(Chaudhri & Hadzilacos, PODS 1995 / JCSS 1998).

The library implements the paper's model of dynamic databases (structural
states, proper schedules), the canonical-schedules characterisation of unsafe
locking (Theorem 1) together with two independent safety deciders, and the
three locking policies whose correctness the paper proves with it: the
dynamic DAG (DDAG) policy, altruistic locking, and the dynamic tree (DTR)
policy.  A discrete-event concurrency simulator substitutes for the
companion performance study the paper cites.

Quickstart::

    from repro import Transaction, Schedule, is_serializable

    t1 = Transaction.from_text("T1", "(LX a) (I a) (UX a)")
    t2 = Transaction.from_text("T2", "(LX a) (W a) (UX a)")
    s = Schedule.from_order([t1, t2], ["T1"] * 3 + ["T2"] * 3)
    assert s.is_legal() and s.is_proper() and is_serializable(s)

See ``examples/`` for worked scenarios and ``benchmarks/`` for the
figure-by-figure reproduction harness.
"""

from .core import (  # noqa: F401
    CanonicalWitness,
    DatabaseState,
    Entity,
    Event,
    InteractionGraph,
    LockMode,
    Operation,
    SafetyVerdict,
    Schedule,
    SerializabilityGraph,
    Step,
    StructuralState,
    Transaction,
    ValueState,
    all_two_phase,
    analyze_two_phase,
    assert_well_formed,
    canonicalize,
    decide_safety,
    find_canonical_witness,
    find_completion,
    find_nonserializable_schedule,
    is_completable,
    is_safe_bruteforce,
    is_safe_canonical,
    is_serializable,
    move,
    parse_step,
    parse_steps,
    serializability_graph,
    serialization_order,
    split_at_first_cycle,
    static_chordless_heuristic,
    step,
    transpose,
    two_phase_locked,
    validate_schedule,
)
from .exceptions import (  # noqa: F401
    DeadlockError,
    IllegalScheduleError,
    ImproperScheduleError,
    MalformedScheduleError,
    MalformedTransactionError,
    ModelError,
    PolicyViolation,
    ReproError,
    SearchBudgetExceeded,
    SimulationError,
    VerificationError,
)

__version__ = "1.0.0"
