"""From-scratch graph substrate: digraphs, rooted DAGs, dominators, forests,
and random generators for workloads."""

from .dag import RootedDag, chain, diamond
from .digraph import DiGraph, Edge, Node
from .dominators import dominates, dominator_sets, immediate_dominators
from .forest import Forest
from .generators import (
    layered_dag,
    random_root_path,
    random_rooted_dag,
    random_subdag_walk,
    random_tree,
)

__all__ = [
    "DiGraph",
    "Edge",
    "Forest",
    "Node",
    "RootedDag",
    "chain",
    "diamond",
    "dominates",
    "dominator_sets",
    "immediate_dominators",
    "layered_dag",
    "random_root_path",
    "random_rooted_dag",
    "random_subdag_walk",
    "random_tree",
]
