"""Dominators in rooted directed graphs (Section 4 of the paper).

The DDAG policy's key structural notion:

    "A dominator ``D`` of a set of nodes ``W`` is a node such that every path
    from the root to a node in ``W`` passes through ``D``.  Thus, in a rooted
    graph, the root dominates all the nodes in the graph including itself."

This module computes the full dominator relation with the classic iterative
dataflow algorithm (``dom(n) = {n} ∪ ⋂ dom(pred)``), which is simple,
obviously correct, and fast enough for the graph sizes the policies operate
on; the test-suite cross-checks it against ``networkx``'s
Lengauer–Tarjan-based immediate dominators.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set

from .digraph import DiGraph, Node


def dominator_sets(graph: DiGraph, root: Node) -> Dict[Node, FrozenSet[Node]]:
    """For each node reachable from ``root``, the set of its dominators.

    Unreachable nodes are omitted (no root-path exists, so the universal
    quantifier is vacuous; the policies never consult them).
    """
    if root not in graph:
        raise KeyError(f"root {root!r} not in graph")
    reachable = graph.reachable_from(root)
    dom: Dict[Node, Set[Node]] = {n: set(reachable) for n in reachable}
    dom[root] = {root}
    # Iterate in (approximate) topological order for fast convergence, but
    # keep iterating to a fixed point so cyclic graphs would also be handled.
    order = [n for n in _rpo(graph, root) if n in reachable]
    changed = True
    while changed:
        changed = False
        for n in order:
            if n == root:
                continue
            preds = [p for p in graph.predecessors(n) if p in reachable]
            if preds:
                new = set.intersection(*(dom[p] for p in preds)) | {n}
            else:
                new = {n}
            if new != dom[n]:
                dom[n] = new
                changed = True
    return {n: frozenset(s) for n, s in dom.items()}


def _rpo(graph: DiGraph, root: Node):
    """Reverse postorder from ``root``."""
    seen: Set[Node] = set()
    post = []

    def dfs(node: Node) -> None:
        stack = [(node, iter(sorted(graph.successors(node), key=repr)))]
        seen.add(node)
        while stack:
            cur, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, iter(sorted(graph.successors(nxt), key=repr))))
                    advanced = True
                    break
            if not advanced:
                post.append(cur)
                stack.pop()

    dfs(root)
    return list(reversed(post))


def dominates(graph: DiGraph, root: Node, candidate: Node, targets: Iterable[Node]) -> bool:
    """Does ``candidate`` dominate every node of ``targets`` (w.r.t. paths
    from ``root``)?

    Implemented definitionally — every root-to-target path passes through
    ``candidate`` iff the target is unreachable from the root once
    ``candidate`` is removed (with ``candidate`` itself trivially dominated
    by itself).
    """
    targets = list(targets)
    if candidate == root:
        return True
    reachable = graph.reachable_from(root)
    for t in targets:
        if t not in reachable:
            return False
    pruned = graph.copy()
    pruned.remove_node(candidate)
    if root not in pruned:
        return all(t == candidate for t in targets)
    still = pruned.reachable_from(root)
    return all(t == candidate or t not in still for t in targets)


def immediate_dominators(graph: DiGraph, root: Node) -> Dict[Node, Optional[Node]]:
    """The immediate dominator of each reachable node (root maps to None).

    The immediate dominator is the unique strict dominator that is dominated
    by all other strict dominators.
    """
    doms = dominator_sets(graph, root)
    out: Dict[Node, Optional[Node]] = {root: None}
    for node, ds in doms.items():
        if node == root:
            continue
        strict = ds - {node}
        # The idom is the strict dominator with the largest dominator set.
        idom = max(strict, key=lambda d: len(doms[d]))
        out[node] = idom
    return out
