"""Database forests — the policy-managed structure of the DTR policy
(Section 6).

Unlike the DDAG policy's database graph (given, and mutated by the
transactions), the DTR policy's forest is created and maintained *by the
concurrency-control algorithm itself*:

* **DT0** — initially the forest is empty.
* **DT1** — to join two trees, draw an edge from the root of one to the root
  of the other; to add a set of entities, connect them into a tree first and
  then join.
* **DT3** — a node may be deleted when no active transaction holds a lock on
  it and every active transaction stays tree-locked w.r.t. the forest minus
  the node.

This module implements the forest datatype with parent pointers; the DT rule
enforcement itself lives in :mod:`repro.policies.dtr`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .digraph import Node


class Forest:
    """A mutable forest of rooted trees over hashable nodes.

    Each node has at most one parent; trees are identified by their roots.
    """

    def __init__(self) -> None:
        self._parent: Dict[Node, Optional[Node]] = {}
        self._children: Dict[Node, Set[Node]] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def nodes(self) -> FrozenSet[Node]:
        return frozenset(self._parent)

    def parent(self, node: Node) -> Optional[Node]:
        """The parent of ``node`` (None for roots)."""
        return self._parent[node]

    def children(self, node: Node) -> FrozenSet[Node]:
        return frozenset(self._children[node])

    def roots(self) -> FrozenSet[Node]:
        return frozenset(n for n, p in self._parent.items() if p is None)

    def root_of(self, node: Node) -> Node:
        """The root of the tree containing ``node``."""
        cur = node
        while True:
            p = self._parent[cur]
            if p is None:
                return cur
            cur = p

    def tree_nodes(self, root: Node) -> FrozenSet[Node]:
        """All nodes of the tree rooted at ``root``."""
        out: Set[Node] = {root}
        frontier = [root]
        while frontier:
            n = frontier.pop()
            for c in self._children[n]:
                if c not in out:
                    out.add(c)
                    frontier.append(c)
        return frozenset(out)

    def same_tree(self, a: Node, b: Node) -> bool:
        return self.root_of(a) == self.root_of(b)

    def path_from_root(self, node: Node) -> List[Node]:
        """The unique root-to-node path."""
        path = [node]
        cur = node
        while self._parent[cur] is not None:
            cur = self._parent[cur]
            path.append(cur)
        path.reverse()
        return path

    def is_ancestor(self, a: Node, b: Node) -> bool:
        """Is ``a`` on the root path of ``b`` (reflexively)?"""
        return a in self.path_from_root(b)

    def descendants(self, node: Node) -> FrozenSet[Node]:
        out: Set[Node] = {node}
        frontier = [node]
        while frontier:
            n = frontier.pop()
            for c in self._children[n]:
                if c not in out:
                    out.add(c)
                    frontier.append(c)
        return frozenset(out)

    # ------------------------------------------------------------------
    # Mutation (the DT1/DT3 primitives)
    # ------------------------------------------------------------------

    def add_root(self, node: Node) -> None:
        """Add an isolated single-node tree."""
        if node in self._parent:
            raise ValueError(f"node {node!r} already in forest")
        self._parent[node] = None
        self._children[node] = set()

    def add_child(self, parent: Node, node: Node) -> None:
        """Add a fresh node as a child of an existing one."""
        if node in self._parent:
            raise ValueError(f"node {node!r} already in forest")
        if parent not in self._parent:
            raise KeyError(f"parent {parent!r} not in forest")
        self._parent[node] = parent
        self._children[node] = set()
        self._children[parent].add(node)

    def join(self, upper_root: Node, lower_root: Node) -> None:
        """DT1: draw an edge from the root of one tree to the root of
        another, making ``lower_root``'s tree a subtree."""
        if upper_root not in self._parent or lower_root not in self._parent:
            raise KeyError("both roots must be in the forest")
        if self._parent[lower_root] is not None:
            raise ValueError(f"{lower_root!r} is not a root")
        if self.root_of(upper_root) == lower_root:
            raise ValueError("joining would create a cycle")
        self._parent[lower_root] = upper_root
        self._children[upper_root].add(lower_root)

    def delete_node(self, node: Node) -> None:
        """DT3's structural effect: remove a node; its children become roots.

        Whether the deletion is *allowed* (locks, tree-locked transactions)
        is the policy's job, not the forest's.
        """
        if node not in self._parent:
            raise KeyError(f"node {node!r} not in forest")
        parent = self._parent[node]
        if parent is not None:
            self._children[parent].discard(node)
        for child in self._children[node]:
            self._parent[child] = None
        del self._parent[node]
        del self._children[node]

    def without(self, node: Node) -> "Forest":
        """The forest ``G(A)`` obtained by deleting ``node`` (a copy)."""
        copy = self.copy()
        copy.delete_node(node)
        return copy

    def copy(self) -> "Forest":
        out = Forest()
        out._parent = dict(self._parent)
        out._children = {n: set(c) for n, c in self._children.items()}
        return out

    def __str__(self) -> str:
        parts = []
        for root in sorted(self.roots(), key=repr):
            parts.append(self._render(root))
        return "Forest[" + "; ".join(parts) + "]"

    def _render(self, node: Node) -> str:
        kids = sorted(self._children[node], key=repr)
        if not kids:
            return str(node)
        return f"{node}({', '.join(self._render(k) for k in kids)})"
