"""A small from-scratch directed graph.

The locking policies need a handful of graph operations — adjacency,
reachability, dominators, roots — over graphs that *change while
transactions run* (that is the whole point of the paper).  Rather than pull
in a general graph library for the production code path, this module
implements a minimal mutable digraph; the test-suite cross-checks the
algorithms against ``networkx``.

Nodes are arbitrary hashable values.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class DiGraph:
    """A mutable directed graph with set-based adjacency."""

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        edges: Iterable[Edge] = (),
    ):
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        for n in nodes:
            self.add_node(n)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add a node (idempotent)."""
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def remove_node(self, node: Node) -> None:
        """Remove a node and all incident edges.  Raises ``KeyError`` if the
        node is absent."""
        for v in list(self._succ[node]):
            self._pred[v].discard(node)
        for u in list(self._pred[node]):
            self._succ[u].discard(node)
        del self._succ[node]
        del self._pred[node]

    def add_edge(self, u: Node, v: Node) -> None:
        """Add edge ``u -> v``, adding missing endpoints (idempotent)."""
        self.add_node(u)
        self.add_node(v)
        self._succ[u].add(v)
        self._pred[v].add(u)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``u -> v``.  Raises ``KeyError`` when absent."""
        if v not in self._succ.get(u, ()):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._succ[u].discard(v)
        self._pred[v].discard(u)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def nodes(self) -> FrozenSet[Node]:
        return frozenset(self._succ)

    def edges(self) -> FrozenSet[Edge]:
        return frozenset((u, v) for u, vs in self._succ.items() for v in vs)

    def has_edge(self, u: Node, v: Node) -> bool:
        return v in self._succ.get(u, ())

    def successors(self, node: Node) -> FrozenSet[Node]:
        return frozenset(self._succ[node])

    def predecessors(self, node: Node) -> FrozenSet[Node]:
        return frozenset(self._pred[node])

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    def roots(self) -> FrozenSet[Node]:
        """Nodes with no predecessors."""
        return frozenset(n for n in self._succ if not self._pred[n])

    def leaves(self) -> FrozenSet[Node]:
        """Nodes with no successors."""
        return frozenset(n for n in self._succ if not self._succ[n])

    def copy(self) -> "DiGraph":
        g = DiGraph()
        for n in self._succ:
            g.add_node(n)
        for u, vs in self._succ.items():
            for v in vs:
                g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def reachable_from(self, source: Node) -> FrozenSet[Node]:
        """All nodes reachable from ``source`` (including itself)."""
        seen: Set[Node] = {source}
        frontier: List[Node] = [source]
        while frontier:
            node = frontier.pop()
            for nxt in self._succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def reaching(self, target: Node) -> FrozenSet[Node]:
        """All nodes from which ``target`` is reachable (including itself)."""
        seen: Set[Node] = {target}
        frontier: List[Node] = [target]
        while frontier:
            node = frontier.pop()
            for prv in self._pred[node]:
                if prv not in seen:
                    seen.add(prv)
                    frontier.append(prv)
        return frozenset(seen)

    def has_path(self, source: Node, target: Node) -> bool:
        """Is there a (possibly empty) directed path ``source -> target``?"""
        if source not in self._succ or target not in self._succ:
            return False
        return target in self.reachable_from(source)

    def is_acyclic(self) -> bool:
        """Cycle test by iterative DFS colouring."""
        color: Dict[Node, int] = {n: 0 for n in self._succ}
        for root in self._succ:
            if color[root] != 0:
                continue
            stack: List[Tuple[Node, Iterator[Node]]] = [(root, iter(self._succ[root]))]
            color[root] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == 0:
                        color[nxt] = 1
                        stack.append((nxt, iter(self._succ[nxt])))
                        advanced = True
                        break
                    if color[nxt] == 1:
                        return False
                if not advanced:
                    color[node] = 2
                    stack.pop()
        return True

    def topological_order(self) -> List[Node]:
        """Kahn's algorithm; deterministic via repr-ordering.  Raises
        ``ValueError`` on cyclic graphs."""
        indeg = {n: len(self._pred[n]) for n in self._succ}
        ready = sorted((n for n, d in indeg.items() if d == 0), key=repr)
        order: List[Node] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in sorted(self._succ[node], key=repr):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
            ready.sort(key=repr)
        if len(order) != len(self._succ):
            raise ValueError("graph has a cycle")
        return order

    def __str__(self) -> str:
        parts = [f"{u}->{v}" for u, v in sorted(self.edges(), key=repr)]
        iso = sorted(
            (n for n in self._succ if not self._succ[n] and not self._pred[n]),
            key=repr,
        )
        parts.extend(str(n) for n in iso)
        return "DiGraph{" + ", ".join(parts) + "}"
