"""Rooted DAGs — the database graphs of the DDAG policy (Section 4).

The DDAG policy assumes "a rooted DAG representation G of the database": a
directed acyclic graph with a unique root from which every node is
reachable.  Transactions insert and delete nodes and edges, and the policy's
rules (L1–L5) constantly consult the *present* state of the graph, so this
class supports cheap snapshots and structural edits with validation hooks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .digraph import DiGraph, Edge, Node
from .dominators import dominates, dominator_sets


class RootedDag:
    """A mutable rooted directed acyclic graph.

    ``strict`` controls whether mutations enforce the rooted-DAG invariants
    eagerly (raise on violation) or lazily (callers may batch edits and call
    :meth:`check_invariants` themselves, which is how transactions that
    restructure the graph mid-flight are modelled).
    """

    def __init__(
        self,
        root: Node,
        edges: Iterable[Edge] = (),
        extra_nodes: Iterable[Node] = (),
        strict: bool = True,
    ):
        self.graph = DiGraph()
        self.root = root
        self.graph.add_node(root)
        self.strict = False
        for u, v in edges:
            self.graph.add_edge(u, v)
        for n in extra_nodes:
            self.graph.add_node(n)
        self.strict = strict
        if strict:
            self.check_invariants()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def invariant_violation(self) -> Optional[str]:
        """Describe the first violated rooted-DAG invariant, or None."""
        if self.root not in self.graph:
            return f"root {self.root!r} is not in the graph"
        if not self.graph.is_acyclic():
            return "graph has a cycle"
        roots = self.graph.roots()
        if roots != {self.root}:
            extra = sorted(roots - {self.root}, key=repr)
            if extra:
                return f"nodes without predecessors besides the root: {extra}"
        unreachable = self.graph.nodes() - self.graph.reachable_from(self.root)
        if unreachable:
            return f"nodes unreachable from the root: {sorted(unreachable, key=repr)}"
        return None

    def check_invariants(self) -> None:
        violation = self.invariant_violation()
        if violation is not None:
            raise ValueError(f"rooted-DAG invariant violated: {violation}")

    # ------------------------------------------------------------------
    # Structure edits (the I/D operations of DDAG transactions)
    # ------------------------------------------------------------------

    def insert_node(self, node: Node, parents: Iterable[Node] = ()) -> None:
        """Insert a fresh node, optionally wired under existing parents.

        A parentless insert is only valid while ``strict`` is off (the node
        is unreachable until an edge is added); DDAG transactions lock the
        node (rule L2) and then attach it with edge inserts.
        """
        if node in self.graph:
            raise ValueError(f"node {node!r} already exists")
        self.graph.add_node(node)
        for p in parents:
            self.graph.add_edge(p, node)
        if self.strict:
            self.check_invariants()

    def delete_node(self, node: Node) -> None:
        """Delete a node (and its incident edges)."""
        if node == self.root:
            raise ValueError("cannot delete the root")
        if node not in self.graph:
            raise KeyError(f"node {node!r} not in graph")
        self.graph.remove_node(node)
        if self.strict:
            self.check_invariants()

    def insert_edge(self, u: Node, v: Node) -> None:
        """Insert edge ``u -> v``; both endpoints must already exist."""
        if u not in self.graph or v not in self.graph:
            raise KeyError(f"edge endpoints {u!r}, {v!r} must exist")
        if self.graph.has_edge(u, v):
            raise ValueError(f"edge ({u!r}, {v!r}) already exists")
        self.graph.add_edge(u, v)
        if self.strict and not self.graph.is_acyclic():
            self.graph.remove_edge(u, v)
            raise ValueError(f"edge ({u!r}, {v!r}) would create a cycle")
        if self.strict:
            self.check_invariants()

    def delete_edge(self, u: Node, v: Node) -> None:
        self.graph.remove_edge(u, v)
        if self.strict:
            self.check_invariants()

    # ------------------------------------------------------------------
    # Queries used by the locking rules and proofs
    # ------------------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self.graph

    def nodes(self) -> FrozenSet[Node]:
        return self.graph.nodes()

    def edges(self) -> FrozenSet[Edge]:
        return self.graph.edges()

    def predecessors(self, node: Node) -> FrozenSet[Node]:
        return self.graph.predecessors(node)

    def successors(self, node: Node) -> FrozenSet[Node]:
        return self.graph.successors(node)

    def descendants(self, node: Node) -> FrozenSet[Node]:
        """Nodes reachable from ``node`` (including itself)."""
        return self.graph.reachable_from(node)

    def ancestors(self, node: Node) -> FrozenSet[Node]:
        """Nodes from which ``node`` is reachable (including itself)."""
        return self.graph.reaching(node)

    def is_ancestor(self, a: Node, b: Node) -> bool:
        """Is ``a`` an ancestor of ``b`` (reflexively)?"""
        return self.graph.has_path(a, b)

    def dominator_sets(self) -> Dict[Node, FrozenSet[Node]]:
        return dominator_sets(self.graph, self.root)

    def dominates(self, candidate: Node, targets: Iterable[Node]) -> bool:
        """Does ``candidate`` dominate all of ``targets``?  (Lemma 3's
        central notion.)"""
        return dominates(self.graph, self.root, candidate, targets)

    def snapshot(self) -> "RootedDag":
        """An independent copy — the ``G_i`` snapshots of the proofs."""
        copy = RootedDag(self.root, strict=False)
        copy.graph = self.graph.copy()
        copy.strict = self.strict
        return copy

    def between(self, ancestor: Node, descendant: Node) -> FrozenSet[Node]:
        """Nodes that are both descendants of ``ancestor`` and ancestors of
        ``descendant`` — the set Lemma 3(b) says must be locked first."""
        return self.descendants(ancestor) & self.ancestors(descendant)

    def __str__(self) -> str:
        return f"RootedDag(root={self.root!r}, {self.graph})"


def chain(length: int, start: int = 1) -> RootedDag:
    """A rooted chain ``start -> start+1 -> …`` of ``length`` nodes."""
    nodes = list(range(start, start + length))
    return RootedDag(nodes[0], [(a, b) for a, b in zip(nodes, nodes[1:])])


def diamond() -> RootedDag:
    """The 4-node diamond ``1 -> {2, 3} -> 4`` used in several tests."""
    return RootedDag(1, [(1, 2), (1, 3), (2, 4), (3, 4)])
