"""Random graph generators for workloads and property tests.

All generators take an explicit :class:`random.Random` (or a seed) so that
every workload in the benchmark harness is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from .dag import RootedDag
from .digraph import Node

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_rooted_dag(
    num_nodes: int,
    extra_edge_prob: float = 0.25,
    seed: RandomLike = None,
    node_offset: int = 1,
) -> RootedDag:
    """A random rooted DAG on nodes ``offset … offset+n-1``.

    Construction guarantees the invariants: each node ``i > root`` gets one
    parent drawn uniformly from the earlier nodes (making the graph rooted
    and acyclic), then extra forward edges are added with probability
    ``extra_edge_prob`` per candidate pair.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    rng = _rng(seed)
    nodes = list(range(node_offset, node_offset + num_nodes))
    edges: List[Tuple[Node, Node]] = []
    for i in range(1, num_nodes):
        parent = nodes[rng.randrange(i)]
        edges.append((parent, nodes[i]))
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if (nodes[i], nodes[j]) not in edges and rng.random() < extra_edge_prob:
                edges.append((nodes[i], nodes[j]))
    return RootedDag(nodes[0], edges)


def random_tree(
    num_nodes: int,
    seed: RandomLike = None,
    node_offset: int = 1,
    max_children: Optional[int] = None,
) -> RootedDag:
    """A random rooted tree (a DAG where every non-root has one parent)."""
    if num_nodes < 1:
        raise ValueError("need at least one node")
    rng = _rng(seed)
    nodes = list(range(node_offset, node_offset + num_nodes))
    edges: List[Tuple[Node, Node]] = []
    child_count = {n: 0 for n in nodes}
    for i in range(1, num_nodes):
        candidates = [
            n
            for n in nodes[:i]
            if max_children is None or child_count[n] < max_children
        ]
        parent = rng.choice(candidates)
        child_count[parent] += 1
        edges.append((parent, nodes[i]))
    return RootedDag(nodes[0], edges)


def layered_dag(
    layers: Sequence[int],
    density: float = 0.5,
    seed: RandomLike = None,
    node_offset: int = 1,
) -> RootedDag:
    """A layered rooted DAG: ``layers[k]`` nodes in layer ``k``; every node
    in layer ``k+1`` receives at least one edge from layer ``k`` and extra
    edges with probability ``density``.  Layer 0 must have a single node (the
    root).  Layered DAGs model part-of hierarchies in the knowledge-base
    workloads of the DDAG evaluation."""
    if not layers or layers[0] != 1:
        raise ValueError("layer 0 must contain exactly the root")
    rng = _rng(seed)
    next_id = node_offset
    layer_nodes: List[List[int]] = []
    for width in layers:
        layer_nodes.append(list(range(next_id, next_id + width)))
        next_id += width
    edges: List[Tuple[Node, Node]] = []
    for upper, lower in zip(layer_nodes, layer_nodes[1:]):
        for node in lower:
            parent = rng.choice(upper)
            edges.append((parent, node))
            for candidate in upper:
                if candidate != parent and rng.random() < density:
                    edges.append((candidate, node))
    return RootedDag(layer_nodes[0][0], edges)


def random_root_path(dag: RootedDag, seed: RandomLike = None) -> List[Node]:
    """A random root-to-somewhere path — the shape of a traversal
    transaction's access pattern."""
    rng = _rng(seed)
    path = [dag.root]
    while True:
        succ = sorted(dag.successors(path[-1]), key=repr)
        if not succ or rng.random() < 0.25:
            return path
        path.append(rng.choice(succ))


def random_subdag_walk(
    dag: RootedDag, start: Node, length: int, seed: RandomLike = None
) -> List[Node]:
    """A DDAG-compatible access sequence: starts at ``start`` and repeatedly
    moves to successors whose predecessors have all been visited (the L5
    side-condition), visiting at most ``length`` nodes."""
    rng = _rng(seed)
    visited = [start]
    visited_set = {start}
    dominated = dag.descendants(start)
    while len(visited) < length:
        frontier = [
            n
            for v in visited
            for n in dag.successors(v)
            if n not in visited_set
            and n in dominated
            and all(p in visited_set for p in dag.predecessors(n) if p in dominated)
        ]
        # L5 requires *all* predecessors (in the whole graph) locked; nodes
        # with predecessors outside the dominated region are unreachable to
        # the policy, so exclude them.
        frontier = [
            n
            for n in frontier
            if all(p in visited_set for p in dag.predecessors(n))
        ]
        if not frontier:
            break
        nxt = rng.choice(sorted(frontier, key=repr))
        visited.append(nxt)
        visited_set.add(nxt)
    return visited
