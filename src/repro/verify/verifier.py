"""The policy verifier: empirical safety checking for locking policies.

Theorem statements in the paper are per-policy universal claims ("every legal
and proper schedule any DDAG-locked system can produce is serializable").
The verifier attacks them from two sides:

* :func:`verify_policy` — **dynamic testing**: run the policy in the
  simulator over many seeded workloads, validating every recorded schedule
  (legal, proper, rule-compliant, serializable).  A single nonserializable
  schedule refutes the policy; its canonicalisation (Theorem 1's Only-If
  construction) is attached to the report as the counterexample witness.
* :func:`verify_system` — **exact checking** for a fixed finite system of
  locked transactions: brute force and the canonical-witness search, which
  Theorem 1 says must agree.

The deliberately broken policies in :mod:`repro.policies.unsafe` keep the
verifier honest: they must fail here, with witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.canonical import CanonicalWitness
from ..core.safety import SafetyVerdict, decide_safety
from ..core.schedules import Schedule
from ..core.serializability import is_serializable
from ..core.states import StructuralState
from ..core.transactions import Transaction
from ..core.transforms import canonicalize
from ..exceptions import ModelError, SimulationError
from ..policies.base import LockingPolicy
from ..sim.runner import WorkloadFactory
from ..sim.scheduler import SimResult, Simulator

#: Optional per-run rule auditor: (result) -> violation strings.
RuleAuditor = Callable[[SimResult], List[str]]


@dataclass
class PolicyReport:
    """Outcome of dynamic policy verification."""

    policy: str
    runs: int = 0
    schedules_checked: int = 0
    failures: List[str] = field(default_factory=list)
    counterexample: Optional[Schedule] = None
    witness: Optional[CanonicalWitness] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "SAFE (no violation found)" if self.ok else "UNSAFE/BROKEN"
        lines = [
            f"policy {self.policy}: {status} over {self.runs} runs "
            f"({self.schedules_checked} schedules checked)"
        ]
        lines.extend(f"  - {f}" for f in self.failures[:10])
        if self.witness is not None:
            lines.append("  canonical witness:")
            lines.extend("    " + l for l in self.witness.describe().splitlines())
        return "\n".join(lines)


def verify_policy(
    policy: LockingPolicy,
    factory: WorkloadFactory,
    seeds: Sequence[int],
    context_kwargs_factory: Optional[Callable[[int], dict]] = None,
    auditors: Sequence[RuleAuditor] = (),
    max_ticks: int = 200_000,
    stop_at_first_failure: bool = True,
) -> PolicyReport:
    """Run the policy over seeded workloads and validate every schedule.

    Checks, per run: the recorded schedule is legal and proper (the
    simulator asserts this), every auditor passes, and the schedule is
    conflict serializable.  On a serializability failure the schedule is
    canonicalised into a Theorem-1 witness for the report.
    """
    report = PolicyReport(policy=policy.name)
    for seed in seeds:
        items, initial = factory(seed)
        kwargs = context_kwargs_factory(seed) if context_kwargs_factory else {}
        sim = Simulator(policy, seed=seed, max_ticks=max_ticks, context_kwargs=kwargs)
        try:
            result = sim.run(items, initial)
        except SimulationError as exc:
            report.failures.append(f"seed {seed}: simulation failed: {exc}")
            if stop_at_first_failure:
                return report
            continue
        report.runs += 1
        report.schedules_checked += 1
        for audit in auditors:
            for violation in audit(result):
                report.failures.append(f"seed {seed}: rule violation: {violation}")
        if not is_serializable(result.schedule):
            report.failures.append(
                f"seed {seed}: NONSERIALIZABLE schedule of "
                f"{len(result.schedule)} events"
            )
            report.counterexample = result.schedule
            try:
                report.witness = canonicalize(result.schedule)
            except ModelError:
                report.witness = None
            if stop_at_first_failure:
                return report
        if report.failures and stop_at_first_failure:
            return report
    return report


def verify_system(
    transactions: Sequence[Transaction],
    initial: StructuralState = StructuralState.empty(),
    budget: int = 200_000,
) -> SafetyVerdict:
    """Exact safety decision for a finite locked transaction system, via both
    Theorem-1 routes (see :func:`repro.core.safety.decide_safety`)."""
    return decide_safety(transactions, initial, budget)
