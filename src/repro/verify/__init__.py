"""Policy verification: dynamic (simulator-driven) and exact (Theorem 1)."""

from .verifier import PolicyReport, RuleAuditor, verify_policy, verify_system

__all__ = ["PolicyReport", "RuleAuditor", "verify_policy", "verify_system"]
