"""The waits-for graph layer of the scheduler kernel.

:class:`WaitsForGraph` owns both sides of the waits-for relation — the
forward edges (``waits_for``: blocked session → the sessions it waits on)
and the reverse index (``blocked_by``: blocker → the waiters with an edge
to it) — and keeps them exactly in sync through every edge update, so the
event engine can prune a departing blocker's inbound edges eagerly and run
cycle detection directly on the maintained graph.

Cycle detection is **incremental**: it must return bit-identical results
to the from-scratch reference detector
(:func:`repro.sim.deadlock.find_cycle` — sorted roots, sorted neighbours,
first back edge) while not re-walking the whole graph on every
no-runnable tick, and it layers two caches across calls to get there:

**Acyclicity certificates** (the colour state that survives).  A node
blackened by a detection's DFS is *clean*: no cycle is reachable from it
in the graph the DFS saw (three-colour invariant — a node is blackened
only after every path out of it terminated without a back edge).  Edge
*removals* can never invalidate a certificate (they only shrink
reachability); edge *additions* are the only invalidator, so every node
that gains an outgoing edge is recorded as a dirty source and the next
detection first un-certifies exactly the nodes that can currently reach
one (one reverse BFS over ``blocked_by`` — any path using a new edge has
a prefix reaching that edge's source).  The DFS then treats clean nodes
as already blackened, which can never change the first back edge met: a
certified node's subtree cannot reach a grey ancestor, or the certificate
would be false.

**The cached walk** (the SCC-frontier chain that survives).  On the
deadlock path every live session is blocked, so the graph is *sink-free*
and the reference DFS never completes a node: it simply follows each
node's first sorted neighbour from the first sorted root until it meets a
grey node — a single chain ending at the first cycle.  Certificates never
get issued in that regime (nothing is ever blackened), so the incremental
win comes from caching that chain: each detection records its walk, edge
updates *cut* the walk at the first node whose out-edges changed (or
clear it when a new key sorts before its root), and the next detection
replays the untouched prefix for free and resumes the chain from there.
A resumed step that meets a sink or a clean node falls back to the full
reference DFS (those are exactly the graphs where the chain shortcut is
not the reference behaviour), so the output stays bit-identical in every
case.  ``last_visits`` counts the nodes actually pushed per detection —
the figure the deadlock bench compares against the from-scratch walk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .deadlock import cycle_from_parents


class WaitsForGraph:
    """Incrementally maintained waits-for graph with incremental cycle
    detection (see the module docstring)."""

    def __init__(self) -> None:
        #: Forward edges: blocked session -> the sessions it waits on.
        self.waits_for: Dict[str, Set[str]] = {}
        #: Reverse index: blocker -> waiters with an edge to it; kept
        #: exactly in sync with :attr:`waits_for`.
        self.blocked_by: Dict[str, Set[str]] = {}
        #: Nodes holding a valid acyclicity certificate.
        self._clean: Set[str] = set()
        #: Nodes that gained an outgoing edge since the last detection.
        self._dirty: Set[str] = set()
        #: The previous detection's DFS chain (recorded only when it was a
        #: pure single-root chain that met a cycle without consulting
        #: certificates), its node -> position index, and the length of
        #: the prefix no edge update has touched since.
        self._walk: List[str] = []
        self._walk_index: Dict[str, int] = {}
        self._walk_valid: int = 0
        #: DFS pushes of the most recent :meth:`find_cycle` call (the
        #: scheduler accrues these into ``Metrics.cycle_visits``).
        self.last_visits: int = 0

    # ------------------------------------------------------------------
    # Edge maintenance
    # ------------------------------------------------------------------

    def _cut_step(self, name, edges, new_key: bool = False) -> None:
        """``name``'s out-edge set changed (to ``edges``): cut the cached
        walk at its position — *unless the recorded step survives*.  A
        walk position is valid iff its recorded successor is still the
        node's first sorted neighbour, so an update that leaves
        ``min(edges)`` equal to the recorded next step (a deadlock
        victim's abort pruning a cycle member's *other* edges, a fresh
        grant extending a blocker set with a later-sorting name) keeps the
        prefix replayable and costs nothing.  The cut therefore lands at
        the victim's own cycle position instead of the earliest touched
        cycle member, which is what lets detection resume across victim
        aborts (measured by ``cycle_visits``/``cycle_detections`` under
        the deadlock-storm bench).  Cuts compose to a position minimum in
        any order, so batched-apply order never changes the surviving
        prefix.  The walk is cleared entirely when a brand-new key sorts
        before its root (the reference DFS would start there instead) —
        checked even when a stale entry for ``name`` lingers in the
        already-cut suffix of the index."""
        if not self._walk:
            return
        i = self._walk_index.get(name)
        if i is not None and i < self._walk_valid:
            if (
                i + 1 < len(self._walk)
                and edges
                and min(edges) == self._walk[i + 1]
            ):
                return  # recorded step still the first sorted neighbour
            self._walk_valid = i
            return
        if new_key and name < self._walk[0]:
            self._walk_valid = 0

    def set_edges(self, name: str, blockers: Set[str]) -> None:
        """Point ``name``'s outgoing edges at ``blockers``, keeping the
        reverse index in sync, flagging ``name`` dirty if it gained any
        edge, and cutting the cached walk if the set changed."""
        old = self.waits_for.get(name)
        self.waits_for[name] = blockers
        if old:
            for b in old - blockers:  # repro: noqa[RPR001] independent per-edge removals from the reverse index
                self._drop_reverse(b, name)
            added = blockers - old
            if old != blockers:
                self._cut_step(name, blockers)
        else:
            added = blockers
            self._cut_step(name, blockers, new_key=old is None)
        for b in added:  # repro: noqa[RPR001] independent per-edge inserts into the reverse index
            self.blocked_by.setdefault(b, set()).add(name)
        if added:
            self._dirty.add(name)

    def add_edge_if_tracked(self, waiter: str, blocker: str) -> None:
        """Add ``waiter -> blocker`` only if ``waiter`` already has a
        tracked edge set (the acquire-side in-place extension: a fresh
        grant can only extend a queued waiter's blocker set)."""
        edges = self.waits_for.get(waiter)
        if edges is not None and blocker not in edges:
            edges.add(blocker)
            self.blocked_by.setdefault(blocker, set()).add(waiter)
            self._dirty.add(waiter)
            self._cut_step(waiter, edges)

    def drop_edges(self, name: str) -> None:
        """Remove ``name``'s outgoing edges (and their reverse entries).
        Pure removal — certificates survive."""
        old = self.waits_for.pop(name, None)
        if old is not None:
            for b in old:  # repro: noqa[RPR001] independent per-edge removals from the reverse index
                self._drop_reverse(b, name)
            self._cut_step(name, ())

    def remove_inbound(self, name: str) -> Set[str]:
        """Eagerly prune every edge aimed *at* ``name`` (a departing
        blocker blocks nobody); returns the waiters that held such an edge
        so the caller can catch up their accounting."""
        waiters = self.blocked_by.pop(name, None)
        if not waiters:
            return set()
        for w in waiters:  # repro: noqa[RPR001] independent per-waiter edge drops; caller gets the full set
            edges = self.waits_for.get(w)
            if edges is not None and name in edges:
                edges.discard(name)
                self._cut_step(w, edges)
        return waiters

    def forget(self, name: str) -> Set[str]:
        """Drop every trace of ``name`` (departure/restart): outgoing
        edges, inbound edges, certificate, dirtiness.  Returns the waiters
        whose edge at ``name`` was pruned."""
        self.drop_edges(name)
        self._clean.discard(name)
        self._dirty.discard(name)
        return self.remove_inbound(name)

    def _drop_reverse(self, blocker: str, waiter: str) -> None:
        waiters = self.blocked_by.get(blocker)
        if waiters is not None:
            waiters.discard(waiter)
            if not waiters:
                del self.blocked_by[blocker]

    # ------------------------------------------------------------------
    # Incremental cycle detection
    # ------------------------------------------------------------------

    def _flush_invalidations(self) -> None:
        """Un-certify every node that can currently reach a dirty source:
        only those can traverse an edge added since their certificates
        were issued.  Shrinking ``_clean`` cannot invalidate the cached
        walk (it was recorded without consulting certificates)."""
        if not self._dirty:
            return
        if self._clean:
            seen: Set[str] = set()
            work: List[str] = list(self._dirty)  # repro: noqa[RPR001] pure-reachability worklist; result is a set difference
            while work:
                n = work.pop()
                if n in seen:
                    continue
                seen.add(n)
                work.extend(self.blocked_by.get(n, ()))  # repro: noqa[RPR001] pure-reachability worklist; result is a set difference
            self._clean -= seen
        self._dirty.clear()

    def _clear_walk(self) -> None:
        self._walk = []
        self._walk_index = {}
        self._walk_valid = 0

    def _record_walk(self, chain: List[str], index: Dict[str, int]) -> None:
        self._walk = chain
        self._walk_index = index
        self._walk_valid = len(chain)

    def _chain_resume(self) -> Optional[List[str]]:
        """Replay the untouched prefix of the cached walk for free and
        continue the first-sorted-neighbour chain from its end.  Returns
        the cycle (bit-identical to the reference DFS, which would walk
        the same chain), or ``None`` to fall back to the full DFS when
        the chain meets a sink or a certified node — the cases where the
        reference DFS would backtrack or skip instead of descending.

        The stored walk is truncated and extended in place, so a resumed
        detection costs O(dropped suffix + new steps), not O(prefix);
        ``last_visits`` records the pushes either way (a failed resume's
        pushes are counted on top of the fallback's)."""
        graph = self.waits_for
        walk = self._walk
        index = self._walk_index
        if self._walk_valid < len(walk):
            for n in walk[self._walk_valid:]:
                del index[n]
            del walk[self._walk_valid:]
        visits = 0
        cur = walk[-1]
        while True:
            nbrs = graph.get(cur)
            if not nbrs:
                self.last_visits = visits
                return None  # sink: the reference DFS would backtrack
            nxt = min(nbrs)
            if nxt in self._clean:
                self.last_visits = visits
                return None  # certificate skip: not a pure chain step
            j = index.get(nxt)
            if j is not None:
                # Back edge into the chain: the cycle, oriented exactly as
                # cycle_from_parents reconstructs it (cur back to nxt).
                self._walk_valid = len(walk)
                self.last_visits = visits
                return list(reversed(walk[j:]))
            walk.append(nxt)
            index[nxt] = len(walk) - 1
            visits += 1
            cur = nxt

    def _full_dfs(self) -> Optional[List[str]]:
        """The reference three-colour DFS with certificate skips.  Records
        the walk for the next detection when the run was a pure chain
        (single root, no backtracking, no certificate consulted — the
        sink-free deadlock-path shape); blackened nodes earn certificates
        either way."""
        graph = self.waits_for
        clean = self._clean
        visits = 0
        pure = True
        color: Dict[str, int] = {}
        parent: Dict[str, Optional[str]] = {}
        order: List[str] = []
        cycle: Optional[List[str]] = None
        for root in sorted(graph):
            if root in clean:
                pure = False  # the reference would explore this root
                continue
            if color.get(root, 0) != 0:
                continue
            parent[root] = None
            color[root] = 1
            visits += 1
            order.append(root)
            stack = [(root, iter(sorted(graph.get(root, ()))))]
            while stack and cycle is None:
                node, neighbours = stack[-1]
                descended = False
                for nxt in neighbours:
                    if nxt in clean:
                        pure = False
                        continue  # certified acyclic: exploring it would
                        # blacken its subtree and find nothing
                    c = color.get(nxt, 0)
                    if c == 0:
                        parent[nxt] = node
                        color[nxt] = 1
                        visits += 1
                        order.append(nxt)
                        stack.append((nxt, iter(sorted(graph.get(nxt, ())))))
                        descended = True
                        break
                    if c == 1:
                        cycle = cycle_from_parents(parent, node, nxt)
                        break
                    # c == 2: blackened this run; pure is already False
                    # (a pop happened before any node could turn black).
                if cycle is not None:
                    break
                if not descended:
                    color[node] = 2
                    stack.pop()
                    pure = False
                    # Blackened with every path out explored: a sound
                    # certificate even if a later root finds a cycle.
                    clean.add(node)
            if cycle is not None:
                break
        if cycle is not None and pure:
            # No pops and no skips: the push order *is* the chain.
            self._record_walk(order, {n: i for i, n in enumerate(order)})
        else:
            self._clear_walk()
        self.last_visits = visits
        return cycle

    def find_cycle(self) -> Optional[List[str]]:
        """Incremental detection: bit-identical to
        :func:`repro.sim.deadlock.find_cycle` on :attr:`waits_for`."""
        self._flush_invalidations()
        if not self.waits_for:
            self._clear_walk()
            self.last_visits = 0
            return None
        spilled = 0
        if self._walk and self._walk_valid > 0:
            cycle = self._chain_resume()
            if cycle is not None:
                return cycle
            spilled = self.last_visits  # a failed resume's pushes count too
        cycle = self._full_dfs()
        self.last_visits += spilled
        return cycle

    # ------------------------------------------------------------------
    # Introspection (tests / invariants)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Set[str]]:
        """A copy of the forward edges (the oracle's input shape)."""
        return {n: set(bs) for n, bs in self.waits_for.items()}

    def check_consistency(self) -> None:
        """Assert the forward edges and reverse index mirror each other
        exactly (test helper)."""
        forward = {
            (w, b) for w, bs in self.waits_for.items() for b in bs
        }
        reverse = {
            (w, b) for b, ws in self.blocked_by.items() for w in ws
        }
        assert forward == reverse, (
            f"waits_for/blocked_by diverge: {forward ^ reverse}"
        )
        assert all(self.blocked_by.values()), "empty reverse buckets leaked"

    def clean_nodes(self) -> Set[str]:
        """The certified-acyclic set (test helper)."""
        return set(self._clean)
