"""Unified BENCH_*.json artifact writer.

The stress benches used to each hand-roll their own ``json.dumps`` payload,
so the uploaded artifacts drifted apart (different key names, no schema
marker, no record of the worker count or wall clock).  Every bench — and
the ``python -m repro.bench`` CLI — now writes through
:func:`write_bench_artifact`, so the perf trajectory is machine-comparable
across PRs:

.. code-block:: json

    {
      "bench": "<bench name>",
      "schema": 1,
      "scale": 1.0,            // BENCH_SMOKE_SCALE the run used
      "workers": 0,            // grid worker processes (0 = in-process)
      "wall_s": 12.34,         // harness wall clock, if measured
      "rows": [ ... ],         // per-cell dict rows (CellResult.row() or
                               //  bench-specific comparison rows); grid
                               //  rows carry engine work counters under
                               //  rows[*]["work"] (cell_rows_with_work)
      "extra": { ... }         // optional bench-specific payload
    }
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

#: Bump when the payload layout changes incompatibly.
SCHEMA_VERSION = 1

#: Row keys that may legitimately be absent from some rows of one
#: artifact (work counters exist only for cells that measured them).
OPTIONAL_ROW_KEYS = frozenset({"work"})


def _validate_rows(rows: Sequence[Dict[str, object]]) -> None:
    """Artifact rows must be string-keyed mappings with one shared key set
    (modulo :data:`OPTIONAL_ROW_KEYS`) — a ragged table silently breaks
    the cross-PR perf comparison the unified schema exists for."""
    for i, row in enumerate(rows):
        if not isinstance(row, Mapping):
            raise TypeError(f"row {i} is not a mapping: {type(row).__name__}")
        bad = [k for k in row if not isinstance(k, str)]
        if bad:
            raise TypeError(f"row {i} has non-string key(s): {bad!r}")
    if not rows:
        return
    base = set(rows[0]) - OPTIONAL_ROW_KEYS
    for i, row in enumerate(rows):
        keys = set(row) - OPTIONAL_ROW_KEYS
        if keys != base:
            raise ValueError(
                f"row {i} keys {sorted(keys)} do not match row 0 keys "
                f"{sorted(base)}"
            )


def bench_artifact(
    bench: str,
    rows: Sequence[Dict[str, object]],
    *,
    scale: float = 1.0,
    workers: int = 0,
    wall_s: Optional[float] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the unified artifact payload (see the module docstring).

    Raises ``TypeError``/``ValueError`` for rows that are not string-keyed
    mappings sharing one key set (see :func:`_validate_rows`).
    """
    _validate_rows(rows)
    payload: Dict[str, object] = {
        "bench": bench,
        "schema": SCHEMA_VERSION,
        "scale": scale,
        "workers": workers,
        "rows": list(rows),
    }
    if wall_s is not None:
        payload["wall_s"] = round(wall_s, 3)
    if extra:
        payload["extra"] = dict(extra)
    return payload


def write_bench_artifact(
    path: Union[str, Path],
    bench: str,
    rows: Sequence[Dict[str, object]],
    **kwargs,
) -> Dict[str, object]:
    """Write the unified artifact to ``path``, creating missing parent
    directories (``--out path/to/new_dir/file.json`` must not crash a
    bench run at the very end); returns the payload."""
    payload = bench_artifact(bench, rows, **kwargs)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def cell_rows_with_work(cells) -> List[Dict[str, object]]:
    """Render ``CellResult`` objects as artifact rows with their mean work
    counters attached under ``"work"`` (kept out of the printable
    ``row()`` — work counters measure the engine, not the workload)."""
    rows: List[Dict[str, object]] = []
    for cell in cells:
        row = cell.row()
        if cell.work_means:
            row["work"] = {k: round(v, 2) for k, v in cell.work_means.items()}
        rows.append(row)
    return rows
