"""The simulator's authoritative lock table.

Tracks, per entity, which transactions hold which mode(s).  Grant rule: a
request conflicts if any *other* transaction holds a mode that conflicts
(only SHARED/SHARED is compatible).

Two facilities support the event-driven scheduler:

* **Mode multisets.** A transaction may hold SHARED and EXCLUSIVE on the
  same entity at once (a lock upgrade).  Each mode is tracked separately,
  so ``release(txn, entity, SHARED)`` after an upgrade removes only the
  shared grant and the exclusive one stays visible — the historical
  behaviour of overwriting the mode made that release a silent no-op and
  leaked the exclusive lock until abort.
* **Per-entity wait queues.** Blocked transactions register as waiters via
  :meth:`add_waiter`; :meth:`release` and :meth:`release_all_wake` return
  the *wake-up set* — the waiters whose requested mode became grantable on
  an entity whose holder set weakened — so the scheduler re-examines
  exactly the sessions a release might have unblocked instead of
  rescanning every live session each tick.  Waiters that still conflict
  with the remaining holders (an EXCLUSIVE waiter across another holder's
  EXCLUSIVE→SHARED downgrade, say) are not in the set: waking them was a
  pure wasted re-classification.  :meth:`waiter_modes` exposes the queued
  requests so the scheduler can maintain those waiters' waits-for edges
  without re-classifying them.

**Sharding.**  The table partitions its per-entity state (holder maps and
wait queues) across ``shards`` entity-hash shards behind this unchanged
public API.  Every query and mutation is per-entity and therefore
shard-local; the only cross-entity walks (``release_all`` and its wake
variant) iterate the *per-transaction* held index, which stays global and
sorted — so any shard count produces byte-identical grants, wake-up sets,
and release orders, and ``shards=1`` is exactly the historical single-dict
table.  The partitioning is what lets a future parallel scheduler hand
each shard to its own worker without touching callers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.operations import LockMode
from ..core.steps import Entity


class _Shard:
    """Per-entity state of one partition: holder maps and wait queues."""

    __slots__ = ("holders", "waiters")

    def __init__(self) -> None:
        #: Entity -> {transaction: set of granted modes}.
        self.holders: Dict[Entity, Dict[str, Set[LockMode]]] = {}
        #: Per-entity wait queue: waiter -> requested mode (arrival order).
        self.waiters: Dict[Entity, Dict[str, LockMode]] = {}


class LockTable:
    """Entity -> {transaction: modes} with conflict queries and wait
    queues, partitioned over ``shards`` entity-hash shards (``shards=1``,
    the default, is the single-partition reference)."""

    def __init__(self, shards: int = 1) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self._parts = [_Shard() for _ in range(shards)]
        #: Per-transaction index of held entities (O(footprint)
        #: release_all); global — it orders the cross-entity walks.
        self._held: Dict[str, Set[Entity]] = {}
        #: Reverse waiter index: waiter -> entity it waits on (global; a
        #: transaction waits on at most one entity at a time).
        self._waiting_on: Dict[str, Entity] = {}
        #: Opt-in change log for replica-owning executors: the set of
        #: entities whose holder map mutated since the last drain.  Off
        #: (``None``) by default — tracking costs one ``set.add`` per
        #: holder mutation, and only the process executor reads it.
        self._delta_log: Optional[Set[Entity]] = None

    # ------------------------------------------------------------------
    # Holder-delta extraction (process-executor replica protocol)
    # ------------------------------------------------------------------

    def enable_delta_tracking(self) -> None:
        """Start recording which entities' holder maps change.  Must be
        called before any grant so the first :meth:`take_holder_delta`
        bootstraps a complete replica (the delta of everything-from-empty
        is the full state)."""
        if self._delta_log is None:
            self._delta_log = set()

    def take_holder_delta(self) -> Dict[Entity, Optional[Dict[str, LockMode]]]:
        """Drain the change log: entity -> current effective-mode holder
        map (``None`` when no holders remain).  Exactly the inputs of
        :meth:`blockers` for those entities, which is what a worker-side
        replica needs to reproduce its verdicts byte-identically."""
        log = self._delta_log
        if not log:
            return {}
        delta: Dict[Entity, Optional[Dict[str, LockMode]]] = {}
        for entity in sorted(log, key=repr):  # deterministic payload bytes
            held = self._part(entity).holders.get(entity)
            delta[entity] = (
                {txn: self._effective(modes) for txn, modes in held.items()}
                if held
                else None
            )
        log.clear()
        return delta

    def _mark_changed(self, entity: Entity) -> None:
        if self._delta_log is not None:
            self._delta_log.add(entity)

    def shard_of(self, entity: Entity) -> int:
        """Shard index of ``entity`` under the entity-hash rule — the
        query the phase pipeline uses to key shard-local work sets.  It is
        the single home of the partitioning rule: :meth:`_part` routes
        through it, so slice routing and table routing agree by
        construction (asserted by the randomized partition tests)."""
        return hash(entity) % self.shards

    def _part(self, entity: Entity) -> _Shard:
        return self._parts[self.shard_of(entity)]

    # ------------------------------------------------------------------
    # Holder queries
    # ------------------------------------------------------------------

    @staticmethod
    def _effective(modes: Set[LockMode]) -> LockMode:
        return (
            LockMode.EXCLUSIVE if LockMode.EXCLUSIVE in modes else LockMode.SHARED
        )

    def holders(self, entity: Entity) -> Dict[str, LockMode]:
        """Transactions holding ``entity``, mapped to their strongest mode."""
        return {
            txn: self._effective(modes)
            for txn, modes in self._part(entity).holders.get(entity, {}).items()
        }

    def mode_held(self, txn: str, entity: Entity) -> Optional[LockMode]:
        modes = self._part(entity).holders.get(entity, {}).get(txn)
        return self._effective(modes) if modes else None

    def modes_held(self, txn: str, entity: Entity) -> FrozenSet[LockMode]:
        """Every mode ``txn`` holds on ``entity`` (both, after an upgrade)."""
        return frozenset(self._part(entity).holders.get(entity, {}).get(txn, ()))

    def blockers(self, txn: str, entity: Entity, mode: LockMode) -> List[str]:
        """Other transactions holding conflicting modes on ``entity``."""
        return [
            other
            for other, modes in self._part(entity).holders.get(entity, {}).items()
            if other != txn and mode.conflicts_with(self._effective(modes))
        ]

    def grantable(self, txn: str, entity: Entity, mode: LockMode) -> bool:
        return not self.blockers(txn, entity, mode)

    # ------------------------------------------------------------------
    # Grants and releases
    # ------------------------------------------------------------------

    def acquire(self, txn: str, entity: Entity, mode: LockMode) -> None:
        """Record a grant.  The caller must have checked :meth:`grantable`."""
        blockers = self.blockers(txn, entity, mode)
        if blockers:
            raise RuntimeError(
                f"{txn} acquires {mode} on {entity!r} despite holders {blockers}"
            )
        self._part(entity).holders.setdefault(entity, {}).setdefault(
            txn, set()
        ).add(mode)
        self._held.setdefault(txn, set()).add(entity)
        self._mark_changed(entity)

    def _drop(self, txn: str, entity: Entity, mode: LockMode) -> bool:
        """Remove one mode grant; True only if ``txn``'s *effective* hold on
        ``entity`` weakened (holder gone, or EXCLUSIVE downgraded to
        SHARED) — releasing the SHARED half of an upgrade changes nothing a
        waiter could be granted on, so it must not produce wake-ups.  The
        weaken rule itself lives in :meth:`would_weaken`."""
        weakened = self.would_weaken(txn, entity, mode)
        current = self._part(entity).holders.get(entity)
        modes = current.get(txn) if current is not None else None
        if modes is None or mode not in modes:
            return False
        modes.discard(mode)
        self._mark_changed(entity)
        if not modes:
            del current[txn]
            held = self._held.get(txn)
            if held is not None:
                held.discard(entity)
                if not held:
                    del self._held[txn]
            if not current:
                del self._part(entity).holders[entity]
        return weakened

    def would_weaken(self, txn: str, entity: Entity, mode: LockMode) -> bool:
        """Whether releasing ``mode`` would weaken ``txn``'s effective hold
        on ``entity``.  The single home of the weaken rule: :meth:`_drop`
        returns this predicate after mutating, and the scheduler queries it
        up front to skip waits-for edge maintenance for releases that
        change nothing a waiter could be granted on."""
        modes = self._part(entity).holders.get(entity, {}).get(txn)
        if not modes or mode not in modes:
            return False
        if len(modes) == 1:
            return True
        return self._effective(modes) is not self._effective(modes - {mode})

    def release(self, txn: str, entity: Entity, mode: LockMode) -> List[str]:
        """Release one mode grant; returns the wake-up set — the waiters on
        ``entity`` (in arrival order) whose requested mode is grantable now
        that the holder set weakened.  Waiters that still conflict with the
        remaining holders are left queued and unwoken."""
        if self._drop(txn, entity, mode):
            return [
                w
                for w, wanted in self._part(entity).waiters.get(entity, {}).items()
                if w != txn and self.grantable(w, entity, wanted)
            ]
        return []

    def release_all(self, txn: str) -> List[Tuple[Entity, LockMode]]:
        """Release every lock of ``txn`` (abort/commit path); returns what
        was released (entity, strongest mode).  Use :meth:`waiters_of` on
        the released entities — or :meth:`release_all_wake` — for wake-ups.
        """
        self.remove_waiter(txn)  # a departing txn must not stay queued
        released: List[Tuple[Entity, LockMode]] = []
        for entity in sorted(self._held.get(txn, ()), key=repr):
            holders = self._part(entity).holders
            modes = holders[entity].pop(txn)
            self._mark_changed(entity)
            released.append((entity, self._effective(modes)))
            if not holders[entity]:
                del holders[entity]
        self._held.pop(txn, None)
        return released

    def release_all_wake(self, txn: str) -> Tuple[List[Tuple[Entity, LockMode]], List[str]]:
        """:meth:`release_all` plus the combined wake-up set of every
        released entity's now-grantable waiters."""
        released = self.release_all(txn)
        woken: List[str] = []
        seen: Set[str] = set()
        for entity, _ in released:
            for w, wanted in self._part(entity).waiters.get(entity, {}).items():
                if w != txn and w not in seen and self.grantable(w, entity, wanted):
                    seen.add(w)
                    woken.append(w)
        return released, woken

    # ------------------------------------------------------------------
    # Wait queues
    # ------------------------------------------------------------------

    def add_waiter(self, txn: str, entity: Entity, mode: LockMode) -> None:
        """Register ``txn`` as blocked on ``entity`` wanting ``mode``.  A
        transaction waits on at most one entity at a time (the simulator
        blocks on the pending step only)."""
        prev = self._waiting_on.get(txn)
        if prev is not None and prev != entity:
            self.remove_waiter(txn)
        self._part(entity).waiters.setdefault(entity, {})[txn] = mode
        self._waiting_on[txn] = entity

    def remove_waiter(self, txn: str) -> None:
        entity = self._waiting_on.pop(txn, None)
        if entity is None:
            return
        waiters = self._part(entity).waiters
        queue = waiters.get(entity)
        if queue is not None:
            queue.pop(txn, None)
            if not queue:
                del waiters[entity]

    def waiters_of(self, entity: Entity) -> List[str]:
        """Waiters queued on ``entity``, in arrival order."""
        return list(self._part(entity).waiters.get(entity, {}))

    def waiter_modes(self, entity: Entity) -> List[Tuple[str, LockMode]]:
        """Waiters queued on ``entity`` with their requested modes, in
        arrival order — the scheduler's edge-maintenance query: after a
        release whose wake-up set was grantability-filtered, the still
        blocked waiters' waits-for edges are re-derived from these requests
        instead of re-classifying the sessions."""
        return list(self._part(entity).waiters.get(entity, {}).items())

    def waiting_entity(self, txn: str) -> Optional[Entity]:
        return self._waiting_on.get(txn)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def held_by(self, txn: str) -> Dict[Entity, LockMode]:
        return {
            entity: self._effective(self._part(entity).holders[entity][txn])
            for entity in sorted(self._held.get(txn, ()), key=repr)
        }

    def locked_entities(self) -> FrozenSet[Entity]:
        return frozenset(
            entity for part in self._parts for entity in part.holders  # repro: noqa[RPR005] read-only whole-table introspection for tests; never on a shard-local path
        )
