"""The simulator's authoritative lock table.

Tracks, per entity, which transactions hold which mode.  Grant rule: a
request conflicts if any *other* transaction holds a mode that conflicts
(only SHARED/SHARED is compatible).  The table does not queue — the
scheduler retries blocked sessions — but it reports the holders blocking a
request so the scheduler can build the waits-for graph for deadlock
detection.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.operations import LockMode
from ..core.steps import Entity


class LockTable:
    """Entity -> {transaction: mode} with conflict queries."""

    def __init__(self) -> None:
        self._holders: Dict[Entity, Dict[str, LockMode]] = {}

    def holders(self, entity: Entity) -> Dict[str, LockMode]:
        return dict(self._holders.get(entity, {}))

    def mode_held(self, txn: str, entity: Entity) -> Optional[LockMode]:
        return self._holders.get(entity, {}).get(txn)

    def blockers(self, txn: str, entity: Entity, mode: LockMode) -> List[str]:
        """Other transactions holding conflicting modes on ``entity``."""
        return [
            other
            for other, other_mode in self._holders.get(entity, {}).items()
            if other != txn and mode.conflicts_with(other_mode)
        ]

    def grantable(self, txn: str, entity: Entity, mode: LockMode) -> bool:
        return not self.blockers(txn, entity, mode)

    def acquire(self, txn: str, entity: Entity, mode: LockMode) -> None:
        """Record a grant.  The caller must have checked :meth:`grantable`."""
        blockers = self.blockers(txn, entity, mode)
        if blockers:
            raise RuntimeError(
                f"{txn} acquires {mode} on {entity!r} despite holders {blockers}"
            )
        current = self._holders.setdefault(entity, {})
        prev = current.get(txn)
        if prev is None or mode is LockMode.EXCLUSIVE:
            current[txn] = mode

    def release(self, txn: str, entity: Entity, mode: LockMode) -> None:
        current = self._holders.get(entity, {})
        if current.get(txn) is mode:
            del current[txn]
            if not current:
                self._holders.pop(entity, None)

    def release_all(self, txn: str) -> List[Tuple[Entity, LockMode]]:
        """Release every lock of ``txn`` (abort path); returns what was
        released."""
        released: List[Tuple[Entity, LockMode]] = []
        for entity in list(self._holders):
            mode = self._holders[entity].pop(txn, None)
            if mode is not None:
                released.append((entity, mode))
            if not self._holders[entity]:
                del self._holders[entity]
        return released

    def held_by(self, txn: str) -> Dict[Entity, LockMode]:
        return {
            entity: modes[txn]
            for entity, modes in self._holders.items()
            if txn in modes
        }

    def locked_entities(self) -> FrozenSet[Entity]:
        return frozenset(self._holders)
