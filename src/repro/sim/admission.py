"""The admission layer of the scheduler kernel: cached classifications,
invalidation-channel subscriptions, and dirty-set routing.

The event engine caches each live session's scheduling classification
(runnable / lock-wait / policy-wait) and re-derives it only when an event
that can change it occurs.  :class:`AdmissionCache` owns the state that
decides *who gets re-examined when*:

* ``dirty`` — sessions whose cached classification must be re-derived on
  the next tick (woken waiters, invalidated watchers, executors, fresh
  admissions, channel-notification hits);
* ``dynamic`` — live dynamic sessions that declare no invalidation
  dependencies: the conservative fallback, re-examined every tick;
* ``complete`` — non-dynamic sessions whose script drained (commit next
  tick);
* ``phase1`` — dependency-declaring sessions due a replanning peek (fresh
  admission or just executed: the peek may commit or abort them);
* ``runnable`` — names currently classified runnable (phase 3 picks among
  these);
* ``watchers`` — runnable sessions watching their pending lock's entity,
  so a concurrent acquire invalidates exactly them;
* the **invalidation-channel subscriptions** (channel → subscribers and
  the reverse index): sessions that declare
  ``admission_dependencies()`` are subscribed to the channels whose
  change can flip their cached verdict, and
  ``PolicyContext.notify_changed`` routes into the dirty set through
  :meth:`policy_changed`.

:class:`Classifier` is the "what do they become" half: it re-derives one
session's cached classification (one iteration of the naive engine's
Phase-2 loop) against the lock table and the waits-for graph, maintains
the lazy blocked-tick accounting around cache hits, and keeps blocked
waiters' waits-for edges fresh across grants and grantability-filtered
releases without re-classifying them.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from ..core.steps import Entity
from ..policies.base import Admission, PolicySession
from .lock_table import LockTable
from .live import LOCK_WAIT, NEW, POLICY_WAIT, RUNNABLE, LiveEntry
from .metrics import Metrics, TxnRecord
from .waits_for import WaitsForGraph

__all__ = [
    "AdmissionCache",
    "Classifier",
    "LiveEntry",
    "NEW",
    "RUNNABLE",
    "LOCK_WAIT",
    "POLICY_WAIT",
]


class AdmissionCache:
    """Who-to-re-examine bookkeeping of the event engine (see the module
    docstring).  Holds references to the run's live table and metrics so
    routing can filter departed sessions and count wakeups/invalidations.
    """

    def __init__(self, live: Dict[str, object], metrics: Metrics) -> None:
        self._live = live
        self._metrics = metrics
        self.dirty: Set[str] = set()
        self.dynamic: Set[str] = set()
        self.complete: Set[str] = set()
        self.phase1: Set[str] = set()
        self.runnable: Set[str] = set()
        self.watchers: Dict[Entity, Set[str]] = {}
        #: Invalidation-channel subscriptions: channel -> subscribed names,
        #: and the reverse index used to re-subscribe/unsubscribe.
        self.channel_subs: Dict[Hashable, Set[str]] = {}
        self.session_subs: Dict[str, Tuple[Hashable, ...]] = {}

    # ------------------------------------------------------------------
    # Registration and teardown
    # ------------------------------------------------------------------

    def register(
        self, name: str, *, tracks_deps: bool, dynamic: bool, complete: bool
    ) -> None:
        """Route a freshly admitted (or restarted) session into the cache:
        dependency-declaring sessions get a phase-1 peek plus an initial
        classification; no-declaration dynamic ones join the every-tick
        set; finished scripts go straight to ``complete``; everyone else
        is simply dirty."""
        if tracks_deps:
            self.phase1.add(name)
            self.dirty.add(name)
        elif dynamic:
            self.dynamic.add(name)
        elif complete:
            self.complete.add(name)
        else:
            self.dirty.add(name)

    def forget(self, name: str) -> None:
        """Drop every piece of routing state for a departed session."""
        self.dirty.discard(name)
        self.dynamic.discard(name)
        self.complete.discard(name)
        self.phase1.discard(name)
        self.runnable.discard(name)
        self.subscribe(name, ())

    # ------------------------------------------------------------------
    # Invalidation channels
    # ------------------------------------------------------------------

    def subscribe(self, name: str, channels: Iterable[Hashable]) -> None:
        """Point the session's subscriptions at ``channels`` (re-read from
        ``admission_dependencies`` at every classification, since the
        relevant region moves with the pending step)."""
        new = tuple(dict.fromkeys(channels))
        old = self.session_subs.get(name, ())
        if new == old:
            return
        for ch in old:
            subs = self.channel_subs.get(ch)
            if subs is not None:
                subs.discard(name)
                if not subs:
                    del self.channel_subs[ch]
        if new:
            self.session_subs[name] = new
            for ch in new:
                self.channel_subs.setdefault(ch, set()).add(name)
        else:
            self.session_subs.pop(name, None)

    def policy_changed(self, channels: Tuple[Hashable, ...]) -> None:
        """Context-emitted change notification: mark every subscriber of a
        changed channel dirty, so the next tick re-derives exactly the
        cached verdicts this mutation can flip."""
        m = self._metrics
        for ch in channels:
            subs = self.channel_subs.get(ch)
            if not subs:
                continue
            for n in subs:  # repro: noqa[RPR001] set-membership adds plus a counter; order-insensitive
                if n in self._live and n not in self.dirty:
                    self.dirty.add(n)
                    m.invalidations += 1

    # ------------------------------------------------------------------
    # Dirty-set routing
    # ------------------------------------------------------------------

    def wake(self, names: Iterable[str]) -> None:
        """A release returned these waiters in its wake-up set."""
        for n in names:
            if n in self._live and n not in self.dirty:
                self.dirty.add(n)
                self._metrics.wakeups += 1

    def mark_dirty(
        self, names: Iterable[str], exclude: Optional[str] = None
    ) -> None:
        for n in names:
            if n != exclude and n in self._live:
                self.dirty.add(n)

    # ------------------------------------------------------------------
    # Watchers
    # ------------------------------------------------------------------

    def watch(self, entity: Entity, name: str) -> None:
        """Register a runnable session as watching its pending lock's
        entity (a concurrent acquire must invalidate it)."""
        self.watchers.setdefault(entity, set()).add(name)

    def unwatch(self, entity: Entity, name: str) -> None:
        watching = self.watchers.get(entity)
        if watching is not None:
            watching.discard(name)
            if not watching:
                del self.watchers[entity]

    # ------------------------------------------------------------------
    # Tick queries
    # ------------------------------------------------------------------

    def phase1_candidates(self) -> List[str]:
        """Sessions phase 1 must peek this tick (drains ``phase1``); the
        caller sorts by admission order."""
        live = self._live
        candidates = [  # repro: noqa[RPR001] the caller sorts candidates by admission seq
            n for n in self.complete | self.dynamic | self.phase1 if n in live
        ]
        self.phase1.clear()
        return candidates

    def take_check_set(self) -> List[str]:
        """Sessions phase 2 must re-classify this tick, sorted (drains
        ``dirty``; every-tick dynamic sessions are always included)."""
        live = self._live
        check = [  # repro: noqa[RPR001] sorted before return
            n
            for n in self.dirty | self.dynamic
            if n in live and n not in self.complete
        ]
        self.dirty.clear()
        return sorted(check)


class Classifier:
    """Re-derives cached classifications against the sibling layers (lock
    table, waits-for graph) and keeps their bookkeeping — waiter queues,
    waits-for edges, watchers, lazy blocked-tick accounting — consistent
    with every transition (see the module docstring)."""

    def __init__(
        self,
        live: Dict[str, LiveEntry],
        metrics: Metrics,
        table: LockTable,
        graph: WaitsForGraph,
        cache: AdmissionCache,
    ) -> None:
        self.live = live
        self.metrics = metrics
        self.table = table
        self.graph = graph
        self.cache = cache

    # ------------------------------------------------------------------
    # Lazy blocked-tick accounting
    # ------------------------------------------------------------------

    def accrue(self, entry: LiveEntry, through: int) -> None:
        """Catch a blocked session's lazy blocked-tick accounting up
        through tick ``through`` (it sat in the same blocked state the
        whole time — anything that could have changed it would have
        re-examined it sooner)."""
        if entry.state == LOCK_WAIT:
            lock_wait = True
        elif entry.state == POLICY_WAIT:
            lock_wait = False
        else:
            return
        skipped = through - entry.accrued_to
        if skipped > 0:
            self.metrics.accrue_blocked(entry.record, lock_wait, skipped)
            entry.accrued_to = through

    # ------------------------------------------------------------------
    # Classification transitions
    # ------------------------------------------------------------------

    def clear(self, entry: LiveEntry) -> None:
        """Tear down the session's cached classification: runnable flag,
        outgoing waits-for edges, waiter-queue registration, watcher."""
        name = entry.item.name
        self.cache.runnable.discard(name)
        self.graph.drop_edges(name)
        if entry.state == LOCK_WAIT:
            self.table.remove_waiter(name)
        if entry.watch_entity is not None:
            self.cache.unwatch(entry.watch_entity, name)
            entry.watch_entity = None
        entry.state = NEW

    def classify(
        self, entry: LiveEntry, aborts: List[Tuple[LiveEntry, str]]
    ) -> None:
        """Re-derive ``entry``'s scheduling state: one iteration of the
        naive Phase-2 loop, plus lazy accounting for the ticks skipped
        since the previous classification (during which the session
        necessarily sat in the same blocked state — nothing that could
        have changed it happened, or it would have been re-examined
        sooner)."""
        m = self.metrics
        name = entry.item.name
        now = m.ticks
        self.accrue(entry, now - 1)
        self.clear(entry)
        m.classify_checks += 1
        step = entry.session.peek()
        assert step is not None
        if entry.tracks_deps:
            deps = entry.session.admission_dependencies()
            self.cache.subscribe(name, deps if deps is not None else ())
        if entry.needs_admission:
            m.admission_checks += 1
            verdict = entry.session.admission()
            if verdict.verdict is Admission.ABORT:
                aborts.append((entry, verdict.reason or "policy violation"))
                return
            if verdict.verdict is Admission.WAIT:
                m.accrue_blocked(entry.record, False, 1)
                entry.state = POLICY_WAIT
                entry.accrued_to = now
                self.graph.set_edges(
                    name, {w for w in verdict.waiting_on if w in self.live}
                )
                return
        mode = step.lock_mode
        if step.is_lock and mode is not None:
            m.blocker_queries += 1
            blockers = self.table.blockers(name, step.entity, mode)
            if blockers:
                m.accrue_blocked(entry.record, True, 1)
                entry.state = LOCK_WAIT
                entry.accrued_to = now
                self.table.add_waiter(name, step.entity, mode)
                self.graph.set_edges(
                    name, {b for b in blockers if b in self.live}
                )
                return
            # Runnable with a pending lock: watch the entity so a concurrent
            # acquire invalidates this classification.
            self.cache.watch(step.entity, name)
            entry.watch_entity = step.entity
        entry.state = RUNNABLE
        self.cache.runnable.add(name)

    # ------------------------------------------------------------------
    # Lock-wait edge maintenance (no re-classification)
    # ------------------------------------------------------------------

    def refresh_lock_edges(self, releaser: str, entity: Entity) -> None:
        """A release by ``releaser`` may have dropped it from ``entity``'s
        conflicting holders without unblocking the remaining waiters (the
        wake-up set is grantability-filtered).  Their cached waits-for
        edges must not keep pointing at the releaser — the maintained
        graph would diverge from the naive engine's fresh rebuild at the
        next cycle search — so re-derive each still-blocked waiter's edge
        set from the table, without re-classifying the session."""
        m = self.metrics
        for waiter, wanted in self.table.waiter_modes(entity):
            if waiter == releaser or waiter in self.cache.dirty:
                continue  # dirty waiters are fully re-classified anyway
            entry = self.live.get(waiter)
            if entry is None or entry.state != LOCK_WAIT:
                continue
            m.blocker_queries += 1
            self.graph.set_edges(
                waiter,
                {
                    b
                    for b in self.table.blockers(waiter, entity, wanted)
                    if b in self.live
                },
            )

    def extend_lock_edges(self, holder: str, entity: Entity) -> None:
        """``holder`` just acquired a grant on ``entity``: a fresh grant
        cannot unblock a queued waiter, only extend its blocker set, so the
        new edge is added in place — the acquire-side twin of
        :meth:`refresh_lock_edges` (re-classifying every waiter here was
        O(waiters) full classifications per acquire on a hot entity)."""
        effective = self.table.mode_held(holder, entity)
        assert effective is not None
        for waiter, wanted in self.table.waiter_modes(entity):
            if waiter == holder or waiter in self.cache.dirty:
                continue  # dirty waiters are fully re-classified anyway
            entry = self.live.get(waiter)
            if entry is None or entry.state != LOCK_WAIT:
                continue
            if wanted.conflicts_with(effective):
                self.graph.add_edge_if_tracked(waiter, holder)
