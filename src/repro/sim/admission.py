"""The admission layer of the scheduler kernel: cached classifications,
invalidation-channel subscriptions, and dirty-set routing.

The event engine caches each live session's scheduling classification
(runnable / lock-wait / policy-wait) and re-derives it only when an event
that can change it occurs.  :class:`AdmissionCache` owns the state that
decides *who gets re-examined when*:

* ``dirty`` — sessions whose cached classification must be re-derived on
  the next tick (woken waiters, invalidated watchers, executors, fresh
  admissions, channel-notification hits);
* ``dynamic`` — live dynamic sessions that declare no invalidation
  dependencies: the conservative fallback, re-examined every tick;
* ``complete`` — non-dynamic sessions whose script drained (commit next
  tick);
* ``phase1`` — dependency-declaring sessions due a replanning peek (fresh
  admission or just executed: the peek may commit or abort them);
* ``runnable`` — names currently classified runnable (phase 3 picks among
  these);
* ``watchers`` — runnable sessions watching their pending lock's entity,
  so a concurrent acquire invalidates exactly them;
* the **invalidation-channel subscriptions** (channel → subscribers and
  the reverse index): sessions that declare
  ``admission_dependencies()`` are subscribed to the channels whose
  change can flip their cached verdict, and
  ``PolicyContext.notify_changed`` routes into the dirty set through
  :meth:`policy_changed`.

:class:`Classifier` is the "what do they become" half: it re-derives one
session's cached classification (one iteration of the naive engine's
Phase-2 loop) against the lock table and the waits-for graph, maintains
the lazy blocked-tick accounting around cache hits, and keeps blocked
waiters' waits-for edges fresh across grants and grantability-filtered
releases without re-classifying them.

The classification itself is split into two halves so the phase pipeline
(:mod:`repro.sim.executor`) can fan it out over shard-local work sets:

* :meth:`Classifier.derive` — the *pure read* half: peek the pending
  step, evaluate the admission verdict, query the lock table's holder
  maps, and package the outcome as a :class:`Decision` without mutating
  any scheduler state.  During the classify phase the holder maps and the
  live table are frozen (no acquire/release/commit happens mid-phase), so
  derivations of distinct sessions are independent and may run
  concurrently on shard workers.
* :meth:`Classifier.apply` — the *mutating* half: install a derived
  decision (accounting, counters, waiter queues, waits-for edges,
  watcher/runnable routing) in exactly the legacy interleaved order's
  mutation sequence.  Applies always run on the coordinator thread, at
  the executor's merge barrier, in shard-index order.

:meth:`Classifier.classify` remains the serial composition of the two —
``apply(entry, derive(entry))`` — and is the byte-identical reference the
parallel executor is equivalence-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from ..core.operations import LockMode
from ..core.steps import Entity
from ..policies.base import Admission, PolicySession
from .lock_table import LockTable
from .live import LOCK_WAIT, NEW, POLICY_WAIT, RUNNABLE, LiveEntry
from .metrics import Metrics, TxnRecord
from .waits_for import WaitsForGraph

#: Decision kind for a phase-2 policy abort (not a LiveEntry state — the
#: session never re-enters the cache; the scheduler aborts it after the
#: classify phase, in decision order).
ABORT = "abort"

__all__ = [
    "ABORT",
    "AdmissionCache",
    "Classifier",
    "Decision",
    "LiveEntry",
    "NEW",
    "RUNNABLE",
    "LOCK_WAIT",
    "POLICY_WAIT",
]


@dataclass
class Decision:
    """The pure outcome of one classification derivation — everything
    :meth:`Classifier.apply` needs to install the new state, and nothing
    else.  Produced by :meth:`Classifier.derive` (possibly on a shard
    worker), buffered per shard, applied at the merge barrier."""

    name: str
    #: One of RUNNABLE / LOCK_WAIT / POLICY_WAIT / ABORT.
    kind: str
    #: Abort reason (ABORT decisions only).
    reason: Optional[str] = None
    #: Waits-for edges to install (wait decisions only).
    edges: Optional[Set[str]] = None
    #: Pending lock's entity (LOCK_WAIT waiter queue / RUNNABLE watch).
    entity: Optional[Entity] = None
    #: Requested lock mode (LOCK_WAIT only).
    mode: Optional[LockMode] = None
    #: RUNNABLE with a pending lock: watch the entity for invalidation.
    watch: bool = False
    #: Invalidation channels to (re-)subscribe (dependency-declaring
    #: sessions only; ``None`` means "leave subscriptions alone").
    subscribe: Optional[Tuple[Hashable, ...]] = None
    #: Which work counters this derivation must be credited for.
    admission_checked: bool = False
    blockers_queried: bool = False


class AdmissionCache:
    """Who-to-re-examine bookkeeping of the event engine (see the module
    docstring).  Holds references to the run's live table and metrics so
    routing can filter departed sessions and count wakeups/invalidations.
    """

    def __init__(self, live: Dict[str, object], metrics: Metrics) -> None:
        self._live = live
        self._metrics = metrics
        self.dirty: Set[str] = set()
        self.dynamic: Set[str] = set()
        self.complete: Set[str] = set()
        self.phase1: Set[str] = set()
        self.runnable: Set[str] = set()
        self.watchers: Dict[Entity, Set[str]] = {}
        #: Invalidation-channel subscriptions: channel -> subscribed names,
        #: and the reverse index used to re-subscribe/unsubscribe.
        self.channel_subs: Dict[Hashable, Set[str]] = {}
        self.session_subs: Dict[str, Tuple[Hashable, ...]] = {}

    # ------------------------------------------------------------------
    # Registration and teardown
    # ------------------------------------------------------------------

    def register(
        self, name: str, *, tracks_deps: bool, dynamic: bool, complete: bool
    ) -> None:
        """Route a freshly admitted (or restarted) session into the cache:
        dependency-declaring sessions get a phase-1 peek plus an initial
        classification; no-declaration dynamic ones join the every-tick
        set; finished scripts go straight to ``complete``; everyone else
        is simply dirty."""
        if tracks_deps:
            self.phase1.add(name)
            self.dirty.add(name)
        elif dynamic:
            self.dynamic.add(name)
        elif complete:
            self.complete.add(name)
        else:
            self.dirty.add(name)

    def forget(self, name: str) -> None:
        """Drop every piece of routing state for a departed session."""
        self.dirty.discard(name)
        self.dynamic.discard(name)
        self.complete.discard(name)
        self.phase1.discard(name)
        self.runnable.discard(name)
        self.subscribe(name, ())

    # ------------------------------------------------------------------
    # Invalidation channels
    # ------------------------------------------------------------------

    def subscribe(self, name: str, channels: Iterable[Hashable]) -> None:
        """Point the session's subscriptions at ``channels`` (re-read from
        ``admission_dependencies`` at every classification, since the
        relevant region moves with the pending step)."""
        new = tuple(dict.fromkeys(channels))
        old = self.session_subs.get(name, ())
        if new == old:
            return
        for ch in old:
            subs = self.channel_subs.get(ch)
            if subs is not None:
                subs.discard(name)
                if not subs:
                    del self.channel_subs[ch]
        if new:
            self.session_subs[name] = new
            for ch in new:
                self.channel_subs.setdefault(ch, set()).add(name)
        else:
            self.session_subs.pop(name, None)

    def policy_changed(self, channels: Tuple[Hashable, ...]) -> None:
        """Context-emitted change notification: mark every subscriber of a
        changed channel dirty, so the next tick re-derives exactly the
        cached verdicts this mutation can flip."""
        m = self._metrics
        for ch in channels:
            subs = self.channel_subs.get(ch)
            if not subs:
                continue
            for n in subs:  # repro: noqa[RPR001] set-membership adds plus a counter; order-insensitive
                if n in self._live and n not in self.dirty:
                    self.dirty.add(n)
                    m.invalidations += 1

    # ------------------------------------------------------------------
    # Dirty-set routing
    # ------------------------------------------------------------------

    def wake(self, names: Iterable[str]) -> None:
        """A release returned these waiters in its wake-up set."""
        for n in names:
            if n in self._live and n not in self.dirty:
                self.dirty.add(n)
                self._metrics.wakeups += 1

    def mark_dirty(
        self, names: Iterable[str], exclude: Optional[str] = None
    ) -> None:
        for n in names:
            if n != exclude and n in self._live:
                self.dirty.add(n)

    # ------------------------------------------------------------------
    # Watchers
    # ------------------------------------------------------------------

    def watch(self, entity: Entity, name: str) -> None:
        """Register a runnable session as watching its pending lock's
        entity (a concurrent acquire must invalidate it)."""
        self.watchers.setdefault(entity, set()).add(name)

    def unwatch(self, entity: Entity, name: str) -> None:
        watching = self.watchers.get(entity)
        if watching is not None:
            watching.discard(name)
            if not watching:
                del self.watchers[entity]

    # ------------------------------------------------------------------
    # Tick queries
    # ------------------------------------------------------------------

    def phase1_candidates(self) -> List[str]:
        """Sessions phase 1 must peek this tick (drains ``phase1``); the
        caller sorts by admission order."""
        live = self._live
        candidates = [  # repro: noqa[RPR001] the caller sorts candidates by admission seq
            n for n in self.complete | self.dynamic | self.phase1 if n in live
        ]
        self.phase1.clear()
        return candidates

    def take_check_set(self) -> List[str]:
        """Sessions phase 2 must re-classify this tick, sorted (drains
        ``dirty``; every-tick dynamic sessions are always included)."""
        live = self._live
        check = [  # repro: noqa[RPR001] sorted before return
            n
            for n in self.dirty | self.dynamic
            if n in live and n not in self.complete
        ]
        self.dirty.clear()
        return sorted(check)

    # ------------------------------------------------------------------
    # Shard-local slices (phase pipeline)
    # ------------------------------------------------------------------

    def route(
        self, name: str, shard_of: Callable[[Entity], int]
    ) -> Tuple[Optional[int], Optional[str]]:
        """``(shard, spill_cause)`` for ``name``'s classification: which
        shard slice it belongs to (``shard`` is ``None`` for the global
        slice, in which case ``spill_cause`` names why).  Routing rules,
        in order:

        * a dependency-declaring session whose declared invalidation
          channels all hash to one shard routes there (its verdict can
          only flip on events homed on that shard); channels spanning
          shards spill with cause ``"dynamic"``;
        * everyone else — including admission-needing sessions, whose
          ``admission()`` call is a pure read of shared policy context
          (proven transitively by lint rule RPR007), so the derive half
          may run on any worker — routes to its pending step's entity
          shard: a lock derivation reads only that shard's holder map,
          every other derivation reads nothing;
        * only genuinely entity-less work remains coordinator-bound
          (cause ``"admission"`` / ``"entity_less"``).

        Routing happens at drain time, never cached: the pending step
        advances between ticks, so a stored shard hint would go stale."""
        entry = self._live.get(name)
        if entry is None:
            return None, "entity_less"
        if entry.tracks_deps:
            deps = entry.session.admission_dependencies()
            channels = tuple(deps) if deps is not None else ()
            homes = {shard_of(ch) for ch in channels}
            if len(homes) == 1:
                return min(homes), None
            if homes:
                return None, "dynamic"
            # Declared nothing: the verdict is step-local, so the pending
            # entity's shard is as good a home as any.
        step = entry.session.peek()
        if step is None or step.entity is None:
            cause = "admission" if entry.needs_admission else "entity_less"
            return None, cause
        return shard_of(step.entity), None

    def take_check_slices(
        self, shard_of: Callable[[Entity], int], shards: int
    ) -> Tuple[List[List[str]], List[str], Dict[str, int]]:
        """:meth:`take_check_set` partitioned into shard-local slices, the
        global slice, and this tick's per-cause spill tally (see
        :meth:`route`).  Each slice preserves the sorted order of the
        merged set, so the serial executor's sorted merge of all slices
        reproduces the legacy check sequence exactly."""
        slices: List[List[str]] = [[] for _ in range(shards)]
        global_slice: List[str] = []
        spill: Dict[str, int] = {}
        for n in self.take_check_set():
            s, cause = self.route(n, shard_of)
            if s is None:
                global_slice.append(n)
                spill[cause] = spill.get(cause, 0) + 1
            else:
                slices[s].append(n)
        return slices, global_slice, spill

    def runnable_slices(
        self, shard_of: Callable[[Entity], int], shards: int
    ) -> Tuple[List[List[str]], List[str]]:
        """The runnable set partitioned the same way (introspection for
        the partition-invariant property tests; phase 3 itself picks from
        the merged sorted set)."""
        slices: List[List[str]] = [[] for _ in range(shards)]
        global_slice: List[str] = []
        for n in sorted(self.runnable):
            s, _ = self.route(n, shard_of)
            (global_slice if s is None else slices[s]).append(n)
        return slices, global_slice

    def watcher_slices(
        self, shard_of: Callable[[Entity], int], shards: int
    ) -> List[Set[str]]:
        """Watcher names grouped by their watched entity's shard — every
        watcher set is keyed by a single entity, so each lands wholly in
        one shard slice (no global spill for watchers)."""
        slices: List[Set[str]] = [set() for _ in range(shards)]
        for entity, names in self.watchers.items():  # repro: noqa[RPR001] set-union buckets; order-insensitive
            slices[shard_of(entity)].update(names)
        return slices


class Classifier:
    """Re-derives cached classifications against the sibling layers (lock
    table, waits-for graph) and keeps their bookkeeping — waiter queues,
    waits-for edges, watchers, lazy blocked-tick accounting — consistent
    with every transition (see the module docstring)."""

    def __init__(
        self,
        live: Dict[str, LiveEntry],
        metrics: Metrics,
        table: LockTable,
        graph: WaitsForGraph,
        cache: AdmissionCache,
    ) -> None:
        self.live = live
        self.metrics = metrics
        self.table = table
        self.graph = graph
        self.cache = cache

    # ------------------------------------------------------------------
    # Lazy blocked-tick accounting
    # ------------------------------------------------------------------

    def accrue(self, entry: LiveEntry, through: int) -> None:
        """Catch a blocked session's lazy blocked-tick accounting up
        through tick ``through`` (it sat in the same blocked state the
        whole time — anything that could have changed it would have
        re-examined it sooner)."""
        if entry.state == LOCK_WAIT:
            lock_wait = True
        elif entry.state == POLICY_WAIT:
            lock_wait = False
        else:
            return
        skipped = through - entry.accrued_to
        if skipped > 0:
            self.metrics.accrue_blocked(entry.record, lock_wait, skipped)
            entry.accrued_to = through

    # ------------------------------------------------------------------
    # Classification transitions
    # ------------------------------------------------------------------

    def clear(self, entry: LiveEntry) -> None:
        """Tear down the session's cached classification: runnable flag,
        outgoing waits-for edges, waiter-queue registration, watcher."""
        name = entry.item.name
        self.cache.runnable.discard(name)
        self.graph.drop_edges(name)
        if entry.state == LOCK_WAIT:
            self.table.remove_waiter(name)
        if entry.watch_entity is not None:
            self.cache.unwatch(entry.watch_entity, name)
            entry.watch_entity = None
        entry.state = NEW

    def derive(self, entry: LiveEntry) -> Decision:
        """The pure-read half of a classification: one iteration of the
        naive Phase-2 loop with every mutation replaced by a field of the
        returned :class:`Decision`.  Reads the session's pending step, the
        policy verdict (a pure read of shared policy context, so admission
        sessions may derive on thread workers too; the process executor
        keeps them on the coordinator because the context is not
        replicated), the lock table's holder map for the pending entity,
        and the live table; during the classify phase all of these are
        frozen, so derivations of distinct sessions commute and may run on
        shard workers.  Lint rule RPR007 verifies the purity claim
        transitively: every write or mutation reachable from ``derive``
        through the whole-program call graph is a finding."""
        name = entry.item.name
        step = entry.session.peek()
        assert step is not None
        subscribe: Optional[Tuple[Hashable, ...]] = None
        if entry.tracks_deps:
            deps = entry.session.admission_dependencies()
            subscribe = tuple(deps) if deps is not None else ()
        admission_checked = False
        if entry.needs_admission:
            admission_checked = True
            verdict = entry.session.admission()
            if verdict.verdict is Admission.ABORT:
                return Decision(
                    name,
                    ABORT,
                    reason=verdict.reason or "policy violation",
                    subscribe=subscribe,
                    admission_checked=True,
                )
            if verdict.verdict is Admission.WAIT:
                return Decision(
                    name,
                    POLICY_WAIT,
                    edges={w for w in verdict.waiting_on if w in self.live},
                    subscribe=subscribe,
                    admission_checked=True,
                )
        mode = step.lock_mode
        if step.is_lock and mode is not None:
            blockers = self.table.blockers(name, step.entity, mode)
            if blockers:
                return Decision(
                    name,
                    LOCK_WAIT,
                    edges={b for b in blockers if b in self.live},
                    entity=step.entity,
                    mode=mode,
                    subscribe=subscribe,
                    admission_checked=admission_checked,
                    blockers_queried=True,
                )
            # Runnable with a pending lock: watch the entity so a concurrent
            # acquire invalidates this classification.
            return Decision(
                name,
                RUNNABLE,
                entity=step.entity,
                watch=True,
                subscribe=subscribe,
                admission_checked=admission_checked,
                blockers_queried=True,
            )
        return Decision(
            name,
            RUNNABLE,
            subscribe=subscribe,
            admission_checked=admission_checked,
        )

    def apply(
        self,
        entry: LiveEntry,
        decision: Decision,
        aborts: List[Tuple[LiveEntry, str]],
    ) -> None:
        """Install a derived decision — the mutating half of a
        classification, replaying the legacy interleaved sequence's
        mutation order exactly (lazy accounting, clear, counters,
        re-subscription, then the per-kind transition).  Coordinator
        thread only; the executor calls it at the merge barrier in
        shard-index order."""
        m = self.metrics
        name = entry.item.name
        now = m.ticks
        self.accrue(entry, now - 1)
        self.clear(entry)
        m.classify_checks += 1
        if decision.subscribe is not None:
            self.cache.subscribe(name, decision.subscribe)
        if decision.admission_checked:
            m.admission_checks += 1
        if decision.blockers_queried:
            m.blocker_queries += 1
        if decision.kind == ABORT:
            aborts.append((entry, decision.reason or "policy violation"))
            return
        if decision.kind == POLICY_WAIT:
            m.accrue_blocked(entry.record, False, 1)
            entry.state = POLICY_WAIT
            entry.accrued_to = now
            self.graph.set_edges(name, decision.edges or set())
            return
        if decision.kind == LOCK_WAIT:
            m.accrue_blocked(entry.record, True, 1)
            entry.state = LOCK_WAIT
            entry.accrued_to = now
            assert decision.entity is not None and decision.mode is not None
            self.table.add_waiter(name, decision.entity, decision.mode)
            self.graph.set_edges(name, decision.edges or set())
            return
        if decision.watch:
            assert decision.entity is not None
            self.cache.watch(decision.entity, name)
            entry.watch_entity = decision.entity
        entry.state = RUNNABLE
        self.cache.runnable.add(name)

    def classify(
        self, entry: LiveEntry, aborts: List[Tuple[LiveEntry, str]]
    ) -> None:
        """Re-derive ``entry``'s scheduling state: one iteration of the
        naive Phase-2 loop, plus lazy accounting for the ticks skipped
        since the previous classification (during which the session
        necessarily sat in the same blocked state — nothing that could
        have changed it happened, or it would have been re-examined
        sooner).  Serial composition of :meth:`derive` and :meth:`apply`
        — the byte-identical reference sequence the parallel executor is
        equivalence-tested against."""
        self.apply(entry, self.derive(entry), aborts)

    # ------------------------------------------------------------------
    # Lock-wait edge maintenance (no re-classification)
    # ------------------------------------------------------------------

    def refresh_lock_edges(self, releaser: str, entity: Entity) -> None:
        """A release by ``releaser`` may have dropped it from ``entity``'s
        conflicting holders without unblocking the remaining waiters (the
        wake-up set is grantability-filtered).  Their cached waits-for
        edges must not keep pointing at the releaser — the maintained
        graph would diverge from the naive engine's fresh rebuild at the
        next cycle search — so re-derive each still-blocked waiter's edge
        set from the table, without re-classifying the session."""
        m = self.metrics
        for waiter, wanted in self.table.waiter_modes(entity):
            if waiter == releaser or waiter in self.cache.dirty:
                continue  # dirty waiters are fully re-classified anyway
            entry = self.live.get(waiter)
            if entry is None or entry.state != LOCK_WAIT:
                continue
            m.blocker_queries += 1
            self.graph.set_edges(
                waiter,
                {
                    b
                    for b in self.table.blockers(waiter, entity, wanted)
                    if b in self.live
                },
            )

    def extend_lock_edges(self, holder: str, entity: Entity) -> None:
        """``holder`` just acquired a grant on ``entity``: a fresh grant
        cannot unblock a queued waiter, only extend its blocker set, so the
        new edge is added in place — the acquire-side twin of
        :meth:`refresh_lock_edges` (re-classifying every waiter here was
        O(waiters) full classifications per acquire on a hot entity)."""
        effective = self.table.mode_held(holder, entity)
        assert effective is not None
        for waiter, wanted in self.table.waiter_modes(entity):
            if waiter == holder or waiter in self.cache.dirty:
                continue  # dirty waiters are fully re-classified anyway
            entry = self.live.get(waiter)
            if entry is None or entry.state != LOCK_WAIT:
                continue
            if wanted.conflicts_with(effective):
                self.graph.add_edge_if_tracked(waiter, holder)
