"""The simulator's append-only event log with O(own events) erasure.

Aborted transactions leave no trace in the final schedule (no recovery
theory in the paper — an aborted attempt "never happened"), so the log
keeps a per-transaction index of recorded positions and an abort
*tombstones* exactly those instead of rebuilding the whole list;
:func:`assemble` skips tombstones and re-indexes each transaction's
surviving events.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.schedules import Event, Schedule
from ..core.steps import Step
from ..core.transactions import Transaction


class EventLog:
    """Recorded events plus the per-transaction position index."""

    def __init__(self) -> None:
        self.events: List[Optional[Event]] = []
        #: Per-transaction index into ``events`` (positions of the txn's
        #: recorded events), so an abort erases O(own events), not O(log).
        self.by_txn: Dict[str, List[int]] = {}

    def record(self, name: str, event: Event) -> None:
        self.by_txn.setdefault(name, []).append(len(self.events))
        self.events.append(event)

    def erase(self, name: str) -> None:
        """Drop an aborted transaction's events in O(own events):
        tombstone the indexed positions (:func:`assemble` skips them)
        instead of rebuilding the whole log."""
        for i in self.by_txn.pop(name, ()):
            self.events[i] = None

    def forget(self, name: str) -> None:
        """Make a committed transaction's events permanent (drops the
        erasure index)."""
        self.by_txn.pop(name, None)


def assemble(events: Sequence[Optional[Event]]) -> Schedule:
    """Build a Schedule from raw events, reconstructing each transaction
    from its own event subsequence (erased aborts tombstone their positions
    to ``None`` and leave per-transaction gaps in the recorded indices, so
    tombstones are skipped and events re-indexed)."""
    steps_by_txn: Dict[str, List[Step]] = {}
    reindexed: List[Event] = []
    for e in events:
        if e is None:
            continue  # erased by an abort
        seq = steps_by_txn.setdefault(e.txn, [])
        reindexed.append(Event(e.txn, len(seq), e.step))
        seq.append(e.step)
    txns = [Transaction(name, tuple(steps)) for name, steps in steps_by_txn.items()]
    return Schedule(txns, reindexed)


def truncated(names: Sequence[str], limit: int = 12) -> str:
    """Render a session-name list for an error message, truncating huge
    populations (a stalled 10,000-transaction run used to dump every
    name into the SimulationError text)."""
    names = list(names)
    if len(names) <= limit:
        return repr(names)
    shown = ", ".join(repr(n) for n in names[:limit])
    return f"[{shown}, ... +{len(names) - limit} more]"
