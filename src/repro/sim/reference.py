"""The naive reference engine: the executable specification.

One tick re-classifies every live session from scratch — peek, admission
verdict, lock-table conflict query — and rebuilds the waits-for graph as
it goes.  O(live × footprint) per tick, which is exactly why the event
engine exists; it is kept verbatim because every optimization in the
event-driven layers (cached classifications, invalidation channels, the
always-fresh waits-for graph, incremental cycle detection) is
equivalence-tested against the schedules, summaries, per-transaction
records, and deadlock-victim sequences this loop produces on the same
seed.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..exceptions import PolicyViolation, SimulationError
from ..policies.base import Admission
from .live import LiveEntry
from .deadlock import find_cycle_counted, pick_victim
from .event_log import truncated


def naive_tick(run) -> None:
    """One tick of the naive engine over ``run`` (a
    :class:`repro.sim.scheduler._Run`)."""
    m = run.metrics
    live = run.live
    # Phase 1: commits.
    for name in list(live):
        entry = live[name]
        try:
            step = entry.session.peek()
        except PolicyViolation as exc:
            run.abort(entry, str(exc))
            continue
        if step is None:
            run.commit(entry)
    if not live:
        return  # next arrivals (if any) admit at the top

    # Phase 2: classify.
    runnable: List[LiveEntry] = []
    waits_for: Dict[str, Set[str]] = {}
    aborts: List[Tuple[LiveEntry, str]] = []
    for name in sorted(live):
        entry = live[name]
        step = entry.session.peek()
        assert step is not None
        m.classify_checks += 1
        m.admission_checks += 1
        verdict = entry.session.admission()
        if verdict.verdict is Admission.ABORT:
            aborts.append((entry, verdict.reason or "policy violation"))
            continue
        if verdict.verdict is Admission.WAIT:
            m.policy_wait_observations += 1
            entry.record.blocked_ticks += 1
            waits_for.setdefault(name, set()).update(
                w for w in verdict.waiting_on if w in live
            )
            continue
        mode = step.lock_mode
        if step.is_lock and mode is not None:
            m.blocker_queries += 1
            blockers = run.table.blockers(name, step.entity, mode)
            if blockers:
                m.lock_wait_observations += 1
                entry.record.blocked_ticks += 1
                waits_for.setdefault(name, set()).update(
                    b for b in blockers if b in live
                )
                continue
        runnable.append(entry)

    for entry, reason in aborts:
        run.abort(entry, reason)
    if aborts:
        return

    if not runnable:
        # From-scratch resolution on the per-tick graph (the reference the
        # event engine's incremental detector is measured against).
        cycle, visits = find_cycle_counted(waits_for)
        m.cycle_detections += 1
        m.cycle_visits += visits
        if cycle is None:
            raise SimulationError(
                f"livelock: no runnable session and no waits-for cycle "
                f"among {truncated(sorted(live))}"
            )
        victim_name = pick_victim(cycle, live)
        m.deadlocks += 1
        m.deadlock_victims.append(victim_name)
        run.abort(live[victim_name], "deadlock victim")
        return

    # Phase 3: execute one step.
    run._execute_step(run.rng.choice(runnable))
