"""Declarative experiment grids with multiprocess fan-out.

The paper's claims are comparative — policies against policies across
workload × concurrency grids — so the reproduction's evaluation budget is
measured in (policy, workload, seed) cells.  :func:`run_cell` runs one
cell's seeds serially in-process; this module scales that out: a
:class:`GridSpec` names the cells declaratively, and :func:`run_grid`
executes every seed-run of every cell over a :mod:`multiprocessing` pool.

The unit that crosses the process boundary is a picklable :class:`_SeedTask`
— a policy *constructor* (class + kwargs), a registered workload factory
*name* (see :data:`~repro.sim.workloads.GRID_FACTORIES`) + kwargs, and a
seed; never live policies, workload items, or simulator state.  Workers
build everything locally from the seed, run the simulation, and stream back
plain :class:`~repro.sim.runner.SeedOutcome` records; the parent aggregates
each cell (in seed order, so floating-point reduction order is fixed) with
the same :func:`~repro.sim.runner.aggregate_outcomes` the serial path uses.
``workers=0`` keeps the whole pipeline in-process as the reference —
mirroring the scheduler's ``engine="naive"`` pattern — and the seeded
equivalence tests assert that parallel runs produce byte-identical
:class:`CellResult` rows.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..policies.base import LockingPolicy
from .runner import CellResult, SeedOutcome, aggregate_outcomes, run_seed
from .workloads import grid_factory


@dataclass(frozen=True)
class PolicySpec:
    """A policy *constructor*: class plus keyword arguments.  Classes pickle
    by reference and the kwargs are plain data, so the spec crosses process
    boundaries; each worker builds its own instance (policies are stateless
    factories — per-run state lives in the context they create)."""

    cls: Type[LockingPolicy]
    kwargs: Dict[str, object] = field(default_factory=dict)
    #: Row label; defaults to the constructed policy's ``name``.
    label: Optional[str] = None

    def build(self) -> LockingPolicy:
        return self.cls(**self.kwargs)

    @property
    def name(self) -> str:
        return self.label if self.label is not None else self.build().name


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload by registered factory name plus keyword arguments (the
    seed is supplied per run).  See
    :func:`~repro.sim.workloads.register_grid_factory`."""

    factory: str
    kwargs: Dict[str, object] = field(default_factory=dict)
    #: Row label; defaults to the factory name.
    label: Optional[str] = None

    def build(self, seed: int):
        """Construct ``(items, initial, context_kwargs)`` for ``seed``."""
        return grid_factory(self.factory)(seed, **self.kwargs)

    @property
    def name(self) -> str:
        return self.label if self.label is not None else self.factory


@dataclass(frozen=True)
class GridSpec:
    """One experiment grid: policies × workloads × seeds under one engine.

    ``pairs`` overrides the cross product for grids whose cells do not
    factor (e.g. each policy gets its own tuned workload).
    """

    policies: Tuple[PolicySpec, ...] = ()
    workloads: Tuple[WorkloadSpec, ...] = ()
    seeds: Tuple[int, ...] = ()
    engine: str = "event"
    max_ticks: int = 200_000
    check_serializability: bool = True
    #: Lock-table shard count for every seed-run (any count produces
    #: byte-identical rows; 1 is the single-partition reference).
    lock_shards: int = 1
    #: Classify-phase shard workers per seed-run (0 = serial reference;
    #: any count produces byte-identical rows; event engine only).
    shard_workers: int = 0
    #: Classify-phase executor kind when ``shard_workers >= 1``
    #: ("serial" / "thread" / "process"; any kind produces byte-identical
    #: rows — see :func:`repro.sim.executor.make_executor`).
    executor: str = "thread"
    pairs: Optional[Tuple[Tuple[PolicySpec, WorkloadSpec], ...]] = None

    def cells(self) -> List[Tuple[PolicySpec, WorkloadSpec]]:
        if self.pairs is not None:
            return list(self.pairs)
        return [(p, w) for p in self.policies for w in self.workloads]


@dataclass(frozen=True)
class _SeedTask:
    """One seed-run, addressed by (cell index, seed index) so the parent
    can bucket streamed results regardless of completion order."""

    cell: int
    slot: int
    policy: PolicySpec
    workload: WorkloadSpec
    seed: int
    engine: str
    max_ticks: int
    check_serializability: bool
    lock_shards: int = 1
    shard_workers: int = 0
    executor: str = "thread"


def _run_task(task: _SeedTask) -> Tuple[int, int, SeedOutcome]:
    """Worker entry point (module-level so it pickles under spawn)."""
    policy = task.policy.build()
    items, initial, context_kwargs = task.workload.build(task.seed)
    outcome = run_seed(
        policy, items, initial, task.seed,
        context_kwargs=context_kwargs,
        max_ticks=task.max_ticks,
        check_serializability=task.check_serializability,
        engine=task.engine,
        lock_shards=task.lock_shards,
        shard_workers=task.shard_workers,
        executor=task.executor,
    )
    return task.cell, task.slot, outcome


def _check_spawnable_main() -> None:
    """Fail fast where ``spawn`` cannot work: re-importing ``__main__`` in
    each worker requires its ``__file__`` (when it has one) to exist on
    disk.  A stdin/heredoc script (``python - <<EOF``) records
    ``__file__ = "<stdin>"`` — workers crash during bootstrap and the pool
    respawns them forever, hanging the caller with no diagnosis.  Raising
    here turns that hang into an actionable error."""
    main_module = sys.modules.get("__main__")
    if main_module is None or getattr(main_module, "__spec__", None) is not None:
        return  # importable by name; spawn re-imports it fine
    main_file = getattr(main_module, "__file__", None)
    if main_file is not None and not os.path.exists(main_file):
        raise RuntimeError(
            f"run_grid with workers > 0 uses the 'spawn' start method, "
            f"which re-imports __main__ in every worker — impossible here "
            f"(__main__.__file__ is {main_file!r}, which does not exist; "
            f"typically a stdin/heredoc script).  Run from a real script "
            f"(with its run_grid call under `if __name__ == '__main__'`) "
            f"or pass workers=0."
        )


def run_grid(
    spec: GridSpec,
    workers: int = 0,
    mp_context: str = "spawn",
    progress: Optional[Callable[[CellResult], None]] = None,
) -> List[CellResult]:
    """Execute every cell of ``spec``; return one :class:`CellResult` per
    cell, in cell order.

    ``workers=0`` runs everything in-process (the serial reference path);
    ``workers >= 1`` fans the seed tasks out over a pool of that many
    processes, streaming outcomes back as they finish.  Aggregation is
    identical either way: a cell is folded the moment its last seed lands,
    always in seed order, so the rows are byte-identical across worker
    counts.  ``progress`` (if given) receives each :class:`CellResult` as
    soon as its cell completes — cells finish out of order under a pool.

    ``mp_context`` selects the multiprocessing start method; ``"spawn"``
    is the default because it is portable and proves the picklability /
    cross-process determinism contract (workers rebuild workloads from
    specs, sharing nothing with the parent).
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    cells = spec.cells()
    seeds = list(spec.seeds)
    tasks = [
        _SeedTask(
            cell=ci, slot=si, policy=p, workload=w, seed=seed,
            engine=spec.engine, max_ticks=spec.max_ticks,
            check_serializability=spec.check_serializability,
            lock_shards=spec.lock_shards,
            shard_workers=spec.shard_workers,
            executor=spec.executor,
        )
        for ci, (p, w) in enumerate(cells)
        for si, seed in enumerate(seeds)
    ]
    buckets: List[List[Optional[SeedOutcome]]] = [
        [None] * len(seeds) for _ in cells
    ]
    remaining = [len(seeds)] * len(cells)
    results: List[Optional[CellResult]] = [None] * len(cells)

    def land(ci: int, si: int, outcome: SeedOutcome) -> None:
        buckets[ci][si] = outcome
        remaining[ci] -= 1
        if remaining[ci] == 0:
            p, w = cells[ci]
            outcomes = buckets[ci]
            assert all(o is not None for o in outcomes)
            results[ci] = aggregate_outcomes(
                p.name, w.name, outcomes, spec.check_serializability
            )
            if progress is not None:
                progress(results[ci])

    if not seeds:
        # Degenerate grid: every cell aggregates to an empty (all-failed
        # semantics: not green) result without spinning up a pool.
        for ci, (p, w) in enumerate(cells):
            results[ci] = aggregate_outcomes(
                p.name, w.name, [], spec.check_serializability
            )
            if progress is not None:
                progress(results[ci])
    elif workers == 0 or not tasks:
        for task in tasks:
            land(*_run_task(task))
    else:
        if mp_context == "spawn":
            _check_spawnable_main()
        ctx = multiprocessing.get_context(mp_context)
        with ctx.Pool(processes=workers) as pool:
            for ci, si, outcome in pool.imap_unordered(_run_task, tasks):
                land(ci, si, outcome)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
