"""The concurrency simulator's event loop: executes transaction intents
under a locking policy and records the resulting schedule.

One *tick* executes one step of one randomly chosen runnable session.
Scheduling semantics per tick (identical for both engines):

1. commit sessions that have no pending step;
2. classify the rest: runnable / lock-blocked / policy-blocked (WAIT) /
   policy-violating (ABORT — e.g. DDAG rule L5 after a concurrent edge
   insert, the paper's Fig. 3);
3. if nothing is runnable, find a cycle in the waits-for graph (lock waits +
   policy waits) and abort a victim, else the run has livelocked (an error);
4. execute one step of one runnable session (uniformly at random, seeded).

Two engines implement these semantics: ``engine="naive"`` re-classifies
every live session from scratch each tick (:mod:`repro.sim.reference`, the
executable specification) and ``engine="event"`` (default) caches
classifications and invalidates them only by the events that can change
them.  This module is the **event-loop layer** of a layered kernel; the
sibling layers — :mod:`repro.sim.admission` (classification cache,
invalidation channels, classifier), :mod:`repro.sim.waits_for`
(always-fresh graph, incremental cycle detection),
:mod:`repro.sim.deadlock` (oracle detector, victim costing),
:mod:`repro.sim.lock_table` (sharded holder maps and wait queues), and
:mod:`repro.sim.event_log` (O(own events) abort erasure) — are documented
in docs/ARCHITECTURE.md along with the invalidation-channel protocol.

Aborted transactions release their locks, their recorded events are
erased, and the transaction restarts with an intent script recomputed by
the workload's restart strategy (by default, the same intents).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.schedules import Event, Schedule
from ..core.states import StructuralState
from ..exceptions import PolicyViolation, SimulationError
from ..policies.base import Intent, LockingPolicy, PolicyContext, PolicySession
from .admission import AdmissionCache, Classifier
from .live import LiveEntry
from .deadlock import (  # _find_cycle re-exported for tests/oracle use
    find_cycle as _find_cycle,
    pick_victim,
    resolve_deadlock,
)
from .event_log import EventLog, assemble as _assemble, truncated as _truncated
from .executor import make_executor
from .lock_table import LockTable
from .metrics import Metrics, TxnRecord
from .reference import naive_tick
from .waits_for import WaitsForGraph

#: Recompute the intent script after an abort: (name, attempt, context) -> intents.
RestartStrategy = Callable[[str, int, PolicyContext], Optional[Sequence[Intent]]]

#: Legacy alias: the live-session record moved to the admission layer.
_Live = LiveEntry


@dataclass
class WorkloadItem:
    """One transaction of a workload: a name, its intent script, an optional
    restart strategy consulted after aborts, and an arrival time.

    ``start_tick`` delays admission: the transaction's policy session is
    created (and, for policies like DTR that plan at begin-time, planned)
    only when the simulation clock reaches it.  Staggered arrivals are what
    make the long-transaction scenarios meaningful — a short transaction
    arriving *behind* a sweep experiences the blocking the policies differ
    on."""

    name: str
    intents: Sequence[Intent]
    restart: Optional[RestartStrategy] = None
    start_tick: int = 0


@dataclass
class SimResult:
    """Everything a run produced."""

    schedule: Schedule
    metrics: Metrics
    committed: Tuple[str, ...]
    aborted: Tuple[str, ...]
    context: PolicyContext
    #: How the classify work was scheduled (executor kind, per-shard
    #: classification counts, barrier waits, spills) — deliberately not
    #: part of ``Metrics``/``work_summary`` so seeded outcomes stay
    #: byte-identical across ``shard_workers``.
    executor_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.aborted


class Simulator:
    """Run a workload under a policy; see the module docstring.

    ``engine`` selects the scheduling implementation: ``"event"`` (the
    default event-driven engine) or ``"naive"`` (the per-tick rescan kept as
    the reference both engines' equivalence is asserted against).
    ``lock_shards`` partitions the lock table (any count produces identical
    runs; ``1`` is the single-partition reference).  ``shard_workers``
    selects the classify-phase executor: ``0`` (default) is the serial
    reference, ``N>=1`` fans shard-local classification out to ``N``
    threads behind a deterministic merge barrier — any worker count
    produces byte-identical runs (event engine only).
    """

    ENGINES = ("event", "naive")

    def __init__(
        self,
        policy: LockingPolicy,
        seed: int = 0,
        max_ticks: int = 100_000,
        max_restarts: int = 10,
        context_kwargs: Optional[dict] = None,
        engine: str = "event",
        lock_shards: int = 1,
        shard_workers: int = 0,
    ):
        if engine not in self.ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {self.ENGINES}")
        if shard_workers < 0:
            raise ValueError(
                f"shard_workers must be >= 0, got {shard_workers}"
            )
        if shard_workers and engine != "event":
            raise ValueError(
                "shard_workers requires the event engine "
                f"(got engine={engine!r})"
            )
        self.policy = policy
        self.rng = random.Random(seed)
        self.max_ticks = max_ticks
        self.max_restarts = max_restarts
        self.context_kwargs = dict(context_kwargs or {})
        self.engine = engine
        self.lock_shards = lock_shards
        self.shard_workers = shard_workers

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Sequence[WorkloadItem],
        initial: StructuralState = StructuralState.empty(),
        validate: bool = True,
    ) -> SimResult:
        run = _Run(self, workload)
        run.execute()
        schedule = _assemble(run.events)
        if validate:
            schedule.assert_legal()
            schedule.assert_proper(initial)
        return SimResult(
            schedule=schedule,
            metrics=run.metrics,
            committed=tuple(run.committed),
            aborted=tuple(run.dropped),
            context=run.context,
            executor_stats=run.executor.snapshot(),
        )


class _Run:
    """State and helpers of one simulation run (both engines): composes
    the kernel layers and owns transaction lifecycle (admission, commit,
    abort/restart) plus the per-tick loop."""

    def __init__(self, sim: Simulator, workload: Sequence[WorkloadItem]):
        self.rng = sim.rng
        self.max_ticks = sim.max_ticks
        self.max_restarts = sim.max_restarts
        self.event_engine = sim.engine == "event"
        self.context = sim.policy.create_context(**sim.context_kwargs)
        self.metrics = Metrics()
        self.table = LockTable(shards=sim.lock_shards)
        self.graph = WaitsForGraph()
        self.live: Dict[str, LiveEntry] = {}
        self.cache = AdmissionCache(self.live, self.metrics)
        self.classifier = Classifier(
            self.live, self.metrics, self.table, self.graph, self.cache
        )
        #: The classify-phase executor (serial reference or thread-pool
        #: fan-out over shard slices; see :mod:`repro.sim.executor`).
        self.executor = make_executor(sim.shard_workers)
        self.log = EventLog()
        self.committed: List[str] = []
        self.dropped: List[str] = []
        #: Not-yet-admitted items, batched by arrival tick (ascending) and
        #: ordered by name within a batch.  Admission pops whole batches —
        #: O(batch) per arrival tick and a single integer compare on every
        #: other tick, instead of per-item deque churn.
        self.pending: Deque[Tuple[int, List[WorkloadItem]]] = deque()
        for item in sorted(workload, key=lambda it: (it.start_tick, it.name)):
            if self.pending and self.pending[-1][0] == item.start_tick:
                self.pending[-1][1].append(item)
            else:
                self.pending.append((item.start_tick, [item]))
        #: Items still awaiting admission (the batches' total size).
        self.pending_items = len(workload)
        self._seq = 0
        if self.event_engine:
            self.context.set_change_listener(self.cache.policy_changed)

    # -- legacy views (kept for tests and callers of the old layout) ----

    waits_for = property(lambda self: self.graph.waits_for)
    blocked_by = property(lambda self: self.graph.blocked_by)
    watchers = property(lambda self: self.cache.watchers)
    events = property(lambda self: self.log.events)
    events_by_txn = property(lambda self: self.log.by_txn)

    # ------------------------------------------------------------------
    # Main loop (shared tick skeleton)
    # ------------------------------------------------------------------

    def execute(self) -> None:
        m = self.metrics
        tick = (
            self._event_tick if self.event_engine else lambda: naive_tick(self)
        )
        try:
            self.admit_arrivals()
            while self.live or self.pending:
                if not self.live and self.pending:
                    # Idle until the next arrival: jump to the tick *before*
                    # it so the increment below lands exactly on start_tick,
                    # clamped so a far-future arrival cannot jump the clock
                    # straight past the max_ticks guard below.
                    m.ticks = min(
                        max(m.ticks, self.pending[0][0] - 1),
                        self.max_ticks,
                    )
                if m.ticks >= self.max_ticks:
                    raise SimulationError(
                        f"exceeded {self.max_ticks} ticks with "
                        f"{_truncated(sorted(self.live))} still active and "
                        f"{self.pending_items} pending"
                    )
                m.ticks += 1
                self.admit_arrivals()
                # Accrued *after* admissions: a transaction admitted at tick
                # t can execute at tick t, so it belongs in tick t's
                # integral.
                m.active_integral += len(self.live)
                if not self.live:
                    continue
                tick()
        finally:
            self.executor.shutdown()

    # ------------------------------------------------------------------
    # Lifecycle helpers (shared)
    # ------------------------------------------------------------------

    def admit_arrivals(self) -> None:
        m = self.metrics
        while self.pending and self.pending[0][0] <= m.ticks:
            _, batch = self.pending.popleft()
            self.pending_items -= len(batch)
            for item in batch:
                session = self.context.begin(item.name, item.intents)
                record = TxnRecord(item.name, start_tick=m.ticks)
                m.records[item.name] = record
                entry = LiveEntry(item, session, record, seq=self._seq)
                self._seq += 1
                self._register(entry)

    def _register(self, entry: LiveEntry) -> None:
        name = entry.item.name
        session = entry.session
        self.live[name] = entry
        entry.needs_admission = (
            session.dynamic
            or type(session).admission is not PolicySession.admission
        )
        if not self.event_engine:
            return
        if entry.needs_admission:
            # Policy-aware invalidation when the session can declare what
            # its verdict depends on; the conservative every-tick fallback
            # otherwise.
            entry.tracks_deps = session.admission_dependencies() is not None
            self.cache.register(
                name,
                tracks_deps=entry.tracks_deps,
                dynamic=not entry.tracks_deps,
                complete=False,
            )
        else:
            self.cache.register(
                name,
                tracks_deps=False,
                dynamic=False,
                complete=session.peek() is None,
            )

    def record_event(self, name: str, event: Event) -> None:
        self.log.record(name, event)

    def erase(self, name: str) -> None:
        self.log.erase(name)

    def commit(self, entry: LiveEntry) -> None:
        name = entry.item.name
        m = self.metrics
        self.log.forget(name)  # committed events are permanent
        entry.session.on_commit()
        entry.record.committed = True
        entry.record.end_tick = m.ticks
        m.committed += 1
        self.committed.append(name)
        del self.live[name]
        self._forget(entry)
        # A policy that commits while still holding locks used to leak them
        # forever (later sessions then livelocked with a SimulationError);
        # commit now implies strictness for whatever is still held.
        released, woken = self.table.release_all_wake(name)
        if released:
            self._wake(woken)

    def abort(self, victim: LiveEntry, reason: str) -> None:
        m = self.metrics
        name = victim.item.name
        m.aborted += 1
        victim.session.on_abort()
        self._forget(victim)
        _, woken = self.table.release_all_wake(name)
        self._wake(woken)
        self.log.erase(name)

        def drop() -> None:
            del self.live[name]
            self.dropped.append(name)
            victim.record.end_tick = m.ticks

        if victim.attempt > self.max_restarts:
            drop()
            return
        intents: Optional[Sequence[Intent]] = victim.item.intents
        if victim.item.restart is not None:
            intents = victim.item.restart(name, victim.attempt, self.context)
        if intents is None:
            drop()
            return
        try:
            session = self.context.begin(name, intents)
        except PolicyViolation:
            drop()
            return
        # Count the restart only now that one actually happened — a drop
        # (restart budget exhausted, strategy gave up, or begin refused the
        # replanned script) is an abort, not a restart.
        m.restarts += 1
        victim.record.restarts += 1
        entry = LiveEntry(
            victim.item,
            session,
            victim.record,
            attempt=victim.attempt + 1,
            seq=victim.seq,
        )
        self._register(entry)

    def _execute_step(self, entry: LiveEntry) -> None:
        m = self.metrics
        step = entry.session.peek()
        assert step is not None
        name = entry.item.name
        mode = step.lock_mode
        if step.is_lock and mode is not None:
            self.table.acquire(name, step.entity, mode)
            if self.event_engine:
                # Sessions whose cached classification assumed this entity
                # was free (watchers) must be re-derived; queued waiters
                # stay blocked — a grant can only extend their blocker
                # sets, so their edges are updated in place instead.
                self.cache.mark_dirty(
                    self.cache.watchers.get(step.entity, ()), exclude=name
                )
                self.classifier.extend_lock_edges(name, step.entity)
        elif step.is_unlock and mode is not None:
            weakened = self.event_engine and self.table.would_weaken(
                name, step.entity, mode
            )
            woken = self.table.release(name, step.entity, mode)
            self._wake(woken)
            if weakened:
                self.classifier.refresh_lock_edges(name, step.entity)
        self.log.record(name, Event(name, entry.step_count, step))
        entry.step_count += 1
        entry.session.executed()
        m.events_executed += 1
        entry.record.steps_executed += 1
        if self.event_engine:
            self.classifier.clear(entry)
            if name in self.cache.dynamic:
                pass  # re-examined every tick anyway
            elif entry.tracks_deps:
                # Defer the replanning peek to next tick's phase 1 (it may
                # raise or drain to None — commit/abort are phase-1
                # business, exactly when the naive engine sees them).
                self.cache.phase1.add(name)
                self.cache.dirty.add(name)
            elif entry.session.peek() is None:
                self.cache.complete.add(name)
            else:
                self.cache.dirty.add(name)

    def _wake(self, names) -> None:
        """A release returned these waiters in its wake-up set."""
        if self.event_engine:
            self.cache.wake(names)

    def _forget(self, entry: LiveEntry) -> None:
        """Drop every piece of engine bookkeeping for this incarnation."""
        name = entry.item.name
        self.classifier.clear(entry)
        # Eagerly prune inbound waits-for edges: a departed session blocks
        # nobody, and a restarted incarnation under the same name must not
        # inherit edges aimed at its predecessor.  The waiters' lazy
        # accounting is caught up through the previous tick first (if this
        # departure is their wake-up, re-classification will cover the
        # current tick; if it is not, a later accrual point will).
        waiters = self.graph.forget(name)
        if waiters:
            through = self.metrics.ticks - 1
            for w in waiters:
                w_entry = self.live.get(w)
                if w_entry is not None:
                    self.classifier.accrue(w_entry, through)
        self.cache.forget(name)

    # ------------------------------------------------------------------
    # Event engine tick
    # ------------------------------------------------------------------

    def _event_tick(self) -> None:
        """One event-engine tick as an explicit phase pipeline: commit
        scan → classify → deadlock → execute.  Each phase is a method
        with a documented shard-locality contract; only the classify
        phase's work is partitioned (and optionally fanned out to shard
        workers by the executor) — every other phase runs whole on the
        coordinator."""
        if not self._phase_commit():
            return
        if self._phase_classify():
            return
        if not self.cache.runnable:
            self._phase_deadlock()
            return
        self._phase_execute()

    def _phase_commit(self) -> bool:
        """Phase 1 — commit scan (coordinator only: commits and phase-1
        aborts mutate the live table, the lock table, and the log, all of
        which the classify phase needs frozen).  Only sessions that can
        act here (every-tick dynamic ones, finished scripted ones, and
        dependency-declaring sessions due their replanning peek) are
        visited, in admission order, matching the naive engine's
        insertion-order scan over all of live — for every other session
        the phase-1 peek is an observable no-op.  Returns whether any
        session survives into phase 2."""
        live = self.live
        for name in sorted(
            self.cache.phase1_candidates(), key=lambda n: live[n].seq
        ):
            entry = live.get(name)
            if entry is None:
                continue
            try:
                step = entry.session.peek()
            except PolicyViolation as exc:
                self.abort(entry, str(exc))
                continue
            if step is None:
                self.commit(entry)
        return bool(live)

    def _phase_classify(self) -> bool:
        """Phase 2 — classify only sessions whose cached state may have
        changed: the dirty set (woken waiters, invalidated watchers,
        executors, fresh admissions) plus every dynamic session.  The
        check set is partitioned into shard-local slices (keyed by the
        pending lock entity's shard) plus a global slice, and handed to
        the executor: shard slices read only frozen phase inputs and
        their own shard's holder map, so the parallel executor may derive
        them on workers; all state mutation happens in coordinator-side
        applies at the merge barrier, in shard-index order.  Phase-2
        policy aborts (global slice only) are applied after the barrier,
        in the legacy sorted order; returns whether any occurred (which
        ends the tick).  Lint rule RPR009 pins this shape: the phase body
        may mutate scheduler state only through ``take_check_slices``,
        ``run_classify``, and ``abort``."""
        aborts: List[Tuple[LiveEntry, str]] = []
        slices, global_slice = self.cache.take_check_slices(
            self.table.shard_of, self.table.shards
        )
        self.executor.run_classify(
            self.classifier, self.live, slices, global_slice, aborts
        )
        for entry, reason in aborts:
            self.abort(entry, reason)
        return bool(aborts)

    def _phase_deadlock(self) -> None:
        """Deadlock path (coordinator only: cycle detection walks the
        whole waits-for graph — inherently cross-shard — and the victim
        abort mutates every layer).  The graph is maintained always-fresh,
        so the incremental detector runs directly on it — acyclicity
        certificates survive between detections, and only the
        possibly-cyclic region is re-walked (the from-scratch walk was
        the last O(blocked) per-detection cost)."""
        m = self.metrics
        live = self.live
        cycle = self.graph.find_cycle()
        m.cycle_detections += 1
        m.cycle_visits += self.graph.last_visits
        if cycle is None:
            raise SimulationError(
                f"livelock: no runnable session and no waits-for cycle "
                f"among {_truncated(sorted(live))}"
            )
        victim_name = pick_victim(cycle, live)
        m.deadlocks += 1
        m.deadlock_victims.append(victim_name)
        # The cycle members' lazy accounting must be as fresh as the
        # naive engine's every-blocked-session classification here
        # (the victim's record is final after the abort).
        for member in cycle:
            entry = live.get(member)
            if entry is not None:
                self.classifier.accrue(entry, m.ticks)
        self.abort(live[victim_name], "deadlock victim")

    def _phase_execute(self) -> None:
        """Phase 3 — execute one step of one runnable session, seeded
        uniform choice (coordinator only: grants, releases, wake-ups, and
        the event log are global mutations; invalidation routing keys the
        *next* tick's shard slices)."""
        self._execute_step(
            self.live[self.rng.choice(sorted(self.cache.runnable))]
        )


def _pick_deadlock_victim(waits_for, live) -> Optional[str]:
    """Legacy :func:`repro.sim.deadlock.resolve_deadlock` (victim only)."""
    found = resolve_deadlock(waits_for, live)
    return None if found is None else found[0]
