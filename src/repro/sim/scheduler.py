"""The concurrency simulator: executes transaction intents under a locking
policy and records the resulting schedule.

One *tick* executes one step of one randomly chosen runnable session, which
yields fine-grained interleavings — the right granularity for exploring the
schedule space of the safety property tests and for the performance shapes
of the benchmark harness (blocking and concurrency differences between
policies show up directly in tick counts).

Scheduling loop per tick:

1. commit sessions that have no pending step;
2. classify the rest: runnable / lock-blocked / policy-blocked (WAIT) /
   policy-violating (ABORT — e.g. DDAG rule L5 after a concurrent edge
   insert, the paper's Fig. 3);
3. if nothing is runnable, find a cycle in the waits-for graph (lock waits +
   policy waits) and abort a victim, else the run has livelocked (an error);
4. execute one step of one runnable session (uniformly at random, seeded).

Aborted transactions release their locks, their recorded events are erased
(no recovery theory in the paper — an aborted attempt "never happened"),
and the transaction restarts with an intent script recomputed by the
workload's restart strategy (by default, the same intents).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import LockMode
from ..core.schedules import Event, Schedule
from ..core.states import StructuralState
from ..core.steps import Entity, Step
from ..core.transactions import Transaction
from ..exceptions import PolicyViolation, SimulationError
from ..policies.base import Admission, Intent, LockingPolicy, PolicyContext, PolicySession
from .lock_table import LockTable
from .metrics import Metrics, TxnRecord

#: Recompute the intent script after an abort: (name, attempt, context) -> intents.
RestartStrategy = Callable[[str, int, PolicyContext], Optional[Sequence[Intent]]]


@dataclass
class WorkloadItem:
    """One transaction of a workload: a name, its intent script, an optional
    restart strategy consulted after aborts, and an arrival time.

    ``start_tick`` delays admission: the transaction's policy session is
    created (and, for policies like DTR that plan at begin-time, planned)
    only when the simulation clock reaches it.  Staggered arrivals are what
    make the long-transaction scenarios meaningful — a short transaction
    arriving *behind* a sweep experiences the blocking the policies differ
    on."""

    name: str
    intents: Sequence[Intent]
    restart: Optional[RestartStrategy] = None
    start_tick: int = 0


@dataclass
class SimResult:
    """Everything a run produced."""

    schedule: Schedule
    metrics: Metrics
    committed: Tuple[str, ...]
    aborted: Tuple[str, ...]
    context: PolicyContext

    @property
    def ok(self) -> bool:
        return not self.aborted


@dataclass
class _Live:
    item: WorkloadItem
    session: PolicySession
    record: TxnRecord
    attempt: int = 1
    events: List[Event] = field(default_factory=list)
    step_count: int = 0


class Simulator:
    """Run a workload under a policy; see the module docstring."""

    def __init__(
        self,
        policy: LockingPolicy,
        seed: int = 0,
        max_ticks: int = 100_000,
        max_restarts: int = 10,
        context_kwargs: Optional[dict] = None,
    ):
        self.policy = policy
        self.rng = random.Random(seed)
        self.max_ticks = max_ticks
        self.max_restarts = max_restarts
        self.context_kwargs = dict(context_kwargs or {})

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Sequence[WorkloadItem],
        initial: StructuralState = StructuralState.empty(),
        validate: bool = True,
    ) -> SimResult:
        context = self.policy.create_context(**self.context_kwargs)
        metrics = Metrics()
        table = LockTable()
        events: List[Event] = []
        live: Dict[str, _Live] = {}
        committed: List[str] = []
        dropped: List[str] = []

        pending: List[WorkloadItem] = sorted(
            workload, key=lambda it: (it.start_tick, it.name)
        )

        def admit_arrivals() -> None:
            while pending and pending[0].start_tick <= metrics.ticks:
                item = pending.pop(0)
                session = context.begin(item.name, item.intents)
                record = TxnRecord(item.name, start_tick=metrics.ticks)
                metrics.records[item.name] = record
                live[item.name] = _Live(item, session, record)

        admit_arrivals()

        def erase(name: str) -> None:
            events[:] = [e for e in events if e.txn != name]

        def abort(victim: _Live, reason: str) -> None:
            metrics.aborted += 1
            victim.record.restarts += 1
            victim.session.on_abort()
            table.release_all(victim.item.name)
            erase(victim.item.name)
            name = victim.item.name
            if victim.attempt > self.max_restarts:
                del live[name]
                dropped.append(name)
                victim.record.end_tick = metrics.ticks
                return
            metrics.restarts += 1
            intents: Optional[Sequence[Intent]] = victim.item.intents
            if victim.item.restart is not None:
                intents = victim.item.restart(name, victim.attempt, context)
            if intents is None:
                del live[name]
                dropped.append(name)
                victim.record.end_tick = metrics.ticks
                return
            try:
                session = context.begin(name, intents)
            except PolicyViolation:
                del live[name]
                dropped.append(name)
                victim.record.end_tick = metrics.ticks
                return
            live[name] = _Live(
                victim.item, session, victim.record, attempt=victim.attempt + 1
            )

        while live or pending:
            if metrics.ticks >= self.max_ticks:
                raise SimulationError(
                    f"exceeded {self.max_ticks} ticks with "
                    f"{sorted(live)} still active"
                )
            if not live and pending:
                # Idle until the next arrival.
                metrics.ticks = max(metrics.ticks, pending[0].start_tick)
            metrics.ticks += 1
            metrics.active_integral += len(live)
            admit_arrivals()
            if not live:
                continue

            # Phase 1: commits.
            for name in list(live):
                entry = live[name]
                try:
                    step = entry.session.peek()
                except PolicyViolation as exc:
                    abort(entry, str(exc))
                    continue
                if step is None:
                    entry.session.on_commit()
                    entry.record.committed = True
                    entry.record.end_tick = metrics.ticks
                    metrics.committed += 1
                    committed.append(name)
                    del live[name]
            if not live:
                continue  # next arrivals (if any) admit at the top

            # Phase 2: classify.
            runnable: List[_Live] = []
            waits_for: Dict[str, Set[str]] = {}
            aborts: List[Tuple[_Live, str]] = []
            for name in sorted(live):
                entry = live[name]
                step = entry.session.peek()
                assert step is not None
                verdict = entry.session.admission()
                if verdict.verdict is Admission.ABORT:
                    aborts.append((entry, verdict.reason or "policy violation"))
                    continue
                if verdict.verdict is Admission.WAIT:
                    metrics.policy_wait_observations += 1
                    entry.record.blocked_ticks += 1
                    waits_for.setdefault(name, set()).update(
                        w for w in verdict.waiting_on if w in live
                    )
                    continue
                mode = step.lock_mode
                if step.is_lock and mode is not None:
                    blockers = table.blockers(name, step.entity, mode)
                    if blockers:
                        metrics.lock_wait_observations += 1
                        entry.record.blocked_ticks += 1
                        waits_for.setdefault(name, set()).update(
                            b for b in blockers if b in live
                        )
                        continue
                runnable.append(entry)

            for entry, reason in aborts:
                abort(entry, reason)
            if aborts:
                continue

            if not runnable:
                victim_name = _pick_deadlock_victim(waits_for, live)
                if victim_name is None:
                    raise SimulationError(
                        f"livelock: no runnable session and no waits-for cycle "
                        f"among {sorted(live)}"
                    )
                metrics.deadlocks += 1
                abort(live[victim_name], "deadlock victim")
                continue

            # Phase 3: execute one step.
            entry = self.rng.choice(runnable)
            step = entry.session.peek()
            assert step is not None
            name = entry.item.name
            mode = step.lock_mode
            if step.is_lock and mode is not None:
                table.acquire(name, step.entity, mode)
            elif step.is_unlock and mode is not None:
                table.release(name, step.entity, mode)
            events.append(Event(name, entry.step_count, step))
            entry.step_count += 1
            entry.session.executed()
            metrics.events_executed += 1
            entry.record.steps_executed += 1

        schedule = _assemble(events)
        if validate:
            schedule.assert_legal()
            schedule.assert_proper(initial)
        return SimResult(
            schedule=schedule,
            metrics=metrics,
            committed=tuple(committed),
            aborted=tuple(dropped),
            context=context,
        )


def _assemble(events: Sequence[Event]) -> Schedule:
    """Build a Schedule from raw events, reconstructing each transaction from
    its own event subsequence (erased aborts leave per-transaction gaps in
    the recorded indices, so events are re-indexed)."""
    steps_by_txn: Dict[str, List[Step]] = {}
    reindexed: List[Event] = []
    for e in events:
        seq = steps_by_txn.setdefault(e.txn, [])
        reindexed.append(Event(e.txn, len(seq), e.step))
        seq.append(e.step)
    txns = [Transaction(name, tuple(steps)) for name, steps in steps_by_txn.items()]
    return Schedule(txns, reindexed)


def _pick_deadlock_victim(
    waits_for: Dict[str, Set[str]], live: Dict[str, _Live]
) -> Optional[str]:
    """Find a cycle in the waits-for graph; return its cheapest member
    (prefer no structural effects, then fewest executed steps)."""
    cycle = _find_cycle(waits_for)
    if cycle is None:
        return None
    def cost(name: str) -> Tuple[int, int, str]:
        entry = live[name]
        return (
            1 if entry.session.has_structural_effects else 0,
            entry.step_count,
            name,
        )
    return min(cycle, key=cost)


def _find_cycle(graph: Dict[str, Set[str]]) -> Optional[List[str]]:
    color: Dict[str, int] = {}
    parent: Dict[str, Optional[str]] = {}

    def dfs(node: str) -> Optional[List[str]]:
        color[node] = 1
        for nxt in sorted(graph.get(node, ())):
            if color.get(nxt, 0) == 0:
                parent[nxt] = node
                found = dfs(nxt)
                if found is not None:
                    return found
            elif color.get(nxt) == 1:
                cycle = [node]
                cur = node
                while cur != nxt:
                    cur = parent[cur]  # type: ignore[assignment]
                    cycle.append(cur)
                return cycle
        color[node] = 2
        return None

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            parent[node] = None
            found = dfs(node)
            if found is not None:
                return found
    return None
