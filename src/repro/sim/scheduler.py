"""The concurrency simulator's event loop: executes transaction intents
under a locking policy and records the resulting schedule.

One *tick* executes one step of one randomly chosen runnable session.
Scheduling semantics per tick (identical for both engines):

1. commit sessions that have no pending step;
2. classify the rest: runnable / lock-blocked / policy-blocked (WAIT) /
   policy-violating (ABORT — e.g. DDAG rule L5 after a concurrent edge
   insert, the paper's Fig. 3);
3. if nothing is runnable, find a cycle in the waits-for graph (lock waits +
   policy waits) and abort a victim, else the run has livelocked (an error);
4. execute one step of one runnable session (uniformly at random, seeded).

Two engines implement these semantics: ``engine="naive"`` re-classifies
every live session from scratch each tick (:mod:`repro.sim.reference`, the
executable specification) and ``engine="event"`` (default) caches
classifications and invalidates them only by the events that can change
them.  This module is the **driver layer** over the lock-manager kernel:
the transaction-lifecycle state machine (grant/block/wake/deadlock/
commit/abort) lives in :class:`repro.kernel.lifecycle.KernelRun`, which
composes the state layers — :mod:`repro.sim.admission` (classification
cache, invalidation channels, classifier), :mod:`repro.sim.waits_for`
(always-fresh graph, incremental cycle detection),
:mod:`repro.sim.deadlock` (oracle detector, victim costing),
:mod:`repro.sim.lock_table` (sharded holder maps and wait queues), and
:mod:`repro.sim.event_log` (O(own events) abort erasure) — all documented
in docs/ARCHITECTURE.md along with the invalidation-channel protocol.
:class:`_Run` adds what makes the kernel a *tick simulator*: the seeded
RNG, batched arrival admission, and the per-tick phase pipeline.  The
same kernel layers serve the request-driven asyncio service through
:class:`repro.kernel.core.LockKernel` (see :mod:`repro.service`).

Aborted transactions release their locks, their recorded events are
erased, and the transaction restarts with an intent script recomputed by
the workload's restart strategy (by default, the same intents).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.states import StructuralState
from ..exceptions import PolicyViolation, SimulationError
from ..kernel.lifecycle import KernelRun
from ..policies.base import Intent, LockingPolicy, PolicyContext
from .live import LiveEntry
from .deadlock import (  # _find_cycle re-exported for tests/oracle use
    find_cycle as _find_cycle,
    pick_victim,
    resolve_deadlock,
)
from .event_log import assemble as _assemble, truncated as _truncated
from .metrics import Metrics, TxnRecord
from .reference import naive_tick

#: Recompute the intent script after an abort: (name, attempt, context) -> intents.
RestartStrategy = Callable[[str, int, PolicyContext], Optional[Sequence[Intent]]]

#: Legacy alias: the live-session record moved to the admission layer.
_Live = LiveEntry


@dataclass
class WorkloadItem:
    """One transaction of a workload: a name, its intent script, an optional
    restart strategy consulted after aborts, and an arrival time.

    ``start_tick`` delays admission: the transaction's policy session is
    created (and, for policies like DTR that plan at begin-time, planned)
    only when the simulation clock reaches it.  Staggered arrivals are what
    make the long-transaction scenarios meaningful — a short transaction
    arriving *behind* a sweep experiences the blocking the policies differ
    on."""

    name: str
    intents: Sequence[Intent]
    restart: Optional[RestartStrategy] = None
    start_tick: int = 0


@dataclass
class SimResult:
    """Everything a run produced."""

    schedule: object
    metrics: Metrics
    committed: Tuple[str, ...]
    aborted: Tuple[str, ...]
    context: PolicyContext
    #: How the classify work was scheduled (executor kind, per-shard
    #: classification counts, barrier waits, spills) — deliberately not
    #: part of ``Metrics``/``work_summary`` so seeded outcomes stay
    #: byte-identical across ``shard_workers``.
    executor_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.aborted


class Simulator:
    """Run a workload under a policy; see the module docstring.

    ``engine`` selects the scheduling implementation: ``"event"`` (the
    default event-driven engine) or ``"naive"`` (the per-tick rescan kept as
    the reference both engines' equivalence is asserted against).
    ``lock_shards`` partitions the lock table (any count produces identical
    runs; ``1`` is the single-partition reference).  ``shard_workers``
    selects the classify-phase executor worker count: ``0`` (default) is
    the serial reference, ``N>=1`` fans shard-local classification out to
    ``N`` workers behind a deterministic merge barrier — any worker count
    produces byte-identical runs (event engine only).  ``executor``
    selects the worker kind when ``shard_workers >= 1``: ``"thread"``
    (default) or ``"process"`` (persistent replica-owning worker
    processes); ``"serial"`` forces the serial reference regardless of
    worker count.
    """

    ENGINES = ("event", "naive")
    EXECUTORS = ("serial", "thread", "process")

    def __init__(
        self,
        policy: LockingPolicy,
        seed: int = 0,
        max_ticks: int = 100_000,
        max_restarts: int = 10,
        context_kwargs: Optional[dict] = None,
        engine: str = "event",
        lock_shards: int = 1,
        shard_workers: int = 0,
        executor: str = "thread",
    ):
        if engine not in self.ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {self.ENGINES}")
        if shard_workers < 0:
            raise ValueError(
                f"shard_workers must be >= 0, got {shard_workers}"
            )
        if executor not in self.EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{self.EXECUTORS}"
            )
        if shard_workers and engine != "event":
            raise ValueError(
                "shard_workers requires the event engine "
                f"(got engine={engine!r})"
            )
        self.policy = policy
        self.rng = random.Random(seed)
        self.max_ticks = max_ticks
        self.max_restarts = max_restarts
        self.context_kwargs = dict(context_kwargs or {})
        self.engine = engine
        self.lock_shards = lock_shards
        self.shard_workers = shard_workers
        self.executor = executor

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Sequence[WorkloadItem],
        initial: StructuralState = StructuralState.empty(),
        validate: bool = True,
    ) -> SimResult:
        run = _Run(self, workload)
        run.execute()
        schedule = _assemble(run.events)
        if validate:
            schedule.assert_legal()
            schedule.assert_proper(initial)
        return SimResult(
            schedule=schedule,
            metrics=run.metrics,
            committed=tuple(run.committed),
            aborted=tuple(run.dropped),
            context=run.context,
            executor_stats=run.executor.snapshot(),
        )


class _Run(KernelRun):
    """One simulation run (both engines): the tick *driver* over the
    lifecycle kernel.  :class:`~repro.kernel.lifecycle.KernelRun`
    composes the state layers and owns admission, commit, abort/restart,
    and step execution; this subclass adds the seeded RNG, the batched
    arrival queue, and the per-tick phase pipeline that feeds workload
    scripts into those transitions."""

    def __init__(self, sim: Simulator, workload: Sequence[WorkloadItem]):
        super().__init__(
            sim.policy.create_context(**sim.context_kwargs),
            max_restarts=sim.max_restarts,
            lock_shards=sim.lock_shards,
            shard_workers=sim.shard_workers,
            executor_kind=sim.executor,
            event_engine=sim.engine == "event",
        )
        self.rng = sim.rng
        self.max_ticks = sim.max_ticks
        #: Not-yet-admitted items, batched by arrival tick (ascending) and
        #: ordered by name within a batch.  Admission pops whole batches —
        #: O(batch) per arrival tick and a single integer compare on every
        #: other tick, instead of per-item deque churn.
        self.pending: Deque[Tuple[int, List[WorkloadItem]]] = deque()
        for item in sorted(workload, key=lambda it: (it.start_tick, it.name)):
            if self.pending and self.pending[-1][0] == item.start_tick:
                self.pending[-1][1].append(item)
            else:
                self.pending.append((item.start_tick, [item]))
        #: Items still awaiting admission (the batches' total size).
        self.pending_items = len(workload)

    # ------------------------------------------------------------------
    # Main loop (shared tick skeleton)
    # ------------------------------------------------------------------

    def execute(self) -> None:
        m = self.metrics
        tick = (
            self._event_tick if self.event_engine else lambda: naive_tick(self)
        )
        try:
            self.admit_arrivals()
            while self.live or self.pending:
                if not self.live and self.pending:
                    # Idle until the next arrival: jump to the tick *before*
                    # it so the increment below lands exactly on start_tick,
                    # clamped so a far-future arrival cannot jump the clock
                    # straight past the max_ticks guard below.
                    m.ticks = min(
                        max(m.ticks, self.pending[0][0] - 1),
                        self.max_ticks,
                    )
                if m.ticks >= self.max_ticks:
                    raise SimulationError(
                        f"exceeded {self.max_ticks} ticks with "
                        f"{_truncated(sorted(self.live))} still active and "
                        f"{self.pending_items} pending"
                    )
                m.ticks += 1
                self.admit_arrivals()
                # Accrued *after* admissions: a transaction admitted at tick
                # t can execute at tick t, so it belongs in tick t's
                # integral.
                m.active_integral += len(self.live)
                if not self.live:
                    continue
                tick()
        finally:
            self.executor.shutdown()

    # ------------------------------------------------------------------
    # Arrival admission (driver-side: the kernel has no clock)
    # ------------------------------------------------------------------

    def admit_arrivals(self) -> None:
        m = self.metrics
        while self.pending and self.pending[0][0] <= m.ticks:
            _, batch = self.pending.popleft()
            self.pending_items -= len(batch)
            for item in batch:
                session = self.context.begin(item.name, item.intents)
                record = TxnRecord(item.name, start_tick=m.ticks)
                m.records[item.name] = record
                entry = LiveEntry(item, session, record, seq=self._seq)
                self._seq += 1
                self._register(entry)

    # ------------------------------------------------------------------
    # Event engine tick
    # ------------------------------------------------------------------

    def _event_tick(self) -> None:
        """One event-engine tick as an explicit phase pipeline: commit
        scan → classify → deadlock → execute.  Each phase is a method
        with a documented shard-locality contract; only the classify
        phase's work is partitioned (and optionally fanned out to shard
        workers by the executor) — every other phase runs whole on the
        coordinator."""
        if not self._phase_commit():
            return
        if self._phase_classify():
            return
        if not self.cache.runnable:
            self._phase_deadlock()
            return
        self._phase_execute()

    def _phase_commit(self) -> bool:
        """Phase 1 — commit scan (coordinator only: commits and phase-1
        aborts mutate the live table, the lock table, and the log, all of
        which the classify phase needs frozen).  Only sessions that can
        act here (every-tick dynamic ones, finished scripted ones, and
        dependency-declaring sessions due their replanning peek) are
        visited, in admission order, matching the naive engine's
        insertion-order scan over all of live — for every other session
        the phase-1 peek is an observable no-op.  Returns whether any
        session survives into phase 2."""
        live = self.live
        for name in sorted(
            self.cache.phase1_candidates(), key=lambda n: live[n].seq
        ):
            entry = live.get(name)
            if entry is None:
                continue
            try:
                step = entry.session.peek()
            except PolicyViolation as exc:
                self.abort(entry, str(exc))
                continue
            if step is None:
                self.commit(entry)
        return bool(live)

    def _phase_classify(self) -> bool:
        """Phase 2 — classify only sessions whose cached state may have
        changed: the dirty set (woken waiters, invalidated watchers,
        executors, fresh admissions) plus every dynamic session.  The
        check set is partitioned into shard-local slices (keyed by the
        pending lock entity's shard) plus a global slice, and handed to
        the executor: shard slices read only frozen phase inputs and
        their own shard's holder map, so the parallel executor may derive
        them on workers; all state mutation happens in coordinator-side
        applies at the merge barrier, in shard-index order.  Phase-2
        policy aborts — which may now surface from shard slices too,
        since admission-needing sessions shard-route — are canonicalized
        to the legacy sorted-by-name order before processing, so the
        abort sequence is independent of slice layout; returns whether
        any occurred (which ends the tick).  Lint rule RPR009 pins this
        shape: the phase body may mutate scheduler state only through
        ``take_check_slices``, ``run_classify``, and ``abort``."""
        aborts: List[Tuple[LiveEntry, str]] = []
        slices, global_slice, spill = self.cache.take_check_slices(
            self.table.shard_of, self.table.shards
        )
        self.executor.run_classify(
            self.classifier, self.live, slices, global_slice, aborts,
            spill,
        )
        aborts.sort(key=lambda pr: pr[0].item.name)
        for entry, reason in aborts:
            self.abort(entry, reason)
        return bool(aborts)

    def _phase_deadlock(self) -> None:
        """Deadlock path (coordinator only: cycle detection walks the
        whole waits-for graph — inherently cross-shard — and the victim
        abort mutates every layer).  The graph is maintained always-fresh,
        so the incremental detector runs directly on it — acyclicity
        certificates survive between detections, and only the
        possibly-cyclic region is re-walked (the from-scratch walk was
        the last O(blocked) per-detection cost)."""
        m = self.metrics
        live = self.live
        cycle = self.graph.find_cycle()
        m.cycle_detections += 1
        m.cycle_visits += self.graph.last_visits
        if cycle is None:
            raise SimulationError(
                f"livelock: no runnable session and no waits-for cycle "
                f"among {_truncated(sorted(live))}"
            )
        victim_name = pick_victim(cycle, live)
        m.deadlocks += 1
        m.deadlock_victims.append(victim_name)
        # The cycle members' lazy accounting must be as fresh as the
        # naive engine's every-blocked-session classification here
        # (the victim's record is final after the abort).
        for member in cycle:
            entry = live.get(member)
            if entry is not None:
                self.classifier.accrue(entry, m.ticks)
        self.abort(live[victim_name], "deadlock victim")

    def _phase_execute(self) -> None:
        """Phase 3 — execute one step of one runnable session, seeded
        uniform choice (coordinator only: grants, releases, wake-ups, and
        the event log are global mutations; invalidation routing keys the
        *next* tick's shard slices)."""
        self._execute_step(
            self.live[self.rng.choice(sorted(self.cache.runnable))]
        )


def _pick_deadlock_victim(waits_for, live) -> Optional[str]:
    """Legacy :func:`repro.sim.deadlock.resolve_deadlock` (victim only)."""
    found = resolve_deadlock(waits_for, live)
    return None if found is None else found[0]
