"""The concurrency simulator: executes transaction intents under a locking
policy and records the resulting schedule.

One *tick* executes one step of one randomly chosen runnable session, which
yields fine-grained interleavings — the right granularity for exploring the
schedule space of the safety property tests and for the performance shapes
of the benchmark harness (blocking and concurrency differences between
policies show up directly in tick counts).

Scheduling semantics per tick (identical for both engines):

1. commit sessions that have no pending step;
2. classify the rest: runnable / lock-blocked / policy-blocked (WAIT) /
   policy-violating (ABORT — e.g. DDAG rule L5 after a concurrent edge
   insert, the paper's Fig. 3);
3. if nothing is runnable, find a cycle in the waits-for graph (lock waits +
   policy waits) and abort a victim, else the run has livelocked (an error);
4. execute one step of one runnable session (uniformly at random, seeded).

Two engines implement these semantics:

* ``engine="naive"`` — the reference implementation: re-classify every live
  session, re-query the lock table and rebuild the waits-for graph from
  scratch on every tick.  O(live × footprint) per tick; kept as the
  executable specification the event-driven engine is tested against.
* ``engine="event"`` (default) — the event-driven engine: classifications
  are cached and invalidated only by the events that can change them.  A
  blocked session registers in the lock table's per-entity wait queue and is
  re-examined only when a release/commit/abort returns it in a wake-up set
  (grantability-filtered: a waiter that still conflicts with the remaining
  holders stays asleep); a runnable session watching a lock is re-examined
  only when another session acquires that entity.

  The waits-for graph is **always fresh**: edges are added when a session
  blocks, re-derived when a release leaves a waiter blocked but changes its
  blocker set, and a reverse index (blocker → waiters) prunes a departing
  blocker's inbound edges eagerly at commit/abort time.  A no-runnable tick
  therefore runs cycle detection directly on the maintained graph — no
  re-validation of cached classifications, which used to make every
  deadlock-path tick O(live).  Blocked-tick accounting accrues on demand —
  at re-classification, when a blocker departs, and for cycle members at
  victim-pick time — so both engines produce identical schedules *and*
  identical metric summaries for the same seed.

Sessions whose policy logic consults *shared* mutable state
(``PolicySession.dynamic`` or an overridden ``admission``) join the
event-driven engine through the **policy-aware invalidation protocol**:
such a session declares, via ``PolicySession.admission_dependencies()``,
the invalidation channels whose change can flip its cached verdict (for
DDAG rule L5, the pending node's existence/in-edges; for altruistic AL2,
the wake state of the items it has locked or wants next).  Policy code
reports mutations through ``PolicyContext.notify_changed``, and the
scheduler — which subscribed each cached classification to its declared
channels — routes the notification into the dirty set, re-examining
exactly the sessions the change can affect.  A dynamic session that
declares nothing (``admission_dependencies() is None``, the default) keeps
the conservative behaviour: it is re-examined every tick, since e.g. an
arbitrary custom ``admission`` consulting "the present state of G" cannot
be cached blindly.

Aborted transactions release their locks, their recorded events are erased
(no recovery theory in the paper — an aborted attempt "never happened"; a
per-transaction event index makes the erasure O(own events) rather than a
rebuild of the whole log), and the transaction restarts with an intent
script recomputed by the workload's restart strategy (by default, the same
intents).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.operations import LockMode
from ..core.schedules import Event, Schedule
from ..core.states import StructuralState
from ..core.steps import Entity, Step
from ..core.transactions import Transaction
from ..exceptions import PolicyViolation, SimulationError
from ..policies.base import Admission, Intent, LockingPolicy, PolicyContext, PolicySession
from .lock_table import LockTable
from .metrics import Metrics, TxnRecord

#: Recompute the intent script after an abort: (name, attempt, context) -> intents.
RestartStrategy = Callable[[str, int, PolicyContext], Optional[Sequence[Intent]]]


@dataclass
class WorkloadItem:
    """One transaction of a workload: a name, its intent script, an optional
    restart strategy consulted after aborts, and an arrival time.

    ``start_tick`` delays admission: the transaction's policy session is
    created (and, for policies like DTR that plan at begin-time, planned)
    only when the simulation clock reaches it.  Staggered arrivals are what
    make the long-transaction scenarios meaningful — a short transaction
    arriving *behind* a sweep experiences the blocking the policies differ
    on."""

    name: str
    intents: Sequence[Intent]
    restart: Optional[RestartStrategy] = None
    start_tick: int = 0


@dataclass
class SimResult:
    """Everything a run produced."""

    schedule: Schedule
    metrics: Metrics
    committed: Tuple[str, ...]
    aborted: Tuple[str, ...]
    context: PolicyContext

    @property
    def ok(self) -> bool:
        return not self.aborted


# Cached classification states of one live session (event engine).
_NEW = "new"
_RUNNABLE = "runnable"
_LOCK_WAIT = "lock-wait"
_POLICY_WAIT = "policy-wait"


@dataclass
class _Live:
    item: WorkloadItem
    session: PolicySession
    record: TxnRecord
    attempt: int = 1
    step_count: int = 0
    #: Admission order; stable across restarts so the commit scan visits
    #: sessions exactly as the naive engine's insertion-order scan does.
    seq: int = 0
    #: Cached classification (event engine).
    state: str = _NEW
    #: Entity whose pending lock this (runnable) session is watching.
    watch_entity: Optional[Entity] = None
    #: Last tick for which blocked-time accounting has been recorded.
    accrued_to: int = -1
    #: Classification must evaluate the policy admission() verdict (the
    #: session is dynamic or overrides admission).
    needs_admission: bool = False
    #: The session declares invalidation channels (admission_dependencies
    #: is not None): it joins the event-driven engine and is re-examined
    #: on channel notifications instead of every tick.
    tracks_deps: bool = False


class Simulator:
    """Run a workload under a policy; see the module docstring.

    ``engine`` selects the scheduling implementation: ``"event"`` (the
    default event-driven engine) or ``"naive"`` (the per-tick rescan kept as
    the reference both engines' equivalence is asserted against).
    """

    ENGINES = ("event", "naive")

    def __init__(
        self,
        policy: LockingPolicy,
        seed: int = 0,
        max_ticks: int = 100_000,
        max_restarts: int = 10,
        context_kwargs: Optional[dict] = None,
        engine: str = "event",
    ):
        if engine not in self.ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {self.ENGINES}")
        self.policy = policy
        self.rng = random.Random(seed)
        self.max_ticks = max_ticks
        self.max_restarts = max_restarts
        self.context_kwargs = dict(context_kwargs or {})
        self.engine = engine

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Sequence[WorkloadItem],
        initial: StructuralState = StructuralState.empty(),
        validate: bool = True,
    ) -> SimResult:
        run = _Run(self, workload)
        run.execute()
        schedule = _assemble(run.events)
        if validate:
            schedule.assert_legal()
            schedule.assert_proper(initial)
        return SimResult(
            schedule=schedule,
            metrics=run.metrics,
            committed=tuple(run.committed),
            aborted=tuple(run.dropped),
            context=run.context,
        )


class _Run:
    """State and helpers of one simulation run (both engines)."""

    def __init__(self, sim: Simulator, workload: Sequence[WorkloadItem]):
        self.rng = sim.rng
        self.max_ticks = sim.max_ticks
        self.max_restarts = sim.max_restarts
        self.event_engine = sim.engine == "event"
        self.context = sim.policy.create_context(**sim.context_kwargs)
        self.metrics = Metrics()
        self.table = LockTable()
        self.events: List[Optional[Event]] = []
        #: Per-transaction index into ``events`` (positions of the txn's
        #: recorded events), so an abort erases O(own events), not O(log).
        self.events_by_txn: Dict[str, List[int]] = {}
        self.live: Dict[str, _Live] = {}
        self.committed: List[str] = []
        self.dropped: List[str] = []
        #: Not-yet-admitted items, arrival order; a deque so large staggered
        #: workloads admit in O(n) total instead of O(n²) list.pop(0).
        self.pending: Deque[WorkloadItem] = deque(
            sorted(workload, key=lambda it: (it.start_tick, it.name))
        )
        self._seq = 0
        # ---- event-engine state ----------------------------------------
        #: Sessions whose cached classification must be re-derived.
        self.dirty: Set[str] = set()
        #: Live dynamic sessions declaring no invalidation dependencies
        #: (re-examined every tick — the conservative fallback).
        self.dynamic: Set[str] = set()
        #: Non-dynamic sessions whose pending step is None (commit next tick).
        self.complete: Set[str] = set()
        #: Dependency-declaring sessions due a phase-1 peek (fresh admission
        #: or just executed: their replanning peek may commit or abort).
        self.phase1: Set[str] = set()
        #: Names currently classified runnable.
        self.runnable: Set[str] = set()
        #: Incremental waits-for graph: blocked session -> blockers.
        self.waits_for: Dict[str, Set[str]] = {}
        #: Reverse index of ``waits_for``: blocker -> waiters with an edge
        #: to it, kept exactly in sync so a departing blocker's inbound
        #: edges are pruned eagerly instead of lingering until the waiters'
        #: next re-classification.  This is what keeps the graph fresh
        #: enough for cycle detection to run on it directly.
        self.blocked_by: Dict[str, Set[str]] = {}
        #: Runnable sessions watching their pending lock's entity.
        self.watchers: Dict[Entity, Set[str]] = {}
        #: Invalidation-channel subscriptions: channel -> subscribed names,
        #: and the reverse index used to re-subscribe/unsubscribe.
        self.channel_subs: Dict[Hashable, Set[str]] = {}
        self.session_subs: Dict[str, Tuple[Hashable, ...]] = {}
        if self.event_engine:
            self.context.set_change_listener(self._policy_changed)

    # ------------------------------------------------------------------
    # Main loop (shared tick skeleton)
    # ------------------------------------------------------------------

    def execute(self) -> None:
        m = self.metrics
        self.admit_arrivals()
        tick = self._event_tick if self.event_engine else self._naive_tick
        while self.live or self.pending:
            if not self.live and self.pending:
                # Idle until the next arrival: jump to the tick *before* it
                # so the increment below lands exactly on start_tick (the
                # historical jump-to-start_tick admitted at start_tick + 1).
                # Clamped to the cap — a far-future arrival used to jump
                # the clock straight past the max_ticks guard below.
                m.ticks = min(
                    max(m.ticks, self.pending[0].start_tick - 1),
                    self.max_ticks,
                )
            if m.ticks >= self.max_ticks:
                raise SimulationError(
                    f"exceeded {self.max_ticks} ticks with "
                    f"{_truncated(sorted(self.live))} still active and "
                    f"{len(self.pending)} pending"
                )
            m.ticks += 1
            self.admit_arrivals()
            # Accrued *after* admissions: a transaction admitted at tick t
            # can execute at tick t, so it belongs in tick t's concurrency
            # integral (it used to be invisible until t + 1, undercounting
            # mean_active on staggered arrivals).
            m.active_integral += len(self.live)
            if not self.live:
                continue
            tick()

    # ------------------------------------------------------------------
    # Lifecycle helpers (shared)
    # ------------------------------------------------------------------

    def admit_arrivals(self) -> None:
        m = self.metrics
        while self.pending and self.pending[0].start_tick <= m.ticks:
            item = self.pending.popleft()
            session = self.context.begin(item.name, item.intents)
            record = TxnRecord(item.name, start_tick=m.ticks)
            m.records[item.name] = record
            entry = _Live(item, session, record, seq=self._seq)
            self._seq += 1
            self._register(entry)

    def _register(self, entry: _Live) -> None:
        name = entry.item.name
        session = entry.session
        self.live[name] = entry
        entry.needs_admission = (
            session.dynamic
            or type(session).admission is not PolicySession.admission
        )
        if not self.event_engine:
            return
        if entry.needs_admission:
            if session.admission_dependencies() is None:
                # Conservative fallback: the session cannot say what its
                # verdict depends on, so it is re-examined every tick.
                self.dynamic.add(name)
            else:
                # Policy-aware invalidation: classify now (dirty), let
                # phase 1 run the first peek (it may commit or abort), and
                # afterwards re-examine only on channel notifications.
                entry.tracks_deps = True
                self.phase1.add(name)
                self.dirty.add(name)
        elif session.peek() is None:
            self.complete.add(name)
        else:
            self.dirty.add(name)

    def record_event(self, name: str, event: Event) -> None:
        self.events_by_txn.setdefault(name, []).append(len(self.events))
        self.events.append(event)

    def erase(self, name: str) -> None:
        """Drop an aborted transaction's events in O(own events): tombstone
        the indexed positions (``_assemble`` skips them) instead of
        rebuilding the whole log."""
        for i in self.events_by_txn.pop(name, ()):
            self.events[i] = None

    def commit(self, entry: _Live) -> None:
        name = entry.item.name
        m = self.metrics
        self.events_by_txn.pop(name, None)  # committed events are permanent
        entry.session.on_commit()
        entry.record.committed = True
        entry.record.end_tick = m.ticks
        m.committed += 1
        self.committed.append(name)
        del self.live[name]
        self._forget(entry)
        # A policy that commits while still holding locks used to leak them
        # forever (later sessions then livelocked with a SimulationError);
        # commit now implies strictness for whatever is still held.
        released, woken = self.table.release_all_wake(name)
        if released:
            self._wake(woken)

    def abort(self, victim: _Live, reason: str) -> None:
        m = self.metrics
        name = victim.item.name
        m.aborted += 1
        victim.session.on_abort()
        self._forget(victim)
        _, woken = self.table.release_all_wake(name)
        self._wake(woken)
        self.erase(name)

        def drop() -> None:
            del self.live[name]
            self.dropped.append(name)
            victim.record.end_tick = m.ticks

        if victim.attempt > self.max_restarts:
            drop()
            return
        intents: Optional[Sequence[Intent]] = victim.item.intents
        if victim.item.restart is not None:
            intents = victim.item.restart(name, victim.attempt, self.context)
        if intents is None:
            drop()
            return
        try:
            session = self.context.begin(name, intents)
        except PolicyViolation:
            drop()
            return
        # Count the restart only now that one actually happened — a drop
        # (restart budget exhausted, strategy gave up, or begin refused the
        # replanned script) is an abort, not a restart.
        m.restarts += 1
        victim.record.restarts += 1
        entry = _Live(
            victim.item,
            session,
            victim.record,
            attempt=victim.attempt + 1,
            seq=victim.seq,
        )
        self._register(entry)

    def _execute_step(self, entry: _Live) -> None:
        m = self.metrics
        step = entry.session.peek()
        assert step is not None
        name = entry.item.name
        mode = step.lock_mode
        if step.is_lock and mode is not None:
            self.table.acquire(name, step.entity, mode)
            if self.event_engine:
                # Sessions whose cached classification assumed this entity
                # was free (watchers) must be re-derived; queued waiters
                # stay blocked — a grant can only extend their blocker
                # sets, so their edges are updated in place instead.
                self._mark_dirty(self.watchers.get(step.entity, ()), exclude=name)
                self._extend_lock_edges(name, step.entity)
        elif step.is_unlock and mode is not None:
            weakened = self.event_engine and self.table.would_weaken(
                name, step.entity, mode
            )
            woken = self.table.release(name, step.entity, mode)
            self._wake(woken)
            if weakened:
                self._refresh_lock_edges(name, step.entity)
        self.record_event(name, Event(name, entry.step_count, step))
        entry.step_count += 1
        entry.session.executed()
        m.events_executed += 1
        entry.record.steps_executed += 1
        if self.event_engine:
            self._clear_classification(entry)
            if name in self.dynamic:
                pass  # re-examined every tick anyway
            elif entry.tracks_deps:
                # Defer the replanning peek to next tick's phase 1 (it may
                # raise or drain to None — commit/abort are phase-1
                # business, exactly when the naive engine sees them).
                self.phase1.add(name)
                self.dirty.add(name)
            elif entry.session.peek() is None:
                self.complete.add(name)
            else:
                self.dirty.add(name)

    # ------------------------------------------------------------------
    # Naive engine: the reference per-tick rescan
    # ------------------------------------------------------------------

    def _naive_tick(self) -> None:
        m = self.metrics
        live = self.live
        # Phase 1: commits.
        for name in list(live):
            entry = live[name]
            try:
                step = entry.session.peek()
            except PolicyViolation as exc:
                self.abort(entry, str(exc))
                continue
            if step is None:
                self.commit(entry)
        if not live:
            return  # next arrivals (if any) admit at the top

        # Phase 2: classify.
        runnable: List[_Live] = []
        waits_for: Dict[str, Set[str]] = {}
        aborts: List[Tuple[_Live, str]] = []
        for name in sorted(live):
            entry = live[name]
            step = entry.session.peek()
            assert step is not None
            m.classify_checks += 1
            m.admission_checks += 1
            verdict = entry.session.admission()
            if verdict.verdict is Admission.ABORT:
                aborts.append((entry, verdict.reason or "policy violation"))
                continue
            if verdict.verdict is Admission.WAIT:
                m.policy_wait_observations += 1
                entry.record.blocked_ticks += 1
                waits_for.setdefault(name, set()).update(
                    w for w in verdict.waiting_on if w in live
                )
                continue
            mode = step.lock_mode
            if step.is_lock and mode is not None:
                m.blocker_queries += 1
                blockers = self.table.blockers(name, step.entity, mode)
                if blockers:
                    m.lock_wait_observations += 1
                    entry.record.blocked_ticks += 1
                    waits_for.setdefault(name, set()).update(
                        b for b in blockers if b in live
                    )
                    continue
            runnable.append(entry)

        for entry, reason in aborts:
            self.abort(entry, reason)
        if aborts:
            return

        if not runnable:
            victim_name = _pick_deadlock_victim(waits_for, live)
            if victim_name is None:
                raise SimulationError(
                    f"livelock: no runnable session and no waits-for cycle "
                    f"among {_truncated(sorted(live))}"
                )
            m.deadlocks += 1
            m.deadlock_victims.append(victim_name)
            self.abort(live[victim_name], "deadlock victim")
            return

        # Phase 3: execute one step.
        self._execute_step(self.rng.choice(runnable))

    # ------------------------------------------------------------------
    # Event engine
    # ------------------------------------------------------------------

    def _subscribe(self, name: str, channels: Iterable[Hashable]) -> None:
        """Point the session's subscriptions at ``channels`` (re-read from
        ``admission_dependencies`` at every classification, since the
        relevant region moves with the pending step)."""
        new = tuple(dict.fromkeys(channels))
        old = self.session_subs.get(name, ())
        if new == old:
            return
        for ch in old:
            subs = self.channel_subs.get(ch)
            if subs is not None:
                subs.discard(name)
                if not subs:
                    del self.channel_subs[ch]
        if new:
            self.session_subs[name] = new
            for ch in new:
                self.channel_subs.setdefault(ch, set()).add(name)
        else:
            self.session_subs.pop(name, None)

    def _policy_changed(self, channels: Tuple[Hashable, ...]) -> None:
        """Context-emitted change notification: mark every subscriber of a
        changed channel dirty, so phase 2 re-derives exactly the cached
        verdicts this mutation can flip."""
        m = self.metrics
        for ch in channels:
            subs = self.channel_subs.get(ch)
            if not subs:
                continue
            for n in subs:
                if n in self.live and n not in self.dirty:
                    self.dirty.add(n)
                    m.invalidations += 1

    def _wake(self, names) -> None:
        """A release returned these waiters in its wake-up set."""
        if not self.event_engine:
            return
        for n in names:
            if n in self.live and n not in self.dirty:
                self.dirty.add(n)
                self.metrics.wakeups += 1

    def _mark_dirty(self, names, exclude: Optional[str] = None) -> None:
        for n in names:
            if n != exclude and n in self.live:
                self.dirty.add(n)

    # ---- waits-for edge maintenance ----------------------------------

    def _set_edges(self, name: str, blockers: Set[str]) -> None:
        """Point ``name``'s outgoing waits-for edges at ``blockers``,
        keeping the reverse index in sync."""
        old = self.waits_for.get(name)
        self.waits_for[name] = blockers
        if old:
            for b in old - blockers:
                self._drop_reverse(b, name)
            added = blockers - old
        else:
            added = blockers
        for b in added:
            self.blocked_by.setdefault(b, set()).add(name)

    def _drop_edges(self, name: str) -> None:
        """Remove ``name``'s outgoing waits-for edges (and their reverse
        entries)."""
        old = self.waits_for.pop(name, None)
        if old:
            for b in old:
                self._drop_reverse(b, name)

    def _drop_reverse(self, blocker: str, waiter: str) -> None:
        waiters = self.blocked_by.get(blocker)
        if waiters is not None:
            waiters.discard(waiter)
            if not waiters:
                del self.blocked_by[blocker]

    def _refresh_lock_edges(self, releaser: str, entity: Entity) -> None:
        """A release by ``releaser`` may have dropped it from ``entity``'s
        conflicting holders without unblocking the remaining waiters (the
        wake-up set is grantability-filtered).  Their cached waits-for
        edges must not keep pointing at the releaser — the maintained
        graph would diverge from the naive engine's fresh rebuild at the
        next cycle search — so re-derive each still-blocked waiter's edge
        set from the table, without re-classifying the session."""
        m = self.metrics
        for waiter, wanted in self.table.waiter_modes(entity):
            if waiter == releaser or waiter in self.dirty:
                continue  # dirty waiters are fully re-classified anyway
            entry = self.live.get(waiter)
            if entry is None or entry.state != _LOCK_WAIT:
                continue
            m.blocker_queries += 1
            self._set_edges(
                waiter,
                {
                    b
                    for b in self.table.blockers(waiter, entity, wanted)
                    if b in self.live
                },
            )

    def _extend_lock_edges(self, holder: str, entity: Entity) -> None:
        """``holder`` just acquired a grant on ``entity``: a fresh grant
        cannot unblock a queued waiter, only extend its blocker set, so the
        new edge is added in place — the acquire-side twin of
        :meth:`_refresh_lock_edges` (re-classifying every waiter here was
        O(waiters) full classifications per acquire on a hot entity)."""
        effective = self.table.mode_held(holder, entity)
        assert effective is not None
        for waiter, wanted in self.table.waiter_modes(entity):
            if waiter == holder or waiter in self.dirty:
                continue  # dirty waiters are fully re-classified anyway
            entry = self.live.get(waiter)
            if entry is None or entry.state != _LOCK_WAIT:
                continue
            if not wanted.conflicts_with(effective):
                continue
            edges = self.waits_for.get(waiter)
            if edges is not None and holder not in edges:
                edges.add(holder)
                self.blocked_by.setdefault(holder, set()).add(waiter)

    def _accrue(self, entry: _Live, through: int) -> None:
        """Catch a blocked session's lazy blocked-tick accounting up
        through tick ``through`` (it sat in the same blocked state the
        whole time — anything that could have changed it would have
        re-examined it sooner)."""
        if entry.state == _LOCK_WAIT:
            lock_wait = True
        elif entry.state == _POLICY_WAIT:
            lock_wait = False
        else:
            return
        skipped = through - entry.accrued_to
        if skipped > 0:
            self.metrics.accrue_blocked(entry.record, lock_wait, skipped)
            entry.accrued_to = through

    def _clear_classification(self, entry: _Live) -> None:
        name = entry.item.name
        self.runnable.discard(name)
        self._drop_edges(name)
        if entry.state == _LOCK_WAIT:
            self.table.remove_waiter(name)
        if entry.watch_entity is not None:
            watching = self.watchers.get(entry.watch_entity)
            if watching is not None:
                watching.discard(name)
                if not watching:
                    del self.watchers[entry.watch_entity]
            entry.watch_entity = None
        entry.state = _NEW

    def _forget(self, entry: _Live) -> None:
        """Drop every piece of engine bookkeeping for this incarnation."""
        name = entry.item.name
        self._clear_classification(entry)
        # Eagerly prune inbound waits-for edges: a departed session blocks
        # nobody, and a restarted incarnation under the same name must not
        # inherit edges aimed at its predecessor.  The waiters' lazy
        # accounting is caught up through the previous tick first (if this
        # departure is their wake-up, re-classification will cover the
        # current tick; if it is not, a later accrual point will).
        waiters = self.blocked_by.pop(name, None)
        if waiters:
            through = self.metrics.ticks - 1
            for w in waiters:
                w_entry = self.live.get(w)
                if w_entry is not None:
                    self._accrue(w_entry, through)
                edges = self.waits_for.get(w)
                if edges is not None:
                    edges.discard(name)
        self.dirty.discard(name)
        self.dynamic.discard(name)
        self.complete.discard(name)
        self.phase1.discard(name)
        self._subscribe(name, ())

    def _classify(self, entry: _Live, aborts: List[Tuple[_Live, str]]) -> None:
        """Re-derive ``entry``'s scheduling state: one iteration of the
        naive Phase-2 loop, plus lazy accounting for the ticks skipped since
        the previous classification (during which the session necessarily
        sat in the same blocked state — nothing that could have changed it
        happened, or it would have been re-examined sooner)."""
        m = self.metrics
        name = entry.item.name
        now = m.ticks
        self._accrue(entry, now - 1)
        self._clear_classification(entry)
        m.classify_checks += 1
        step = entry.session.peek()
        assert step is not None
        if entry.tracks_deps:
            deps = entry.session.admission_dependencies()
            self._subscribe(name, deps if deps is not None else ())
        if entry.needs_admission:
            m.admission_checks += 1
            verdict = entry.session.admission()
            if verdict.verdict is Admission.ABORT:
                aborts.append((entry, verdict.reason or "policy violation"))
                return
            if verdict.verdict is Admission.WAIT:
                m.accrue_blocked(entry.record, False, 1)
                entry.state = _POLICY_WAIT
                entry.accrued_to = now
                self._set_edges(
                    name, {w for w in verdict.waiting_on if w in self.live}
                )
                return
        mode = step.lock_mode
        if step.is_lock and mode is not None:
            m.blocker_queries += 1
            blockers = self.table.blockers(name, step.entity, mode)
            if blockers:
                m.accrue_blocked(entry.record, True, 1)
                entry.state = _LOCK_WAIT
                entry.accrued_to = now
                self.table.add_waiter(name, step.entity, mode)
                self._set_edges(name, {b for b in blockers if b in self.live})
                return
            # Runnable with a pending lock: watch the entity so a concurrent
            # acquire invalidates this classification.
            self.watchers.setdefault(step.entity, set()).add(name)
            entry.watch_entity = step.entity
        entry.state = _RUNNABLE
        self.runnable.add(name)

    def _event_tick(self) -> None:
        m = self.metrics
        live = self.live
        # Phase 1: commits/phase-1 aborts.  Only sessions that can act here
        # — every-tick dynamic ones (whose peek replans against present
        # shared state and may raise or drain to None), finished scripted
        # ones, and dependency-declaring sessions due their replanning peek
        # (fresh admission or just executed) — are visited, in admission
        # order, matching the naive engine's insertion-order scan over all
        # of live (for every other session the phase-1 peek is an
        # observable no-op: its queue is non-empty and peek is idempotent).
        candidates = [
            n for n in self.complete | self.dynamic | self.phase1 if n in live
        ]
        self.phase1.clear()
        for name in sorted(candidates, key=lambda n: live[n].seq):
            entry = live.get(name)
            if entry is None:
                continue
            try:
                step = entry.session.peek()
            except PolicyViolation as exc:
                self.abort(entry, str(exc))
                continue
            if step is None:
                self.commit(entry)
        if not live:
            return

        # Phase 2: classify only sessions whose cached state may have
        # changed — the dirty set (woken waiters, invalidated watchers,
        # executors, fresh admissions) plus every dynamic session.
        check = [
            n
            for n in self.dirty | self.dynamic
            if n in live and n not in self.complete
        ]
        self.dirty.clear()
        aborts: List[Tuple[_Live, str]] = []
        for name in sorted(check):
            self._classify(live[name], aborts)
        for entry, reason in aborts:
            self.abort(entry, reason)
        if aborts:
            return

        if not self.runnable:
            # Deadlock path: the waits-for graph is maintained always-fresh
            # (edges re-derived on block/release, inbound edges pruned at
            # departure), so cycle detection runs directly on it — no
            # re-validation of cached classifications, which used to make
            # every no-runnable tick O(live).
            deadlock = _find_deadlock(self.waits_for, live)
            if deadlock is None:
                raise SimulationError(
                    f"livelock: no runnable session and no waits-for cycle "
                    f"among {_truncated(sorted(live))}"
                )
            victim_name, cycle = deadlock
            m.deadlocks += 1
            m.deadlock_victims.append(victim_name)
            # The naive engine classifies every blocked session at the
            # deadlock tick; the cycle members' lazy accounting must be
            # equally fresh here (the victim's record is final after the
            # abort), the rest catch up at their next accrual point.
            for member in cycle:
                entry = live.get(member)
                if entry is not None:
                    self._accrue(entry, m.ticks)
            self.abort(live[victim_name], "deadlock victim")
            return

        # Phase 3: execute one step.
        self._execute_step(live[self.rng.choice(sorted(self.runnable))])


def _assemble(events: Sequence[Optional[Event]]) -> Schedule:
    """Build a Schedule from raw events, reconstructing each transaction from
    its own event subsequence (erased aborts tombstone their positions to
    ``None`` and leave per-transaction gaps in the recorded indices, so
    tombstones are skipped and events re-indexed)."""
    steps_by_txn: Dict[str, List[Step]] = {}
    reindexed: List[Event] = []
    for e in events:
        if e is None:
            continue  # erased by an abort
        seq = steps_by_txn.setdefault(e.txn, [])
        reindexed.append(Event(e.txn, len(seq), e.step))
        seq.append(e.step)
    txns = [Transaction(name, tuple(steps)) for name, steps in steps_by_txn.items()]
    return Schedule(txns, reindexed)


def _truncated(names: Sequence[str], limit: int = 12) -> str:
    """Render a session-name list for an error message, truncating huge
    populations (a stalled 10,000-transaction run used to dump every
    name into the SimulationError text)."""
    names = list(names)
    if len(names) <= limit:
        return repr(names)
    shown = ", ".join(repr(n) for n in names[:limit])
    return f"[{shown}, ... +{len(names) - limit} more]"


def _find_deadlock(
    waits_for: Dict[str, Set[str]], live: Dict[str, _Live]
) -> Optional[Tuple[str, List[str]]]:
    """Find a cycle in the waits-for graph; return ``(victim, cycle)``
    where the victim is the cycle's cheapest member (prefer no structural
    effects, then fewest executed steps)."""
    cycle = _find_cycle(waits_for)
    if cycle is None:
        return None
    def cost(name: str) -> Tuple[int, int, str]:
        entry = live[name]
        return (
            1 if entry.session.has_structural_effects else 0,
            entry.step_count,
            name,
        )
    return min(cycle, key=cost), cycle


def _pick_deadlock_victim(
    waits_for: Dict[str, Set[str]], live: Dict[str, _Live]
) -> Optional[str]:
    """The victim half of :func:`_find_deadlock` (the naive engine needs
    no cycle-member accounting)."""
    found = _find_deadlock(waits_for, live)
    return None if found is None else found[0]


def _find_cycle(graph: Dict[str, Set[str]]) -> Optional[List[str]]:
    """Three-colour DFS with an explicit stack — wait chains can run
    thousands of sessions deep (one blocked txn per entity of a long
    sweep), well past Python's recursion limit."""
    color: Dict[str, int] = {}
    parent: Dict[str, Optional[str]] = {}

    for root in sorted(graph):
        if color.get(root, 0) != 0:
            continue
        parent[root] = None
        color[root] = 1
        stack = [(root, iter(sorted(graph.get(root, ()))))]
        while stack:
            node, neighbours = stack[-1]
            descended = False
            for nxt in neighbours:
                c = color.get(nxt, 0)
                if c == 0:
                    parent[nxt] = node
                    color[nxt] = 1
                    stack.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    descended = True
                    break
                if c == 1:
                    cycle = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]  # type: ignore[assignment]
                        cycle.append(cur)
                    return cycle
            if not descended:
                color[node] = 2
                stack.pop()
    return None
