"""Metrics collected by the concurrency simulator.

The performance benchmark (the substitute for the paper's companion
evaluation [CHMS94]) reports these per policy/workload cell: throughput,
blocking, aborts, and mean latency — the dimensions along which altruistic
locking and DDAG claim improvements over 2PL for long/traversal
transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TxnRecord:
    """Per-transaction lifecycle record."""

    name: str
    start_tick: int
    end_tick: Optional[int] = None
    committed: bool = False
    restarts: int = 0
    steps_executed: int = 0
    blocked_ticks: int = 0

    @property
    def latency(self) -> Optional[int]:
        if self.end_tick is None:
            return None
        return self.end_tick - self.start_tick


@dataclass
class Metrics:
    """Aggregate counters for one simulation run."""

    ticks: int = 0
    events_executed: int = 0
    committed: int = 0
    aborted: int = 0
    restarts: int = 0
    deadlocks: int = 0
    #: Victim of each waits-for cycle resolution, in detection order; the
    #: engines must agree on this sequence exactly (the equivalence tests
    #: compare it), not just on the ``deadlocks`` count.
    deadlock_victims: List[str] = field(default_factory=list)
    lock_wait_observations: int = 0
    policy_wait_observations: int = 0
    active_integral: int = 0
    records: Dict[str, TxnRecord] = field(default_factory=dict)

    # -- scheduler work counters ---------------------------------------
    # How much classification work the engine performed.  These measure the
    # *engine*, not the workload, so they are reported separately from
    # :meth:`summary` (whose values are identical between the naive and the
    # event-driven engine on the same seed; the work counters are exactly
    # what the event engine is built to shrink).
    #: Full session classifications performed (peek + admission + lock check).
    classify_checks: int = 0
    #: Policy admission() evaluations.
    admission_checks: int = 0
    #: Lock-table conflict (blockers) queries.
    blocker_queries: int = 0
    #: Sessions re-examined because a lock release/commit/abort woke them.
    wakeups: int = 0
    #: Sessions re-examined because a policy change notification hit one of
    #: their declared invalidation channels (the policy-aware protocol that
    #: lets dynamic sessions skip the every-tick re-check).
    invalidations: int = 0
    #: Waits-for cycle detections run (no-runnable ticks).
    cycle_detections: int = 0
    #: Graph nodes visited (DFS pushes) across all cycle detections — the
    #: naive engine re-walks the whole graph per detection; the event
    #: engine's incremental detector re-walks only the possibly-cyclic
    #: region, so this is the counter the deadlock bench compares.
    cycle_visits: int = 0

    def accrue_blocked(self, record: TxnRecord, lock_wait: bool, ticks: int) -> None:
        """Credit ``ticks`` blocked-tick observations to ``record`` in one
        step — the event engine's accrue-on-demand accounting.  The naive
        engine adds +1 per blocked session per tick; the event engine skips
        untouched sessions and catches their accounting up lazily (at
        re-classification, when a blocker departs, and for cycle members at
        victim-pick time), so the totals of both engines match exactly."""
        if ticks <= 0:
            return
        record.blocked_ticks += ticks
        if lock_wait:
            self.lock_wait_observations += ticks
        else:
            self.policy_wait_observations += ticks

    @property
    def throughput(self) -> float:
        """Committed transactions per tick."""
        return self.committed / self.ticks if self.ticks else 0.0

    @property
    def mean_latency(self) -> float:
        latencies = [
            r.latency for r in self.records.values() if r.latency is not None and r.committed
        ]
        return sum(latencies) / len(latencies) if latencies else 0.0

    @property
    def mean_active(self) -> float:
        """Average number of concurrently active transactions (the
        'concurrency level' axis of the performance study)."""
        return self.active_integral / self.ticks if self.ticks else 0.0

    @property
    def wait_fraction(self) -> float:
        """Fraction of scheduling observations that found a session blocked
        (lock waits plus policy waits)."""
        total = self.lock_wait_observations + self.policy_wait_observations
        denom = total + self.events_executed
        return total / denom if denom else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "ticks": float(self.ticks),
            "committed": float(self.committed),
            "aborted": float(self.aborted),
            "restarts": float(self.restarts),
            "deadlocks": float(self.deadlocks),
            "throughput": self.throughput,
            "mean_latency": self.mean_latency,
            "mean_active": self.mean_active,
            "wait_fraction": self.wait_fraction,
        }

    def work_summary(self) -> Dict[str, float]:
        """Engine work counters (see the field comments); reported by the
        performance benchmarks to compare scheduler implementations."""
        return {
            "classify_checks": float(self.classify_checks),
            "admission_checks": float(self.admission_checks),
            "blocker_queries": float(self.blocker_queries),
            "wakeups": float(self.wakeups),
            "invalidations": float(self.invalidations),
            "classify_per_tick": (
                self.classify_checks / self.ticks if self.ticks else 0.0
            ),
            "cycle_detections": float(self.cycle_detections),
            "cycle_visits": float(self.cycle_visits),
            "cycle_visits_per_detection": (
                self.cycle_visits / self.cycle_detections
                if self.cycle_detections
                else 0.0
            ),
        }
