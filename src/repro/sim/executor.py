"""Pluggable executors for the event engine's phase pipeline.

The event tick is a pipeline of phases (commit scan → classify →
deadlock → execute; see :meth:`repro.sim.scheduler._Run._event_tick`).
The classify phase is the only one whose work is partitioned:
:meth:`AdmissionCache.take_check_slices` splits the check set into
shard-local slices keyed by each session's pending lock entity's shard
(``LockTable.shard_of``) plus a small global slice (admission-needing or
lock-free sessions).  An executor decides *how* those slices are walked:

* :class:`SerialExecutor` (default, ``shard_workers=0``) merges the
  slices back into the legacy fully-sorted sequence and runs the
  classic interleaved ``classify`` per session — byte-identical to the
  pre-pipeline engine by construction, and the reference every parallel
  configuration is equivalence-tested against.
* :class:`ParallelExecutor` fans the shard slices out to a
  ``ThreadPoolExecutor``: each worker runs the **pure derive half**
  (:meth:`Classifier.derive`) of its slice into a per-shard
  :class:`ShardBuffer`, the coordinator derives the global slice itself,
  and everything joins at a **deterministic merge barrier** — buffered
  decisions are applied (:meth:`Classifier.apply`) on the coordinator in
  shard-index order, global slice last.

**Shard-locality contract** (statically enforced by lint rules RPR006
directly and RPR007 through the whole-program call graph, with RPR008
checking that no two worker-reachable sites race on the same shared
target and RPR009 that the coordinator merge path below only mutates
scheduler state through the sanctioned calls):
a shard-phase callable — anything decorated :func:`shard_phase`, the
only code that runs on workers — may read the frozen phase inputs it is
handed (the live table, the derive callable, its slice of names) and
write **only** its per-shard buffer.  No global ``_Run``/cache/graph/
metrics state, no lock-table mutation.  During the classify phase the
holder maps and live table are frozen (grants, releases, commits, and
aborts all happen in other phases), so derivations of distinct sessions
read disjoint-or-immutable state and commute.

**Merge-barrier determinism argument.**  Output is byte-identical to the
serial reference at any worker count because

1. *derive is pure* on frozen inputs, so every session's decision is the
   same object-value regardless of which thread computes it or when;
2. *applies all run on the coordinator*, so no mutation races exist;
3. *apply order is unobservable*: per-session effects (state, accounting,
   accrual) touch only that session's entry; cross-session effects are
   commutative — set inserts, plain counter increments, per-name edge
   replacement in the waits-for graph (whose detection iterates via
   ``sorted``/``min``, never dict order, and whose cached-walk cuts
   compose to a position minimum in any order), and waiter-queue
   insertion order, which downstream feeds only set-adds and counters;
4. the only order-*observable* effect — the abort list — is populated
   exclusively by admission-needing sessions, which all route to the
   global slice and are applied last in sorted order, the same relative
   order the legacy sequence produced.

The per-phase work counters (:class:`ExecutorStats`) live on the
executor, **not** in ``Metrics.work_summary()``: they describe how the
work was scheduled, not what work the engine did, and keeping them out
of the summary is what keeps ``SeedOutcome``s byte-identical across
``shard_workers``.  They surface as ``SimResult.executor_stats``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

__all__ = [
    "ExecutorStats",
    "ParallelExecutor",
    "SerialExecutor",
    "ShardBuffer",
    "derive_slice",
    "make_executor",
    "shard_phase",
]


def shard_phase(fn: Callable) -> Callable:
    """Mark ``fn`` as a shard-phase callable: code that may run on a
    shard worker and must obey the shard-locality contract (reads frozen
    phase inputs, writes only its per-shard buffer).  The marker is what
    lint rule RPR006 keys on; the whole-program rules RPR007/RPR008 use
    it to seed the set of worker roots whose transitive effect closure
    must stay shard-local."""
    fn.__shard_phase__ = True
    return fn


@dataclass
class ShardBuffer:
    """One shard's output of the classify phase: the derived decisions,
    in slice (sorted-name) order, awaiting coordinator apply at the merge
    barrier.  ``shard`` is -1 for the global slice."""

    shard: int
    decisions: List[Tuple[object, object]] = field(default_factory=list)


@shard_phase
def derive_slice(derive, live, names, buf):
    """Derive one slice's classifications into its buffer — the whole
    body of a shard worker's phase-2 contribution.  Pure with respect to
    global state: ``derive`` is :meth:`Classifier.derive` (read-only on
    frozen phase inputs) and the only write target is ``buf``."""
    for name in names:
        entry = live[name]
        buf.decisions.append((entry, derive(entry)))
    return buf


class ExecutorStats:
    """Per-phase work counters: how the classify work was partitioned and
    scheduled.  Deliberately outside ``Metrics.work_summary()`` (see the
    module docstring)."""

    def __init__(self) -> None:
        #: Classifications routed to each shard slice (grown on demand).
        self.shard_classifications: List[int] = []
        #: Classifications that spilled to the global slice
        #: (admission-needing / dependency-declaring / lock-free).
        self.spill_classifications: int = 0
        #: Ticks that ran a classify phase with a non-empty check set.
        self.classify_ticks: int = 0
        #: Ticks where at least one shard slice was fanned out to workers.
        self.parallel_ticks: int = 0
        #: Futures joined at merge barriers (one per fanned-out slice).
        self.barrier_waits: int = 0

    def count_slices(self, slices, global_slice) -> None:
        """Account one tick's partitioned check set."""
        if len(self.shard_classifications) < len(slices):
            self.shard_classifications.extend(
                [0] * (len(slices) - len(self.shard_classifications))
            )
        nonempty = False
        for shard, names in enumerate(slices):
            if names:
                nonempty = True
                self.shard_classifications[shard] += len(names)
        if global_slice:
            nonempty = True
            self.spill_classifications += len(global_slice)
        if nonempty:
            self.classify_ticks += 1

    def as_dict(self) -> Dict[str, object]:
        sharded = sum(self.shard_classifications)
        total = sharded + self.spill_classifications
        return {
            "classify_ticks": self.classify_ticks,
            "parallel_ticks": self.parallel_ticks,
            "barrier_waits": self.barrier_waits,
            "shard_classifications": list(self.shard_classifications),
            "sharded_classifications": sharded,
            "spill_classifications": self.spill_classifications,
            "spill_fraction": (
                self.spill_classifications / total if total else 0.0
            ),
        }


class SerialExecutor:
    """The byte-identical reference: merge the slices back into the
    legacy fully-sorted check sequence and run the interleaved
    derive+apply (:meth:`Classifier.classify`) per session."""

    kind = "serial"
    shard_workers = 0

    def __init__(self) -> None:
        self.stats = ExecutorStats()

    def run_classify(self, classifier, live, slices, global_slice, aborts):
        self.stats.count_slices(slices, global_slice)
        merged = [n for names in slices for n in names]
        merged.extend(global_slice)
        for name in sorted(merged):
            classifier.classify(live[name], aborts)

    def snapshot(self) -> Dict[str, object]:
        return {
            "executor": self.kind,
            "shard_workers": self.shard_workers,
            **self.stats.as_dict(),
        }

    def shutdown(self) -> None:
        pass


class ParallelExecutor:
    """Fan shard slices out to a thread pool for the pure derive half,
    join at the deterministic merge barrier, apply in shard-index order
    (global slice last) on the coordinator.  Byte-identical to
    :class:`SerialExecutor` at any worker count (see the module
    docstring's determinism argument, and ``tests/test_executor.py``)."""

    kind = "parallel"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.shard_workers = workers
        self.stats = ExecutorStats()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shard"
        )

    def run_classify(self, classifier, live, slices, global_slice, aborts):
        self.stats.count_slices(slices, global_slice)
        buffers: List[ShardBuffer] = []
        futures = []
        for shard, names in enumerate(slices):
            if not names:
                continue
            buf = ShardBuffer(shard=shard)
            buffers.append(buf)
            futures.append(
                self._pool.submit(
                    derive_slice, classifier.derive, live, names, buf
                )
            )
        # The global slice (admission-needing / dependency-declaring /
        # lock-free sessions) derives on the coordinator: admission calls
        # may read shared policy context workers must not race with.
        global_buf = ShardBuffer(shard=-1)
        derive_slice(classifier.derive, live, global_slice, global_buf)
        if futures:
            self.stats.parallel_ticks += 1
            for future in futures:
                future.result()  # merge barrier; re-raises worker errors
                self.stats.barrier_waits += 1
        for buf in buffers:  # shard-index order (built in enumerate order)
            for entry, decision in buf.decisions:
                classifier.apply(entry, decision, aborts)
        for entry, decision in global_buf.decisions:
            classifier.apply(entry, decision, aborts)

    def snapshot(self) -> Dict[str, object]:
        return {
            "executor": self.kind,
            "shard_workers": self.shard_workers,
            **self.stats.as_dict(),
        }

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def make_executor(shard_workers: int):
    """``shard_workers=0`` → the serial reference; ``N>=1`` → a parallel
    executor over an ``N``-thread pool."""
    if shard_workers < 0:
        raise ValueError(f"shard_workers must be >= 0, got {shard_workers}")
    if shard_workers == 0:
        return SerialExecutor()
    return ParallelExecutor(shard_workers)
