"""Pluggable executors for the event engine's phase pipeline.

The event tick is a pipeline of phases (commit scan → classify →
deadlock → execute; see :meth:`repro.sim.scheduler._Run._event_tick`).
The classify phase is the only one whose work is partitioned:
:meth:`AdmissionCache.take_check_slices` splits the check set into
shard-local slices keyed by each session's routing home
(``LockTable.shard_of`` of the pending step's entity, or of a
dependency-declaring session's single channel shard) plus a small global
slice for the genuinely entity-less / cross-shard residue.  An executor
decides *how* those slices are walked:

* :class:`SerialExecutor` (default, ``shard_workers=0`` or
  ``executor="serial"``) merges the slices back into the legacy
  fully-sorted sequence and runs the classic interleaved ``classify`` per
  session — byte-identical to the pre-pipeline engine by construction,
  and the reference every parallel configuration is equivalence-tested
  against.
* :class:`ParallelExecutor` (``executor="thread"``) fans the shard slices
  out to a ``ThreadPoolExecutor``: each worker runs the **pure derive
  half** (:meth:`Classifier.derive`) of its slice into a per-shard
  :class:`ShardBuffer`, the coordinator derives the global slice itself,
  and everything joins at a **deterministic merge barrier** — buffered
  decisions are applied (:meth:`Classifier.apply`) on the coordinator in
  shard-index order, global slice last.
* :class:`ProcessExecutor` (``executor="process"``) keeps ``N``
  persistent spawn-safe worker processes, each owning a **long-lived
  replica** of its shards' frozen classify inputs — the effective-mode
  holder maps plus a per-session snapshot of the pending step — kept
  current by compact per-tick deltas instead of per-tick full pickles.
  Shard slices big enough to amortize the IPC round trip
  (:data:`PROCESS_MIN_BATCH`) ship to their owning worker
  (``shard % workers``); the worker derives blocker sets against its
  replica and returns a compact reply buffer the coordinator reconstructs
  into the identical :class:`~repro.sim.admission.Decision` values.
  Admission-needing and dependency-declaring sessions always derive on
  the coordinator (the policy context is not replicated); everything
  still applies at the same shard-index merge barrier.

**Shard-locality contract** (statically enforced by lint rules RPR006
directly and RPR007 through the whole-program call graph, with RPR008
checking that no two worker-reachable sites race on the same shared
target and RPR009 that the coordinator merge path below only mutates
scheduler state through the sanctioned calls):
a shard-phase callable — anything decorated :func:`shard_phase`, the
only code that runs on thread workers — may read the frozen phase inputs
it is handed (the live table, the derive callable, its slice of names)
and write **only** its per-shard buffer.  No global ``_Run``/cache/graph/
metrics state, no lock-table mutation.  Process workers are stricter
still: they live in another address space and see only the pickled
replica deltas (:func:`_process_worker` — a module-level target, per the
RPR004 spawn-safety discipline extended to this seam).  During the
classify phase the holder maps and live table are frozen (grants,
releases, commits, and aborts all happen in other phases), so
derivations of distinct sessions read disjoint-or-immutable state and
commute.

**Merge-barrier determinism argument.**  Output is byte-identical to the
serial reference at any worker count because

1. *derive is pure* on frozen inputs, so every session's decision is the
   same object-value regardless of which thread or process computes it
   or when (the process worker computes the same blocker set the lock
   table would return: its replica maps entities to effective holder
   modes, exactly the inputs of ``LockTable.blockers``, and the
   coordinator filters the reply against ``live`` just as ``derive``
   does);
2. *applies all run on the coordinator*, so no mutation races exist;
3. *apply order is unobservable*: per-session effects (state, accounting,
   accrual) touch only that session's entry; cross-session effects are
   commutative — set inserts, plain counter increments, per-name edge
   replacement in the waits-for graph (whose detection iterates via
   ``sorted``/``min``, never dict order, and whose cached-walk cuts
   compose to a position minimum in any order), and waiter-queue
   insertion order, which downstream feeds only set-adds and counters;
4. the only order-*observable* effect — the abort list — is canonicalized
   by the phase itself: ``_phase_classify`` sorts the collected aborts by
   session name before processing them, which is exactly the relative
   order the legacy fully-sorted sequence (and the naive engine's
   ``sorted(live)`` scan) produced.

The per-phase work counters (:class:`ExecutorStats`) live on the
executor, **not** in ``Metrics.work_summary()``: they describe how the
work was scheduled, not what work the engine did, and keeping them out
of the summary is what keeps ``SeedOutcome``s byte-identical across
``shard_workers``.  They surface as ``SimResult.executor_stats``.
Routing-level counters (``shard_classifications``, ``spill_causes``)
describe the partition; execution-site counters
(``coordinator_classifications``, ``worker_classifications``,
``spill_classifications`` and the ``spill_fraction`` derived from them)
are incremented where a derivation *actually ran*, so the reported spill
is the executed one, not a recount of the routing decision.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from .admission import Decision, LOCK_WAIT, RUNNABLE

__all__ = [
    "ExecutorStats",
    "EXECUTOR_KINDS",
    "PROCESS_MIN_BATCH",
    "ParallelExecutor",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardBuffer",
    "derive_slice",
    "make_executor",
    "shard_phase",
]

#: The executor axis the benches sweep (``--executor``).
EXECUTOR_KINDS = ("serial", "thread", "process")

#: Smallest per-worker shippable batch worth an IPC round trip: a single
#: derivation costs a few microseconds while a pipe round trip costs
#: hundreds, so tiny slices (the common case in event-driven runs, which
#: average ~1 classification per tick) derive locally on the coordinator.
PROCESS_MIN_BATCH = 32

#: Start method for the persistent worker processes.  ``spawn`` is the
#: default because it proves the picklability contract (workers share
#: nothing with the parent); tests override this module constant to
#: ``fork`` where spawn's interpreter start-up would dominate.
PROCESS_START_METHOD = "spawn"


def shard_phase(fn: Callable) -> Callable:
    """Mark ``fn`` as a shard-phase callable: code that may run on a
    shard worker and must obey the shard-locality contract (reads frozen
    phase inputs, writes only its per-shard buffer).  The marker is what
    lint rule RPR006 keys on; the whole-program rules RPR007/RPR008 use
    it to seed the set of worker roots whose transitive effect closure
    must stay shard-local."""
    fn.__shard_phase__ = True
    return fn


class ShardBuffer:
    """One shard's output of the classify phase: the derived decisions,
    in slice (sorted-name) order, awaiting coordinator apply at the merge
    barrier.  ``shard`` is -1 for the global slice."""

    __slots__ = ("shard", "decisions")

    def __init__(self, shard: int, decisions: Optional[list] = None) -> None:
        self.shard = shard
        self.decisions: List[Tuple[object, object]] = (
            decisions if decisions is not None else []
        )


@shard_phase
def derive_slice(derive, live, names, buf):
    """Derive one slice's classifications into its buffer — the whole
    body of a thread worker's phase-2 contribution.  Pure with respect to
    global state: ``derive`` is :meth:`Classifier.derive` (read-only on
    frozen phase inputs) and the only write target is ``buf``."""
    for name in names:
        entry = live[name]
        buf.decisions.append((entry, derive(entry)))
    return buf


def _process_worker(conn) -> None:
    """Persistent process-worker loop (module-level so the ``spawn``
    start method can import it — the RPR004 discipline).  Owns the
    replica of its shards' frozen classify inputs:

    * ``holders`` — entity → {txn: effective LockMode}, patched by the
      per-tick holder deltas (``None`` clears an entity);
    * ``snaps`` — session name → ``(entity, mode)`` for a pending lock
      step or ``None`` for a trivially-runnable step, patched by snapshot
      deltas.

    Each request is ``(holder_delta, snap_delta, names)``; the reply is a
    list aligned with ``names``: ``None`` for a trivial RUNNABLE, else
    the (possibly empty) tuple of blockers of the pending lock — exactly
    what ``LockTable.blockers`` would have returned, minus the
    liveness filter the coordinator re-applies.  A ``None`` request shuts
    the worker down."""
    from ..core.operations import LockMode

    exclusive = LockMode.EXCLUSIVE
    holders: Dict[object, Dict[str, object]] = {}
    snaps: Dict[str, Optional[Tuple[object, object]]] = {}
    while True:
        try:
            msg = pickle.loads(conn.recv_bytes())
        except EOFError:
            break
        if msg is None:
            break
        holder_delta, snap_delta, names = msg
        for entity, entry in holder_delta.items():
            if entry is None:
                holders.pop(entity, None)
            else:
                holders[entity] = entry
        snaps.update(snap_delta)
        reply: List[Optional[Tuple[str, ...]]] = []
        for name in names:
            snap = snaps[name]
            if snap is None:
                reply.append(None)
                continue
            entity, mode = snap
            held = holders.get(entity)
            if held:
                reply.append(tuple(
                    other
                    for other, held_mode in held.items()
                    if other != name
                    and (mode is exclusive or held_mode is exclusive)
                ))
            else:
                reply.append(())
        conn.send_bytes(pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))
    conn.close()


def _check_spawnable_worker() -> None:
    """Fail fast where ``spawn`` cannot work (same hazard as
    ``repro.sim.grid._check_spawnable_main``, duplicated here because the
    kernel layer must not import the grid driver): re-importing
    ``__main__`` in each worker requires its ``__file__``, when it has
    one, to exist on disk.  ``fork`` inherits the parent image and never
    re-imports, so the hazard does not apply."""
    if PROCESS_START_METHOD == "fork":
        return
    main_module = sys.modules.get("__main__")
    if main_module is None or getattr(main_module, "__spec__", None) is not None:
        return
    main_file = getattr(main_module, "__file__", None)
    if main_file is not None and not os.path.exists(main_file):
        raise RuntimeError(
            f"executor='process' uses the {PROCESS_START_METHOD!r} start "
            f"method, which re-imports __main__ in every worker — "
            f"impossible here (__main__.__file__ is {main_file!r}, which "
            f"does not exist; typically a stdin/heredoc script).  Run from "
            f"a real script or use executor='thread'."
        )


class ExecutorStats:
    """Per-phase work counters: how the classify work was partitioned and
    scheduled.  Deliberately outside ``Metrics.work_summary()`` (see the
    module docstring)."""

    def __init__(self) -> None:
        #: Classifications routed to each shard slice (grown on demand).
        self.shard_classifications: List[int] = []
        #: Routed-to-global classifications by cause (admission / dynamic
        #: / entity_less; see ``AdmissionCache.route``).
        self.spill_causes: Dict[str, int] = {}
        #: Global-slice classifications the executor *actually executed*
        #: on the coordinator (the executed twin of the routing tally).
        self.spill_classifications: int = 0
        #: Derivations executed on the coordinator (global slice plus any
        #: shard slices the executor chose not to fan out).
        self.coordinator_classifications: int = 0
        #: Derivations executed on workers (threads or processes).
        self.worker_classifications: int = 0
        #: Ticks that ran a classify phase with a non-empty check set.
        self.classify_ticks: int = 0
        #: Ticks where at least one shard slice was fanned out to workers.
        self.parallel_ticks: int = 0
        #: Futures/replies joined at merge barriers (one per fanned-out
        #: slice or shipped worker message).
        self.barrier_waits: int = 0
        #: Process executor only: messages shipped to workers and their
        #: total pickled payload/reply bytes.
        self.ipc_round_trips: int = 0
        self.delta_bytes: int = 0
        self.reply_bytes: int = 0

    def count_slices(self, slices, global_slice, spill=None) -> None:
        """Account one tick's routing partition (who was sliced where —
        execution-site counters are incremented by the executors where
        the derivations actually run)."""
        if len(self.shard_classifications) < len(slices):
            self.shard_classifications.extend(
                [0] * (len(slices) - len(self.shard_classifications))
            )
        nonempty = bool(global_slice)
        for shard, names in enumerate(slices):
            if names:
                nonempty = True
                self.shard_classifications[shard] += len(names)
        if spill:
            for cause, count in spill.items():
                self.spill_causes[cause] = (
                    self.spill_causes.get(cause, 0) + count
                )
        if nonempty:
            self.classify_ticks += 1

    def as_dict(self) -> Dict[str, object]:
        sharded = sum(self.shard_classifications)
        executed = self.coordinator_classifications + self.worker_classifications
        return {
            "classify_ticks": self.classify_ticks,
            "parallel_ticks": self.parallel_ticks,
            "barrier_waits": self.barrier_waits,
            "shard_classifications": list(self.shard_classifications),
            "sharded_classifications": sharded,
            "coordinator_classifications": self.coordinator_classifications,
            "worker_classifications": self.worker_classifications,
            "spill_classifications": self.spill_classifications,
            "spill_causes": {
                k: self.spill_causes[k] for k in sorted(self.spill_causes)
            },
            "spill_fraction": (
                self.spill_classifications / executed if executed else 0.0
            ),
            "ipc_round_trips": self.ipc_round_trips,
            "delta_bytes": self.delta_bytes,
            "reply_bytes": self.reply_bytes,
        }


class SerialExecutor:
    """The byte-identical reference: merge the slices back into the
    legacy fully-sorted check sequence and run the interleaved
    derive+apply (:meth:`Classifier.classify`) per session."""

    kind = "serial"
    shard_workers = 0

    def __init__(self) -> None:
        self.stats = ExecutorStats()

    def bind_table(self, table) -> None:
        """Serial and thread executors read the live lock table directly;
        only the process executor needs delta extraction."""

    def run_classify(self, classifier, live, slices, global_slice, aborts,
                     spill=None):
        stats = self.stats
        stats.count_slices(slices, global_slice, spill)
        merged = [n for names in slices for n in names]
        merged.extend(global_slice)
        stats.coordinator_classifications += len(merged)
        stats.spill_classifications += len(global_slice)
        for name in sorted(merged):
            classifier.classify(live[name], aborts)

    def snapshot(self) -> Dict[str, object]:
        return {
            "executor": self.kind,
            "shard_workers": self.shard_workers,
            **self.stats.as_dict(),
        }

    def shutdown(self) -> None:
        pass


class ParallelExecutor:
    """Fan shard slices out to a thread pool for the pure derive half,
    join at the deterministic merge barrier, apply in shard-index order
    (global slice last) on the coordinator.  Byte-identical to
    :class:`SerialExecutor` at any worker count (see the module
    docstring's determinism argument, and ``tests/test_executor.py``)."""

    kind = "thread"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.shard_workers = workers
        self.stats = ExecutorStats()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shard"
        )

    def bind_table(self, table) -> None:
        pass

    def run_classify(self, classifier, live, slices, global_slice, aborts,
                     spill=None):
        stats = self.stats
        stats.count_slices(slices, global_slice, spill)
        buffers: List[ShardBuffer] = []
        futures = []
        for shard, names in enumerate(slices):
            if not names:
                continue
            buf = ShardBuffer(shard=shard)
            buffers.append(buf)
            stats.worker_classifications += len(names)
            futures.append(
                self._pool.submit(
                    derive_slice, classifier.derive, live, names, buf
                )
            )
        # The global slice (entity-less / cross-shard-channel sessions)
        # derives on the coordinator.
        global_buf = ShardBuffer(shard=-1)
        derive_slice(classifier.derive, live, global_slice, global_buf)
        stats.coordinator_classifications += len(global_slice)
        stats.spill_classifications += len(global_slice)
        if futures:
            stats.parallel_ticks += 1
            for future in futures:
                future.result()  # merge barrier; re-raises worker errors
                stats.barrier_waits += 1
        for buf in buffers:  # shard-index order (built in enumerate order)
            for entry, decision in buf.decisions:
                classifier.apply(entry, decision, aborts)
        for entry, decision in global_buf.decisions:
            classifier.apply(entry, decision, aborts)

    def snapshot(self) -> Dict[str, object]:
        return {
            "executor": self.kind,
            "shard_workers": self.shard_workers,
            **self.stats.as_dict(),
        }

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor:
    """Persistent process-backed shard workers with replica deltas.

    ``N`` worker processes are created lazily (once per simulation, at
    the first tick that ships work) and live until :meth:`shutdown`.
    Worker ``w`` owns shards ``{s : s % N == w}`` and keeps a replica of
    their frozen classify inputs — effective-mode holder maps plus
    per-session pending-step snapshots — patched by compact per-tick
    deltas (only entities whose holder set changed since the last ship,
    only sessions whose snapshot changed).  The coordinator:

    1. drains the lock table's changed-entity set into per-worker pending
       delta maps (cheap: the table records a ``set.add`` per mutation,
       and the drain runs only on ticks that actually ship);
    2. partitions each shard slice into *shippable* names (no admission
       call, no declared dependencies — the derive reads only the
       snapshot and the holder map) and coordinator-local ones;
    3. ships each worker whose shippable batch reaches
       :data:`PROCESS_MIN_BATCH` one message, derives everything else
       locally while the workers compute, then collects replies and
       reconstructs :class:`~repro.sim.admission.Decision` values that
       are equal by construction to what ``Classifier.derive`` returns;
    4. applies everything at the usual merge barrier in shard-index
       order, global slice last.

    Byte-identical to the serial reference by the module docstring's
    argument; the delta/IPC work counters (``delta_bytes``,
    ``ipc_round_trips``) record what the replica protocol cost."""

    kind = "process"

    def __init__(self, workers: int, min_batch: Optional[int] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.shard_workers = workers
        self.min_batch = (
            min_batch if min_batch is not None else PROCESS_MIN_BATCH
        )
        self.stats = ExecutorStats()
        self._table = None
        self._procs: List[object] = []
        self._conns: List[object] = []
        #: Per-worker pending holder deltas (entity -> replica entry or
        #: None), flushed into the next message shipped to that worker.
        self._pending: List[Dict[object, object]] = [
            {} for _ in range(workers)
        ]
        #: Per-worker snapshot cache mirroring the worker's ``snaps`` —
        #: only changed entries ride in the snap delta.
        self._snaps: List[Dict[str, object]] = [{} for _ in range(workers)]

    # -- replica plumbing ----------------------------------------------

    def bind_table(self, table) -> None:
        """Attach the run's lock table and switch on its changed-entity
        tracking (must happen before any grant so the first drain
        bootstraps complete replicas)."""
        self._table = table
        table.enable_delta_tracking()

    def _ensure_started(self) -> None:
        if self._procs:
            return
        _check_spawnable_worker()
        ctx = multiprocessing.get_context(PROCESS_START_METHOD)
        for _ in range(self.shard_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_process_worker, args=(child,), daemon=True
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)

    def _drain_table_delta(self) -> None:
        """Distribute the table's holder changes since the last drain
        into the per-worker pending maps (latest snapshot wins)."""
        table = self._table
        if table is None:
            return
        delta = table.take_holder_delta()
        if not delta:
            return
        workers = self.shard_workers
        shard_of = table.shard_of
        pending = self._pending
        for entity, entry in delta.items():
            pending[shard_of(entity) % workers][entity] = entry

    # -- classify ------------------------------------------------------

    @staticmethod
    def _shippable(entry) -> bool:
        """Whether the session's derive reads only replicated inputs: no
        admission verdict, no dependency declaration (both read shared
        policy context, which stays coordinator-side)."""
        return not (entry.needs_admission or entry.tracks_deps)

    @staticmethod
    def _snap(entry):
        """The worker-side derive input for a shippable session:
        ``(entity, mode)`` of a pending lock step, ``None`` for anything
        trivially runnable (data/unlock/structural steps)."""
        step = entry.session.peek()
        if step is not None and step.is_lock and step.lock_mode is not None:
            return (step.entity, step.lock_mode)
        return None

    def _decision(self, name, snap, blockers, live) -> Decision:
        """Reconstruct the Decision ``Classifier.derive`` would have
        produced for a shippable session from the worker's reply."""
        if blockers is None:
            return Decision(name, RUNNABLE)
        entity, mode = snap
        if blockers:
            return Decision(
                name,
                LOCK_WAIT,
                edges={b for b in blockers if b in live},
                entity=entity,
                mode=mode,
                blockers_queried=True,
            )
        return Decision(
            name, RUNNABLE, entity=entity, watch=True, blockers_queried=True
        )

    def run_classify(self, classifier, live, slices, global_slice, aborts,
                     spill=None):
        stats = self.stats
        stats.count_slices(slices, global_slice, spill)
        workers = self.shard_workers
        # Partition each shard slice into shippable / coordinator-local
        # names, grouped by owning worker.
        ship: List[List[Tuple[int, str]]] = [[] for _ in range(workers)]
        local: Dict[str, object] = {}
        for shard, names in enumerate(slices):
            if not names:
                continue
            bucket = ship[shard % workers]
            for name in names:
                entry = live[name]
                if self._shippable(entry):
                    bucket.append((shard, name))
                else:
                    local[name] = None
        shipping = [
            w for w in range(workers) if len(ship[w]) >= self.min_batch
        ]
        shipped: Dict[str, object] = {}
        if shipping:
            self._ensure_started()
            self._drain_table_delta()
            stats.parallel_ticks += 1
        for w in shipping:
            snap_delta: Dict[str, object] = {}
            cache = self._snaps[w]
            names: List[str] = []
            for shard, name in ship[w]:
                snap = self._snap(live[name])
                names.append(name)
                shipped[name] = snap
                if cache.get(name, _MISSING) != snap:
                    cache[name] = snap
                    snap_delta[name] = snap
            payload = pickle.dumps(
                (self._pending[w], snap_delta, names),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._pending[w] = {}
            self._conns[w].send_bytes(payload)
            stats.ipc_round_trips += 1
            stats.delta_bytes += len(payload)
        # Names not shipped (under-threshold workers) derive locally too.
        for w in range(workers):
            if w not in shipping:
                for _, name in ship[w]:
                    local[name] = None
        # Coordinator-side derives overlap the workers' computation.
        for name in local:
            local[name] = classifier.derive(live[name])
        global_buf = [
            (live[n], classifier.derive(live[n])) for n in global_slice
        ]
        stats.coordinator_classifications += len(local) + len(global_slice)
        stats.spill_classifications += len(global_slice)
        # Merge barrier: collect replies, reconstruct decisions.
        for w in shipping:
            raw = self._conns[w].recv_bytes()
            stats.reply_bytes += len(raw)
            stats.barrier_waits += 1
            reply = pickle.loads(raw)
            stats.worker_classifications += len(reply)
            for (_, name), blockers in zip(ship[w], reply):
                local[name] = self._decision(
                    name, shipped[name], blockers, live
                )
        # Apply in shard-index order, global slice last.
        for names in slices:
            for name in names:
                classifier.apply(live[name], local[name], aborts)
        for entry, decision in global_buf:
            classifier.apply(entry, decision, aborts)

    def snapshot(self) -> Dict[str, object]:
        return {
            "executor": self.kind,
            "shard_workers": self.shard_workers,
            **self.stats.as_dict(),
        }

    def shutdown(self) -> None:
        conns, procs = self._conns, self._procs
        self._conns, self._procs = [], []
        sentinel = pickle.dumps(None)
        for conn in conns:
            try:
                conn.send_bytes(sentinel)
            except (BrokenPipeError, OSError):
                pass
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
        for conn in conns:
            conn.close()


#: Sentinel distinguishing "never snapshotted" from a ``None`` snapshot.
_MISSING = object()


def make_executor(shard_workers: int, kind: str = "thread",
                  min_batch: Optional[int] = None):
    """``shard_workers=0`` (or ``kind="serial"``) → the serial reference;
    ``N>=1`` → a ``kind`` executor ("thread" → :class:`ParallelExecutor`
    over an ``N``-thread pool, "process" → :class:`ProcessExecutor` over
    ``N`` persistent worker processes)."""
    if shard_workers < 0:
        raise ValueError(f"shard_workers must be >= 0, got {shard_workers}")
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}"
        )
    if shard_workers == 0 or kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return ProcessExecutor(shard_workers, min_batch=min_batch)
    return ParallelExecutor(shard_workers)
