"""The live-session table entry shared by both engines.

:class:`LiveEntry` is the one piece of scheduler state the naive
reference engine and the event engine must agree on field-for-field — the
commit scan, deadlock victim costing, and per-transaction records all
read it.  It lives in its own leaf module so ``sim/reference.py`` (the
executable specification) can use it without importing the event-engine
internals it is the oracle for (``scheduler``/``admission``/``waits_for``
— enforced by lint rule RPR003).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.steps import Entity
from ..policies.base import PolicySession
from .metrics import TxnRecord

if TYPE_CHECKING:  # pragma: no cover - type-only, avoids an import cycle
    from .scheduler import WorkloadItem

# Cached classification states of one live session (event engine).
NEW = "new"
RUNNABLE = "runnable"
LOCK_WAIT = "lock-wait"
POLICY_WAIT = "policy-wait"


@dataclass
class LiveEntry:
    """One live session's scheduling state (both engines)."""

    item: "WorkloadItem"
    session: PolicySession
    record: TxnRecord
    attempt: int = 1
    step_count: int = 0
    #: Admission order; stable across restarts so the commit scan visits
    #: sessions exactly as the naive engine's insertion-order scan does.
    seq: int = 0
    #: Cached classification (event engine).
    state: str = NEW
    #: Entity whose pending lock this (runnable) session is watching.
    watch_entity: Optional[Entity] = None
    #: Last tick for which blocked-time accounting has been recorded.
    accrued_to: int = -1
    #: Classification must evaluate the policy admission() verdict (the
    #: session is dynamic or overrides admission).
    needs_admission: bool = False
    #: The session declares invalidation channels (admission_dependencies
    #: is not None): it joins the event-driven engine and is re-examined
    #: on channel notifications instead of every tick.
    tracks_deps: bool = False
