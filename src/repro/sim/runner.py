"""Experiment driver: run policy × workload grids and aggregate metrics.

This is the harness behind the performance benchmark (the simulated
substitute for [CHMS94]).  Each cell runs several seeds and averages the
metric summaries; results come back as plain dict rows so the benches can
print paper-style tables without any plotting dependencies.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.serializability import is_serializable
from ..core.states import StructuralState
from ..exceptions import SimulationError
from ..policies.base import LockingPolicy
from .scheduler import SimResult, Simulator, WorkloadItem

#: A workload factory: seed -> (items, initial structural state).
WorkloadFactory = Callable[[int], Tuple[Sequence[WorkloadItem], StructuralState]]


@dataclass
class CellResult:
    """Aggregated metrics for one (policy, workload) cell."""

    policy: str
    workload: str
    runs: int
    failures: int
    means: Dict[str, float]
    stdevs: Dict[str, float]
    #: True iff at least one run succeeded and every successful run was
    #: serializable.  A cell whose every seed failed reports False — it must
    #: not read as green.
    all_serializable: bool

    def row(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "policy": self.policy,
            "workload": self.workload,
            "runs": self.runs,
            "failures": self.failures,
            "serializable": self.all_serializable,
        }
        out.update({k: round(v, 4) for k, v in self.means.items()})
        # The per-seed spread was computed but silently dropped; surface it
        # so BENCH_* artifacts record variance alongside the means.
        out.update({f"{k}_sd": round(v, 4) for k, v in self.stdevs.items()})
        return out


def run_cell(
    policy: LockingPolicy,
    workload_name: str,
    factory: WorkloadFactory,
    seeds: Sequence[int],
    context_kwargs_factory: Optional[Callable[[int], dict]] = None,
    max_ticks: int = 200_000,
    check_serializability: bool = True,
    engine: str = "event",
) -> CellResult:
    """Run one policy over several seeded instances of a workload."""
    summaries: List[Dict[str, float]] = []
    failures = 0
    all_srz = True
    for seed in seeds:
        items, initial = factory(seed)
        kwargs = context_kwargs_factory(seed) if context_kwargs_factory else {}
        sim = Simulator(
            policy, seed=seed, max_ticks=max_ticks, context_kwargs=kwargs,
            engine=engine,
        )
        try:
            result = sim.run(items, initial)
        except SimulationError:
            failures += 1
            continue
        if check_serializability and not is_serializable(result.schedule):
            all_srz = False
        summaries.append(result.metrics.summary())
    if not summaries:
        # Every seed failed: nothing was verified, so the cell must not
        # report itself serializable (it used to come back green with empty
        # means, hiding total failure).
        all_srz = False
    keys = summaries[0].keys() if summaries else []
    means = {k: statistics.fmean(s[k] for s in summaries) for k in keys}
    stdevs = {
        k: (statistics.pstdev([s[k] for s in summaries]) if len(summaries) > 1 else 0.0)
        for k in keys
    }
    return CellResult(
        policy=policy.name,
        workload=workload_name,
        runs=len(summaries),
        failures=failures,
        means=means,
        stdevs=stdevs,
        all_serializable=all_srz,
    )


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Monospace table used by the bench harness to print paper-style rows."""
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            text = str(row.get(c, ""))
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    rule = "-+-".join("-" * widths[c] for c in columns)
    lines = [header, rule]
    for cells in rendered:
        lines.append(
            " | ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns))
        )
    return "\n".join(lines)
