"""Experiment driver: run policy × workload cells and aggregate metrics.

This is the harness behind the performance benchmark (the simulated
substitute for [CHMS94]).  Each cell runs several seeds and averages the
metric summaries; results come back as plain dict rows so the benches can
print paper-style tables without any plotting dependencies.

The per-seed unit of work is :func:`run_seed`, which returns a plain,
picklable :class:`SeedOutcome`; :func:`aggregate_outcomes` turns a cell's
outcomes (in seed order) into a :class:`CellResult`.  :func:`run_cell` is
the in-process composition of the two — and the reference semantics the
multiprocess grid runner (:mod:`repro.sim.grid`) is equivalence-tested
against, mirroring the ``engine="naive"`` pattern of the scheduler.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.serializability import is_serializable
from ..core.states import StructuralState
from ..exceptions import SimulationError
from ..policies.base import LockingPolicy
from .scheduler import SimResult, Simulator, WorkloadItem

#: A workload factory: seed -> (items, initial structural state).
WorkloadFactory = Callable[[int], Tuple[Sequence[WorkloadItem], StructuralState]]

#: How many ``(seed, error)`` pairs a :class:`CellResult` records before
#: truncating — the same discipline as ``SimulationError`` live-list
#: messages (``CellResult.failures`` always carries the true count).
FAILED_SEEDS_LIMIT = 12
#: Cap on one recorded failure message (SimulationError texts embed
#: truncated live lists, but a custom restart strategy could raise with
#: anything).
_ERROR_CHARS = 300


@dataclass
class SeedOutcome:
    """What one seed-run of one cell produced.

    Plain data (dicts, floats, strings) so a multiprocessing worker can
    stream it back to the aggregating parent; no schedules, sessions, or
    other live simulator objects cross the process boundary.
    """

    seed: int
    #: ``metrics.summary()`` of a successful run; ``None`` if it failed.
    summary: Optional[Dict[str, float]] = None
    #: ``metrics.work_summary()`` of a successful run (engine work
    #: counters — what the BENCH artifacts track across PRs).
    work: Optional[Dict[str, float]] = None
    #: Serializability verdict: ``True``/``False`` when checked, ``None``
    #: when the run failed or the cell skipped the check.
    serializable: Optional[bool] = None
    #: ``SimulationError`` text (truncated) when the run failed.
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class CellResult:
    """Aggregated metrics for one (policy, workload) cell."""

    policy: str
    workload: str
    runs: int
    failures: int
    means: Dict[str, float]
    stdevs: Dict[str, float]
    #: True iff at least one run succeeded and every successful *checked*
    #: run was serializable.  A cell whose every seed failed reports False —
    #: it must not read as green.
    all_serializable: bool
    #: Whether the serializability check actually ran.  An unchecked cell
    #: must not read as green either: ``row()`` reports ``"skipped"``.
    serializability_checked: bool = True
    #: ``(seed, error message)`` pairs for the failed seeds, truncated at
    #: :data:`FAILED_SEEDS_LIMIT` (``failures`` is the true count), so a red
    #: cell in BENCH output is diagnosable without a rerun.
    failed_seeds: Tuple[Tuple[int, str], ...] = ()
    #: Mean engine work counters over the successful runs (not part of
    #: ``row()`` — they measure the engine, not the workload — but recorded
    #: in the unified BENCH artifacts).
    work_means: Dict[str, float] = field(default_factory=dict)

    @property
    def serializable(self) -> object:
        """The value ``row()`` reports: ``False`` for an all-failed cell,
        ``"skipped"`` when the check did not run, else the checked verdict."""
        if self.runs == 0:
            return False
        if not self.serializability_checked:
            return "skipped"
        return self.all_serializable

    def row(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "policy": self.policy,
            "workload": self.workload,
            "runs": self.runs,
            "failures": self.failures,
            "serializable": self.serializable,
        }
        out.update({k: round(v, 4) for k, v in self.means.items()})
        # The per-seed spread was computed but silently dropped; surface it
        # so BENCH_* artifacts record variance alongside the means.
        out.update({f"{k}_sd": round(v, 4) for k, v in self.stdevs.items()})
        if self.failed_seeds:
            out["failed_seeds"] = [list(pair) for pair in self.failed_seeds]
        return out


def run_seed(
    policy: LockingPolicy,
    items: Sequence[WorkloadItem],
    initial: StructuralState,
    seed: int,
    context_kwargs: Optional[dict] = None,
    max_ticks: int = 200_000,
    check_serializability: bool = True,
    engine: str = "event",
    lock_shards: int = 1,
    shard_workers: int = 0,
    executor: str = "thread",
) -> SeedOutcome:
    """Run one seeded instance of a cell and reduce it to a
    :class:`SeedOutcome` (the unit of work the grid runner fans out)."""
    sim = Simulator(
        policy, seed=seed, max_ticks=max_ticks,
        context_kwargs=context_kwargs or {}, engine=engine,
        lock_shards=lock_shards, shard_workers=shard_workers,
        executor=executor,
    )
    try:
        result = sim.run(items, initial)
    except SimulationError as exc:
        return SeedOutcome(seed=seed, error=str(exc)[:_ERROR_CHARS])
    serializable = is_serializable(result.schedule) if check_serializability else None
    return SeedOutcome(
        seed=seed,
        summary=result.metrics.summary(),
        work=result.metrics.work_summary(),
        serializable=serializable,
    )


def _mean_keys(summaries: Sequence[Dict[str, float]]) -> List[str]:
    """Aggregation keys: the intersection of every summary's key set, in
    the first summary's order.  Aggregating over ``summaries[0]`` alone used
    to KeyError mid-aggregation if a future metric ever appeared in only
    some runs; the intersection keeps every key all runs can answer for."""
    if not summaries:
        return []
    key_sets = [set(s) for s in summaries[1:]]
    return [k for k in summaries[0] if all(k in s for s in key_sets)]


def aggregate_outcomes(
    policy_name: str,
    workload_name: str,
    outcomes: Sequence[SeedOutcome],
    check_serializability: bool = True,
) -> CellResult:
    """Fold one cell's seed outcomes (in seed order) into a
    :class:`CellResult` — the shared aggregation path of the serial
    :func:`run_cell` and the multiprocess grid runner, so both produce
    byte-identical rows from the same outcomes."""
    summaries = [o.summary for o in outcomes if not o.failed]
    failed = [(o.seed, o.error or "") for o in outcomes if o.failed]
    all_srz = all(o.serializable is not False for o in outcomes)
    if not summaries:
        # Every seed failed: nothing was verified, so the cell must not
        # report itself serializable (it used to come back green with empty
        # means, hiding total failure).
        all_srz = False
    keys = _mean_keys(summaries)
    means = {k: statistics.fmean(s[k] for s in summaries) for k in keys}
    stdevs = {
        k: (statistics.pstdev([s[k] for s in summaries]) if len(summaries) > 1 else 0.0)
        for k in keys
    }
    works = [o.work for o in outcomes if not o.failed and o.work is not None]
    work_means = {k: statistics.fmean(w[k] for w in works) for k in _mean_keys(works)}
    return CellResult(
        policy=policy_name,
        workload=workload_name,
        runs=len(summaries),
        failures=len(failed),
        means=means,
        stdevs=stdevs,
        all_serializable=all_srz,
        serializability_checked=check_serializability,
        failed_seeds=tuple(failed[:FAILED_SEEDS_LIMIT]),
        work_means=work_means,
    )


def run_cell(
    policy: LockingPolicy,
    workload_name: str,
    factory: WorkloadFactory,
    seeds: Sequence[int],
    context_kwargs_factory: Optional[Callable[[int], dict]] = None,
    max_ticks: int = 200_000,
    check_serializability: bool = True,
    engine: str = "event",
    lock_shards: int = 1,
    shard_workers: int = 0,
    executor: str = "thread",
) -> CellResult:
    """Run one policy over several seeded instances of a workload, serially
    in this process.

    This accepts arbitrary callables (closures are fine) and is the
    reference path of the grid runner: ``run_grid(spec, workers=0)`` over a
    registered factory must produce exactly the rows this produces.
    """
    outcomes: List[SeedOutcome] = []
    for seed in seeds:
        items, initial = factory(seed)
        kwargs = context_kwargs_factory(seed) if context_kwargs_factory else {}
        outcomes.append(run_seed(
            policy, items, initial, seed,
            context_kwargs=kwargs, max_ticks=max_ticks,
            check_serializability=check_serializability, engine=engine,
            lock_shards=lock_shards, shard_workers=shard_workers,
            executor=executor,
        ))
    return aggregate_outcomes(
        policy.name, workload_name, outcomes, check_serializability
    )


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Monospace table used by the bench harness to print paper-style rows."""
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            text = str(row.get(c, ""))
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    rule = "-+-".join("-" * widths[c] for c in columns)
    lines = [header, rule]
    for cells in rendered:
        lines.append(
            " | ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns))
        )
    return "\n".join(lines)
