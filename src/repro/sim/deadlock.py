"""Deadlock detection and victim selection — the resolution layer of the
scheduler kernel.

The naive engine rebuilds the waits-for graph from scratch every tick and
calls :func:`find_cycle` on it (the executable specification); the event
engine maintains the graph incrementally
(:class:`repro.sim.waits_for.WaitsForGraph`) and runs a certificate-cached
detection that must return bit-identical cycles.  Both hand the found
cycle to :func:`pick_victim`, so the engines' deadlock-victim sequences
are comparable element by element.

**Victim tie-break (deterministic).**  The victim is the cycle member with
the minimum :func:`victim_cost` triple, compared lexicographically:

1. ``has_structural_effects`` (0 before 1) — a transaction that already
   inserted or deleted nodes/edges is never sacrificed while a pure
   reader/writer is available, since the paper has no recovery theory for
   structural effects (an aborted attempt must be erasable);
2. ``step_count`` (fewer first) — abort the transaction that loses the
   least executed work;
3. ``name`` (lexicographically smallest first) — a total order, so victim
   selection is deterministic across engines, seeds, worker processes,
   and Python hash randomization.

Because the cycle itself is found deterministically (sorted roots, sorted
neighbours, first back edge) and the cost triple is a total order, the
whole resolution is a pure function of the graph and the live table.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple


def cycle_from_parents(
    parent: Mapping[str, Optional[str]], node: str, head: str
) -> List[str]:
    """Reconstruct the cycle closed by the back edge ``node -> head`` from
    the DFS parent chain (shared by the from-scratch and incremental
    detectors, so their output is identical by construction)."""
    cycle = [node]
    cur = node
    while cur != head:
        cur = parent[cur]  # type: ignore[assignment]
        cycle.append(cur)
    return cycle


def find_cycle_counted(
    graph: Mapping[str, Set[str]]
) -> Tuple[Optional[List[str]], int]:
    """Three-colour DFS with an explicit stack — wait chains can run
    thousands of sessions deep (one blocked txn per entity of a long
    sweep), well past Python's recursion limit.  Returns the first cycle
    met walking sorted roots / sorted neighbours (or ``None``) plus the
    number of nodes pushed — the from-scratch cost the incremental
    detector is measured against."""
    color: Dict[str, int] = {}
    parent: Dict[str, Optional[str]] = {}
    visits = 0

    for root in sorted(graph):
        if color.get(root, 0) != 0:
            continue
        parent[root] = None
        color[root] = 1
        visits += 1
        stack = [(root, iter(sorted(graph.get(root, ()))))]
        while stack:
            node, neighbours = stack[-1]
            descended = False
            for nxt in neighbours:
                c = color.get(nxt, 0)
                if c == 0:
                    parent[nxt] = node
                    color[nxt] = 1
                    visits += 1
                    stack.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    descended = True
                    break
                if c == 1:
                    return cycle_from_parents(parent, node, nxt), visits
            if not descended:
                color[node] = 2
                stack.pop()
    return None, visits


def find_cycle(graph: Mapping[str, Set[str]]) -> Optional[List[str]]:
    """The from-scratch reference detector (oracle) without the visit
    count."""
    return find_cycle_counted(graph)[0]


def victim_cost(live: Mapping[str, object]):
    """The deterministic victim-cost key over ``live`` entries (see the
    module docstring for the ordering); exposed so tests can assert the
    tie-break directly."""

    def cost(name: str) -> Tuple[int, int, str]:
        entry = live[name]
        return (
            1 if entry.session.has_structural_effects else 0,  # type: ignore[attr-defined]
            entry.step_count,  # type: ignore[attr-defined]
            name,
        )

    return cost


def pick_victim(cycle: List[str], live: Mapping[str, object]) -> str:
    """The cycle's cheapest member under :func:`victim_cost`."""
    return min(cycle, key=victim_cost(live))


def resolve_deadlock(
    waits_for: Mapping[str, Set[str]], live: Mapping[str, object]
) -> Optional[Tuple[str, List[str], int]]:
    """From-scratch resolution (the naive engine's path): find a cycle and
    cost a victim; returns ``(victim, cycle, visits)`` or ``None`` when
    the graph is acyclic (livelock)."""
    cycle, visits = find_cycle_counted(waits_for)
    if cycle is None:
        return None
    return pick_victim(cycle, live), cycle, visits
