"""Workload generators for the simulator.

These produce the synthetic equivalents of the scenarios motivating each
policy in the paper:

* **traversal workloads** over rooted DAGs (the knowledge-base access
  pattern the DDAG policy was designed for — Section 4 / [CHMS94]);
* **long-transaction workloads** (the altruistic-locking scenario of
  Section 5: one long transaction sweeping many entities plus short
  transactions touching a few);
* **random access-set workloads** for the DTR policy (Section 6) and the
  2PL baseline;
* **dynamic traversal workloads** mixing traversals with node/edge inserts
  (exercising the properness machinery end to end).

Every generator is seeded and returns :class:`~repro.sim.scheduler.WorkloadItem`
lists plus the initial structural state the run needs.

For the multiprocess grid runner (:mod:`repro.sim.grid`) the generators are
additionally wrapped as **registered grid factories** — named entries in
:data:`GRID_FACTORIES` with the uniform signature
``fn(seed, **kwargs) -> (items, initial, context_kwargs)``.  A grid cell
references a factory *by name* plus plain keyword arguments, so the task
that crosses the process boundary is picklable; the worker constructs the
workload (and any policy-context kwargs, e.g. the DDAG database graph)
locally from the seed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.states import StructuralState
from ..core.steps import Entity
from ..graphs.dag import RootedDag
from ..graphs.generators import random_rooted_dag, random_subdag_walk
from ..policies.base import Access, InsertNode, Intent, edge_entity
from ..policies.ddag import Unlock
from .scheduler import RestartStrategy, WorkloadItem

#: A registered grid factory: ``fn(seed, **kwargs)`` returning the workload
#: items, the initial structural state, and the policy-context kwargs the
#: workload implies (``{}`` for most; ``{"dag": ...}`` for traversals —
#: policies that take no context kwargs ignore extras).
GridWorkloadFactory = Callable[
    ..., Tuple[List[WorkloadItem], StructuralState, dict]
]

GRID_FACTORIES: Dict[str, GridWorkloadFactory] = {}


def register_grid_factory(
    name: str,
) -> Callable[[GridWorkloadFactory], GridWorkloadFactory]:
    """Register a grid factory under ``name`` (decorator).  Names are the
    pickle-safe handle grid cells carry instead of live callables."""

    def decorate(fn: GridWorkloadFactory) -> GridWorkloadFactory:
        if name in GRID_FACTORIES:
            raise ValueError(f"grid factory {name!r} already registered")
        GRID_FACTORIES[name] = fn  # repro: noqa[RPR004] the decorator body is the sanctioned import-time registration point
        return fn

    return decorate


def grid_factory(name: str) -> GridWorkloadFactory:
    """Look up a registered grid factory by name."""
    try:
        return GRID_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(GRID_FACTORIES)) or "(none)"
        raise KeyError(
            f"unknown grid workload factory {name!r}; registered: {known}"
        ) from None


def grid_factory_names() -> Tuple[str, ...]:
    """The registered grid factory names, sorted."""
    return tuple(sorted(GRID_FACTORIES))


def _staggered_start(index: int, arrival_rate: Optional[float]) -> int:
    """Arrival tick of the ``index``-th transaction at ``arrival_rate``
    transactions per tick (``None`` = everyone at tick 0)."""
    if arrival_rate is None:
        return 0
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    return int(index / arrival_rate)


def _contended_picks(
    rng: random.Random,
    entities: Sequence[str],
    hot: Sequence[str],
    accesses_per_txn: int,
    hot_traffic: float,
) -> List[str]:
    """One transaction's access set: distinct entities, each drawn from the
    hot pool with probability ``hot_traffic`` (when a hot pool exists),
    otherwise from the whole space.  The distinct-pick target is bounded by
    the reachable pool — all-hot traffic over a hot set smaller than
    ``accesses_per_txn`` would otherwise spin the rejection loop forever."""
    target = min(accesses_per_txn, len(entities))
    if hot and hot_traffic >= 1.0:
        target = min(target, len(hot))
    picks: List[str] = []
    while len(picks) < target:
        pool = hot if hot and rng.random() < hot_traffic else entities
        e = rng.choice(pool)
        if e not in picks:
            picks.append(e)
    return picks


def dag_structural_state(dag: RootedDag) -> StructuralState:
    """The structural state induced by a database graph: every node and every
    edge entity exists."""
    entities = set(dag.nodes())
    entities.update(edge_entity(u, v) for u, v in dag.edges())
    return StructuralState(frozenset(entities))


def ddag_cone_intents(dag: RootedDag, targets: Sequence[Entity]) -> List[Intent]:
    """Accesses covering the ancestor cones of ``targets`` in topological
    order — always admissible under L4/L5 (every predecessor of every locked
    node is locked earlier) and therefore the universal DDAG fallback plan.
    """
    cone = set()
    for t in targets:
        if t in dag.graph:
            cone |= dag.ancestors(t)
    order = [n for n in dag.graph.topological_order() if n in cone]
    return [Access(n) for n in order]


def ddag_restart_from_cone(targets: Sequence[Entity]) -> RestartStrategy:
    """Restart strategy for DDAG aborts: replan from the present graph by
    walking the whole ancestor cone (the paper's "abort and start from node
    2" — node 2 being the dominator — generalised to the root cone)."""

    def strategy(name: str, attempt: int, context) -> Optional[List[Intent]]:
        dag = getattr(context, "dag", None)
        if dag is None:
            return None
        live_targets = [t for t in targets if t in dag.graph]
        if not live_targets:
            return None
        return ddag_cone_intents(dag, live_targets)

    return strategy


def traversal_workload(
    dag: RootedDag,
    num_txns: int,
    walk_length: int = 4,
    seed: int = 0,
    arrival_rate: Optional[float] = None,
) -> Tuple[List[WorkloadItem], StructuralState]:
    """DDAG traversal transactions: each walks a random L5-compatible region
    of the graph and accesses every node it visits.

    ``arrival_rate`` staggers arrivals at roughly that many transactions
    per tick (``None`` keeps the historical everyone-at-tick-0 closed
    system); staggering is what makes thousand-transaction traversal
    stress runs meaningful — the open-system shape of the scale benchmarks.
    """
    rng = random.Random(seed)
    items: List[WorkloadItem] = []
    nodes = sorted(dag.nodes(), key=repr)
    for i in range(num_txns):
        start = rng.choice(nodes)
        walk = random_subdag_walk(dag, start, walk_length, rng)
        intents = [Access(n) for n in walk]
        items.append(
            WorkloadItem(
                name=f"T{i + 1}",
                intents=intents,
                restart=ddag_restart_from_cone(walk),
                start_tick=_staggered_start(i, arrival_rate),
            )
        )
    return items, dag_structural_state(dag)


def dynamic_traversal_workload(
    dag: RootedDag,
    num_txns: int,
    walk_length: int = 4,
    insert_prob: float = 0.5,
    seed: int = 0,
    arrival_rate: Optional[float] = None,
) -> Tuple[List[WorkloadItem], StructuralState]:
    """Traversals that additionally insert fresh leaf nodes under the last
    visited node with probability ``insert_prob`` — the dynamic part of the
    DDAG evaluation (structural churn while traversals run).  See
    :func:`traversal_workload` for ``arrival_rate``."""
    rng = random.Random(seed)
    items: List[WorkloadItem] = []
    nodes = sorted(dag.nodes(), key=repr)
    fresh = max((n for n in nodes if isinstance(n, int)), default=0) + 1
    for i in range(num_txns):
        start = rng.choice(nodes)
        walk = random_subdag_walk(dag, start, walk_length, rng)
        intents: List[Intent] = [Access(n) for n in walk]
        if rng.random() < insert_prob:
            intents.append(InsertNode(fresh, parents=(walk[-1],)))
            fresh += 1
        items.append(
            WorkloadItem(
                name=f"T{i + 1}",
                intents=intents,
                restart=ddag_restart_from_cone(walk),
                start_tick=_staggered_start(i, arrival_rate),
            )
        )
    return items, dag_structural_state(dag)


def long_transaction_workload(
    num_entities: int,
    num_short: int,
    long_length: Optional[int] = None,
    short_length: int = 2,
    seed: int = 0,
    region: str = "uniform",
    short_start: int = 0,
) -> Tuple[List[WorkloadItem], StructuralState]:
    """The altruistic-locking scenario: one long transaction sweeping the
    entity space in order, plus short transactions touching a few entities.

    ``region`` places the short transactions: ``"uniform"`` anywhere,
    ``"leading"`` inside the first third of the sweep.  ``short_start``
    delays the short transactions' arrival; arriving *behind* the sweep is
    the configuration where altruism pays — under strict 2PL the sweep holds
    its whole footprint until commit and the late shorts queue behind its
    lifetime, while under altruistic locking they run in its wake.
    """
    rng = random.Random(seed)
    entities = [f"e{i}" for i in range(num_entities)]
    long_length = num_entities if long_length is None else long_length
    items: List[WorkloadItem] = [
        WorkloadItem(
            name="LONG",
            intents=[Access(e) for e in entities[:long_length]],
        )
    ]
    if region == "leading":
        hi = max(1, num_entities // 3 - short_length + 1)
    else:
        hi = max(1, num_entities - short_length)
    for i in range(num_short):
        lo = rng.randrange(hi)
        picks = entities[lo : lo + short_length]
        items.append(
            WorkloadItem(
                name=f"S{i + 1}",
                intents=[Access(e) for e in picks],
                start_tick=short_start,
            )
        )
    state = StructuralState(frozenset(entities))
    return items, state


def random_access_workload(
    num_entities: int,
    num_txns: int,
    accesses_per_txn: int = 3,
    hot_fraction: float = 0.0,
    seed: int = 0,
) -> Tuple[List[WorkloadItem], StructuralState]:
    """Uniform (or hot-spot skewed) random access sets — the generic
    workload for DTR and 2PL comparisons."""
    rng = random.Random(seed)
    entities = [f"e{i}" for i in range(num_entities)]
    hot = entities[: max(1, int(num_entities * hot_fraction))] if hot_fraction else []
    items: List[WorkloadItem] = []
    for i in range(num_txns):
        picks = _contended_picks(rng, entities, hot, accesses_per_txn, 0.5)
        items.append(WorkloadItem(name=f"T{i + 1}", intents=[Access(e) for e in picks]))
    state = StructuralState(frozenset(entities))
    return items, state


def stress_workload(
    num_entities: int,
    num_txns: int,
    accesses_per_txn: int = 3,
    arrival_rate: float = 2.0,
    hot_fraction: float = 0.05,
    ordered: bool = True,
    seed: int = 0,
) -> Tuple[List[WorkloadItem], StructuralState]:
    """An open-system stress test: ``num_txns`` short transactions arriving
    at roughly ``arrival_rate`` per tick over a large entity space, with a
    small hot set receiving half the traffic.

    This is the scale scenario for the event-driven scheduler: thousands of
    transactions, most of them blocked or not-yet-arrived at any instant, so
    a per-tick rescan of every live session (the naive engine) does work
    proportional to the *population* while the event engine only touches the
    sessions something actually happened to.

    ``ordered`` sorts each transaction's access set into the global entity
    order — the classic deadlock-avoidance discipline — so contention shows
    up as blocking rather than deadlock storms.  Pass ``ordered=False`` for
    a deadlock-heavy variant.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = random.Random(seed)
    entities = [f"e{i}" for i in range(num_entities)]
    hot = entities[: max(1, int(num_entities * hot_fraction))] if hot_fraction else []
    items: List[WorkloadItem] = []
    for i in range(num_txns):
        picks = _contended_picks(rng, entities, hot, accesses_per_txn, 0.5)
        if ordered:
            picks.sort(key=lambda e: int(e[1:]))
        items.append(
            WorkloadItem(
                name=f"T{i + 1:05d}",
                intents=[Access(e) for e in picks],
                start_tick=_staggered_start(i, arrival_rate),
            )
        )
    return items, StructuralState(frozenset(entities))


def deadlock_storm_workload(
    num_entities: int,
    num_txns: int,
    accesses_per_txn: int = 3,
    arrival_rate: float = 0.5,
    hot_set_size: int = 8,
    hot_traffic: float = 0.8,
    seed: int = 0,
) -> Tuple[List[WorkloadItem], StructuralState]:
    """A deadlock-heavy open system: short transactions whose access sets
    are *not* sorted into the global entity order (so opposite lock orders
    collide), concentrated on a tunable hot set, arriving staggered.

    ``hot_set_size`` is the absolute number of hot entities and
    ``hot_traffic`` the probability each access lands in it — a small hot
    set with most of the traffic keeps several live transactions holding
    one hot entity while waiting for another, which is what breeds
    waits-for cycles.  This is the scale scenario for the always-fresh
    waits-for graph: most ticks find no runnable session and go down the
    deadlock path, which in the naive engine (and the event engine before
    the incremental graph) re-classified every live session.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if not 0 <= hot_traffic <= 1:
        raise ValueError("hot_traffic must be in [0, 1]")
    rng = random.Random(seed)
    entities = [f"e{i}" for i in range(num_entities)]
    hot = entities[: max(1, min(hot_set_size, num_entities))]
    items: List[WorkloadItem] = []
    for i in range(num_txns):
        picks = _contended_picks(rng, entities, hot, accesses_per_txn, hot_traffic)
        # Deliberately unordered: picks stay in draw order, so two
        # transactions over the same hot entities lock them in different
        # orders and deadlock instead of queueing.
        items.append(
            WorkloadItem(
                name=f"T{i + 1:05d}",
                intents=[Access(e) for e in picks],
                start_tick=_staggered_start(i, arrival_rate),
            )
        )
    return items, StructuralState(frozenset(entities))


# ----------------------------------------------------------------------
# Registered grid factories (picklable-by-name wrappers of the generators)
# ----------------------------------------------------------------------


@register_grid_factory("stress")
def _grid_stress(seed: int, **kwargs):
    items, initial = stress_workload(seed=seed, **kwargs)
    return items, initial, {}


@register_grid_factory("deadlock_storm")
def _grid_deadlock_storm(seed: int, **kwargs):
    items, initial = deadlock_storm_workload(seed=seed, **kwargs)
    return items, initial, {}


@register_grid_factory("long_transaction")
def _grid_long_transaction(seed: int, **kwargs):
    items, initial = long_transaction_workload(seed=seed, **kwargs)
    return items, initial, {}


@register_grid_factory("random_access")
def _grid_random_access(seed: int, **kwargs):
    items, initial = random_access_workload(seed=seed, **kwargs)
    return items, initial, {}


@register_grid_factory("traversal")
def _grid_traversal(
    seed: int,
    nodes: int = 10,
    edge_prob: float = 0.25,
    num_txns: int = 6,
    walk_length: int = 4,
    arrival_rate: Optional[float] = None,
):
    """Traversals over a seed-derived random rooted DAG.  The DAG doubles
    as the DDAG policy's context (snapshotted, as live runs mutate it);
    static policies ignore the extra context kwarg."""
    dag = random_rooted_dag(nodes, edge_prob, seed=seed)
    items, initial = traversal_workload(
        dag, num_txns, walk_length, seed=seed, arrival_rate=arrival_rate
    )
    return items, initial, {"dag": dag.snapshot()}


@register_grid_factory("dynamic_traversal")
def _grid_dynamic_traversal(
    seed: int,
    nodes: int = 10,
    edge_prob: float = 0.25,
    num_txns: int = 6,
    walk_length: int = 4,
    insert_prob: float = 0.5,
    arrival_rate: Optional[float] = None,
):
    """Dynamic traversals (fresh-leaf inserts) over a seed-derived DAG;
    see :func:`_grid_traversal` for the context kwarg."""
    dag = random_rooted_dag(nodes, edge_prob, seed=seed)
    items, initial = dynamic_traversal_workload(
        dag, num_txns, walk_length,
        insert_prob=insert_prob, seed=seed, arrival_rate=arrival_rate,
    )
    return items, initial, {"dag": dag.snapshot()}


def fig3_dag() -> RootedDag:
    """The database graph of the paper's Fig. 3 walk-through (reconstructed
    as the 5-node chain ``1 -> 2 -> 3 -> 4 -> 5``; the figure itself is not
    reproduced in the text, but the chain is consistent with every step of
    the narration)."""
    return RootedDag(1, [(1, 2), (2, 3), (3, 4), (4, 5)])


def fig3_workload() -> Tuple[List[WorkloadItem], StructuralState]:
    """The two transactions of Fig. 3: T1 locks 2, 3, 4, unlocks 3 then 4;
    T2 starts at 3 and proceeds to 4."""
    dag = fig3_dag()
    t1: List[Intent] = [Access(2), Access(3), Access(4), Unlock(3), Unlock(4), Unlock(2)]
    t2: List[Intent] = [Access(3), Access(4)]
    items = [
        WorkloadItem("T1", t1, restart=ddag_restart_from_cone([2, 3, 4])),
        WorkloadItem("T2", t2, restart=ddag_restart_from_cone([3, 4])),
    ]
    return items, dag_structural_state(dag)
