"""Discrete-event concurrency simulator: the substitute for the paper's
companion performance study [CHMS94]."""

from .lock_table import LockTable
from .metrics import Metrics, TxnRecord
from .runner import CellResult, WorkloadFactory, format_table, run_cell
from .scheduler import SimResult, Simulator, WorkloadItem
from .workloads import (
    dag_structural_state,
    ddag_cone_intents,
    ddag_restart_from_cone,
    deadlock_storm_workload,
    dynamic_traversal_workload,
    fig3_dag,
    fig3_workload,
    long_transaction_workload,
    random_access_workload,
    stress_workload,
    traversal_workload,
)

__all__ = [
    "CellResult",
    "LockTable",
    "Metrics",
    "SimResult",
    "Simulator",
    "TxnRecord",
    "WorkloadFactory",
    "WorkloadItem",
    "dag_structural_state",
    "ddag_cone_intents",
    "ddag_restart_from_cone",
    "deadlock_storm_workload",
    "dynamic_traversal_workload",
    "fig3_dag",
    "fig3_workload",
    "format_table",
    "long_transaction_workload",
    "random_access_workload",
    "run_cell",
    "stress_workload",
    "traversal_workload",
]
