"""Discrete-event concurrency simulator: the substitute for the paper's
companion performance study [CHMS94]."""

from .artifacts import bench_artifact, cell_rows_with_work, write_bench_artifact
from .grid import GridSpec, PolicySpec, WorkloadSpec, run_grid
from .lock_table import LockTable
from .metrics import Metrics, TxnRecord
from .runner import (
    FAILED_SEEDS_LIMIT,
    CellResult,
    SeedOutcome,
    WorkloadFactory,
    aggregate_outcomes,
    format_table,
    run_cell,
    run_seed,
)
from .scheduler import SimResult, Simulator, WorkloadItem
from .workloads import (
    GRID_FACTORIES,
    dag_structural_state,
    ddag_cone_intents,
    ddag_restart_from_cone,
    deadlock_storm_workload,
    dynamic_traversal_workload,
    fig3_dag,
    fig3_workload,
    grid_factory,
    grid_factory_names,
    long_transaction_workload,
    random_access_workload,
    register_grid_factory,
    stress_workload,
    traversal_workload,
)

__all__ = [
    "CellResult",
    "FAILED_SEEDS_LIMIT",
    "GRID_FACTORIES",
    "GridSpec",
    "LockTable",
    "Metrics",
    "PolicySpec",
    "SeedOutcome",
    "SimResult",
    "Simulator",
    "TxnRecord",
    "WorkloadFactory",
    "WorkloadItem",
    "WorkloadSpec",
    "aggregate_outcomes",
    "bench_artifact",
    "cell_rows_with_work",
    "dag_structural_state",
    "ddag_cone_intents",
    "ddag_restart_from_cone",
    "deadlock_storm_workload",
    "dynamic_traversal_workload",
    "fig3_dag",
    "fig3_workload",
    "format_table",
    "grid_factory",
    "grid_factory_names",
    "long_transaction_workload",
    "random_access_workload",
    "register_grid_factory",
    "run_cell",
    "run_grid",
    "run_seed",
    "stress_workload",
    "traversal_workload",
    "write_bench_artifact",
]
