"""Discrete-event concurrency simulator: the substitute for the paper's
companion performance study [CHMS94]."""

from .admission import AdmissionCache
from .artifacts import bench_artifact, cell_rows_with_work, write_bench_artifact
from .deadlock import find_cycle, find_cycle_counted, pick_victim, resolve_deadlock
from .executor import (
    ExecutorStats,
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    shard_phase,
)
from .grid import GridSpec, PolicySpec, WorkloadSpec, run_grid
from .lock_table import LockTable
from .metrics import Metrics, TxnRecord
from .waits_for import WaitsForGraph
from .runner import (
    FAILED_SEEDS_LIMIT,
    CellResult,
    SeedOutcome,
    WorkloadFactory,
    aggregate_outcomes,
    format_table,
    run_cell,
    run_seed,
)
from .scheduler import SimResult, Simulator, WorkloadItem
from .workloads import (
    GRID_FACTORIES,
    dag_structural_state,
    ddag_cone_intents,
    ddag_restart_from_cone,
    deadlock_storm_workload,
    dynamic_traversal_workload,
    fig3_dag,
    fig3_workload,
    grid_factory,
    grid_factory_names,
    long_transaction_workload,
    random_access_workload,
    register_grid_factory,
    stress_workload,
    traversal_workload,
)

__all__ = [
    "AdmissionCache",
    "CellResult",
    "ExecutorStats",
    "FAILED_SEEDS_LIMIT",
    "GRID_FACTORIES",
    "GridSpec",
    "LockTable",
    "Metrics",
    "ParallelExecutor",
    "PolicySpec",
    "ProcessExecutor",
    "SerialExecutor",
    "SeedOutcome",
    "SimResult",
    "Simulator",
    "TxnRecord",
    "WaitsForGraph",
    "WorkloadFactory",
    "WorkloadItem",
    "WorkloadSpec",
    "aggregate_outcomes",
    "bench_artifact",
    "cell_rows_with_work",
    "dag_structural_state",
    "ddag_cone_intents",
    "ddag_restart_from_cone",
    "deadlock_storm_workload",
    "dynamic_traversal_workload",
    "fig3_dag",
    "fig3_workload",
    "find_cycle",
    "find_cycle_counted",
    "format_table",
    "grid_factory",
    "grid_factory_names",
    "long_transaction_workload",
    "make_executor",
    "pick_victim",
    "random_access_workload",
    "register_grid_factory",
    "resolve_deadlock",
    "run_cell",
    "run_grid",
    "run_seed",
    "shard_phase",
    "stress_workload",
    "traversal_workload",
    "write_bench_artifact",
]
