"""The service's JSON-line wire protocol.

One request per line, one JSON object per request::

    {"id": 3, "op": "acquire", "txn": "t1", "entity": "a", "mode": "X"}

and one response line per request, echoing ``id`` and ``op`` and carrying
the kernel outcome (the :class:`~repro.kernel.outcomes.Outcome` wire
values: ``granted``/``blocked``/``denied``/``victim``/``error``)::

    {"id": 3, "op": "acquire", "txn": "t1", "outcome": "blocked",
     "reason": "conflicting holders"}

A ``blocked`` acquire later produces one unsolicited *event* line when
the parked request resolves, correlated by the original request id::

    {"event": "wake", "id": 3, "txn": "t1", "outcome": "granted"}

Connections open with a ``hello`` handshake that binds the connection to
an *actor* (the authorization principal for every subsequent request).
Entities are strings on the wire; lock modes use the
:class:`~repro.kernel.LockMode` values ``"S"``/``"X"`` (the long names
``"shared"``/``"exclusive"`` are accepted on input).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..kernel import LockMode

#: Bump on incompatible wire changes; echoed in the hello response.
PROTOCOL_VERSION = 1

#: Requests that may change kernel state (all are authorized inline and
#: audited — see :mod:`repro.service.auth`).
MUTATING_OPS = frozenset({"begin", "acquire", "release", "commit", "abort"})

#: Read-only requests (still authorized and audited: ``locks`` serves the
#: holder-only visibility view).
QUERY_OPS = frozenset({"locks"})

OPS = MUTATING_OPS | QUERY_OPS

_MODES: Dict[str, LockMode] = {
    "S": LockMode.SHARED,
    "X": LockMode.EXCLUSIVE,
    "shared": LockMode.SHARED,
    "exclusive": LockMode.EXCLUSIVE,
}


class ProtocolError(ValueError):
    """A request line the service cannot interpret.  Protocol errors are
    answered (outcome ``error``) and audited, never silently dropped."""


def encode(message: Dict[str, object]) -> bytes:
    """One message, one line: compact JSON with sorted keys (a canonical
    rendering, so transcripts diff cleanly) plus the line terminator."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> Dict[str, object]:
    """Parse one request line; raises :class:`ProtocolError` on anything
    that is not a single JSON object."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed request line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def parse_mode(value: object) -> LockMode:
    """Parse a wire lock mode (default ``X`` when absent)."""
    if value is None:
        return LockMode.EXCLUSIVE
    if isinstance(value, str) and value in _MODES:
        return _MODES[value]
    raise ProtocolError(
        f"unknown lock mode {value!r}; expected one of "
        f"{sorted(_MODES)}"
    )


def require_str(message: Dict[str, object], key: str) -> str:
    """Fetch a mandatory non-empty string field."""
    value = message.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"request field {key!r} must be a non-empty string")
    return value


def request_id(message: Dict[str, object]) -> Optional[object]:
    """The client-chosen correlation id (echoed verbatim; may be absent)."""
    return message.get("id")
