"""Inline authorization for the lock service.

The policy is *owner-only*, the service-level analogue of a row-level
``lock_owner_only`` policy: the actor that successfully ``begin``-s a
transaction owns it, and every subsequent operation addressing that
transaction — mutating (``acquire``/``release``/``commit``/``abort``)
or read-only (``locks``, the holder-only visibility view) — must come
from the owner.  A non-owner's request is **denied before the kernel is
consulted**: no lock state changes, and the denial is audited with the
decision reason (the boundary-enforcement-integrity contract the kernel
enforces for its own refusals).

Ownership of a name persists after the transaction finishes, so a
finished transaction's name cannot be hijacked by a different actor
re-``begin``-ing it (the kernel independently refuses name reuse).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class Authorizer:
    """Owner-only transaction authorization (see module docstring)."""

    def __init__(self) -> None:
        self._owner: Dict[str, str] = {}

    def register(self, txn: str, actor: str) -> None:
        """Record ``actor`` as the owner of ``txn`` (called by the service
        only after the kernel granted the ``begin``)."""
        self._owner[txn] = actor

    def owner(self, txn: str) -> Optional[str]:
        return self._owner.get(txn)

    def owned_by(self, actor: str) -> Tuple[str, ...]:
        """Every transaction name ``actor`` has ever owned, sorted."""
        return tuple(
            sorted(t for t, a in self._owner.items() if a == actor)
        )

    def check(self, op: str, actor: str, txn: str) -> Optional[str]:
        """``None`` if ``actor`` may address ``txn`` with ``op``, else the
        denial reason.  A transaction nobody owns yet is admitted here —
        the kernel's own misuse guard answers for unknown names (an
        ``ERROR`` that reads no holder state and mutates nothing)."""
        owner = self._owner.get(txn)
        if owner is None:
            return None
        if owner != actor:
            return (
                f"actor {actor!r} does not own transaction {txn!r} "
                f"(owner: {owner!r})"
            )
        return None
