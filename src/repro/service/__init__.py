"""The lock-manager service: an audited asyncio front-end over the
transport-agnostic kernel (:mod:`repro.kernel`).

Layering (lint rule RPR003 enforces it): this package imports **only**
``repro.kernel`` (and, if a deployment wires policy sessions into the
admission seam, ``repro.policies``) — never ``repro.sim``.  Everything
the service needs from the simulator's state layers reaches it through
the kernel's re-exports.

* :mod:`~repro.service.protocol` — the JSON-line wire protocol;
* :mod:`~repro.service.auth` — owner-only inline authorization;
* :mod:`~repro.service.transport` — the in-process duplex pipe;
* :mod:`~repro.service.server` — :class:`LockService` (connection
  handling, backpressure, drain) and :class:`ServiceClient`.
"""

from .auth import Authorizer
from .protocol import (
    MUTATING_OPS,
    OPS,
    PROTOCOL_VERSION,
    QUERY_OPS,
    ProtocolError,
    decode,
    encode,
    parse_mode,
)
from .server import LockService, ServiceClient
from .transport import memory_pair

__all__ = [
    "Authorizer",
    "LockService",
    "MUTATING_OPS",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUERY_OPS",
    "ServiceClient",
    "decode",
    "encode",
    "memory_pair",
    "parse_mode",
]
