"""In-process transport for the lock service.

The service's connection handler is written against the tiny duck-typed
surface it actually uses of asyncio's ``StreamReader``/``StreamWriter``
pair — ``readline``, ``write``, ``drain``, ``close``, ``is_closing`` —
so the same handler serves real TCP sockets (``asyncio.start_server``)
and this zero-socket in-process pipe.  Tests and the bench run entirely
in-process: deterministic, no ports, no firewall surprises in CI.

The pipe carries *whole protocol lines* (the service and client both
write one ``encode()``-d line per call), so ``readline`` can pop one
queue item instead of reassembling a byte stream; an empty ``b""`` item
is the EOF sentinel ``close()`` injects.
"""

from __future__ import annotations

import asyncio
from typing import Tuple


class MemoryReader:
    """Reader half: pops whole lines from the peer's queue."""

    def __init__(self, queue: "asyncio.Queue[bytes]") -> None:
        self._queue = queue
        self._eof = False

    async def readline(self) -> bytes:
        if self._eof:
            return b""
        line = await self._queue.get()
        if not line:
            self._eof = True
        return line


class MemoryWriter:
    """Writer half: pushes whole lines into the peer's queue."""

    def __init__(self, queue: "asyncio.Queue[bytes]") -> None:
        self._queue = queue
        self._closed = False

    def write(self, data: bytes) -> None:
        if not self._closed:
            self._queue.put_nowait(bytes(data))

    async def drain(self) -> None:
        """Yield once so the peer's reader can run (the unbounded queue
        itself never applies backpressure — the service's per-client
        in-flight cap does)."""
        await asyncio.sleep(0)

    def is_closing(self) -> bool:
        return self._closed

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(b"")

    async def wait_closed(self) -> None:
        return None


#: One endpoint: (reader, writer).
Endpoint = Tuple[MemoryReader, MemoryWriter]


def memory_pair() -> Tuple[Endpoint, Endpoint]:
    """A connected duplex pipe: ``(client_endpoint, server_endpoint)``."""
    client_to_server: "asyncio.Queue[bytes]" = asyncio.Queue()
    server_to_client: "asyncio.Queue[bytes]" = asyncio.Queue()
    client = (MemoryReader(server_to_client), MemoryWriter(client_to_server))
    server = (MemoryReader(client_to_server), MemoryWriter(server_to_client))
    return client, server
