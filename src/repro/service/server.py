"""The audited asyncio lock service: a front-end over the kernel.

:class:`LockService` serves concurrent client sessions speaking the
JSON-line protocol (:mod:`repro.service.protocol`) over either transport:
the in-process pipe (:func:`~repro.service.transport.memory_pair`, used
by tests, CI, and the bench) or real TCP (:meth:`LockService.serve_tcp`).
Every connection binds to an *actor* at handshake; every request is then

1. **authorized inline** — the owner-only policy
   (:class:`~repro.service.auth.Authorizer`) runs before the kernel is
   consulted, so a denied request provably changes no lock state and its
   denial is audited with the reason;
2. **executed on the shared kernel** — one
   :class:`~repro.kernel.core.LockKernel` behind one asyncio lock, so
   requests from all sessions apply in a single serializable order (the
   audit log's sequence numbers *are* that order);
3. **answered on the same connection** — one response line per request;
   a ``blocked`` acquire additionally produces one ``wake`` event line
   when the parked request resolves (grant, deadlock victim, client
   abort, or drain).

**Backpressure.**  Each connection has an in-flight cap (a semaphore):
a parked acquire holds a slot until its wake fires, and once a client
has ``max_inflight`` requests parked the service simply stops reading
from that connection — the client cannot flood the kernel's wait queues.

**Drain.**  :meth:`LockService.drain` refuses new work, cancels every
parked request through the kernel (blocked clients receive a terminal
``wake`` with outcome ``error``), aborts every live transaction, emits a
``drain`` event on every connection, and closes them.  No client is left
hanging on a response.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from ..kernel import AuditLog, LockKernel, Outcome
from .auth import Authorizer
from .protocol import (
    MUTATING_OPS,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode,
    encode,
    parse_mode,
    request_id,
    require_str,
)
from .transport import memory_pair


class _Connection:
    """Server-side per-connection state: the writer, the in-flight cap,
    and the actor bound at handshake."""

    def __init__(self, writer, max_inflight: int, seq: int) -> None:
        self.writer = writer
        self.actor: Optional[str] = None
        self.seq = seq
        self.inflight = asyncio.Semaphore(max_inflight)

    def send(self, message: Dict[str, object]) -> None:
        if not self.writer.is_closing():
            self.writer.write(encode(message))

    def close(self) -> None:
        self.writer.close()


class _Parked:
    """A blocked acquire's continuation: forwards the kernel's wake-up to
    the owning connection as a ``wake`` event and returns the in-flight
    slot.  The kernel fires it exactly once (single-delivery contract)."""

    __slots__ = ("conn", "rid")

    def __init__(self, conn: _Connection, rid: object) -> None:
        self.conn = conn
        self.rid = rid

    def __call__(self, txn: str, response) -> None:
        event: Dict[str, object] = {
            "event": "wake",
            "id": self.rid,
            "txn": txn,
            "outcome": response.outcome.value,
        }
        if response.reason is not None:
            event["reason"] = response.reason
        self.conn.send(event)
        self.conn.inflight.release()


class LockService:
    """The asyncio lock-manager service (see module docstring)."""

    def __init__(
        self,
        *,
        lock_shards: int = 4,
        max_inflight: int = 8,
        max_live: int = 0,
        audit: Optional[AuditLog] = None,
    ) -> None:
        self.audit = audit if audit is not None else AuditLog()
        self.kernel = LockKernel(
            lock_shards=lock_shards, audit=self.audit, max_live=max_live
        )
        self.auth = Authorizer()
        self.max_inflight = max_inflight
        self._draining = False
        self._kernel_lock = asyncio.Lock()
        self._conns: Set[_Connection] = set()
        self._conn_seq = 0
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._tcp_server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Transports
    # ------------------------------------------------------------------

    async def connect(self, actor: str) -> "ServiceClient":
        """Open an in-process connection, complete the handshake, and
        return the client handle."""
        (c_reader, c_writer), (s_reader, s_writer) = memory_pair()
        task = asyncio.ensure_future(self.handle_client(s_reader, s_writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        client = ServiceClient(c_reader, c_writer, actor)
        await client.hello()
        return client

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Start the optional TCP listener; returns ``(host, port)``."""
        self._tcp_server = await asyncio.start_server(
            self.handle_client, host, port
        )
        sockname = self._tcp_server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def handle_client(self, reader, writer) -> None:
        conn = _Connection(writer, self.max_inflight, self._conn_seq)
        self._conn_seq += 1
        self._conns.add(conn)
        try:
            if not await self._handshake(conn, reader):
                return
            while True:
                line = await reader.readline()
                if not line:
                    break
                await self._handle_request(conn, line)
        except asyncio.CancelledError:
            pass  # drain cancels reader tasks after notifying the client
        finally:
            self._conns.discard(conn)
            conn.close()

    async def _handshake(self, conn: _Connection, reader) -> bool:
        """First line must be ``{"op": "hello", "actor": <name>}``."""
        line = await reader.readline()
        if not line:
            return False
        try:
            message = decode(line)
            if message.get("op") != "hello":
                raise ProtocolError("first request must be 'hello'")
            actor = require_str(message, "actor")
        except ProtocolError as exc:
            self.audit.append("hello", "<unauthenticated>", "error",
                              reason=str(exc))
            conn.send({
                "id": None, "op": "hello",
                "outcome": Outcome.ERROR.value, "reason": str(exc),
            })
            return False
        conn.actor = actor
        self.audit.append("hello", actor, Outcome.GRANTED.value)
        conn.send({
            "id": request_id(message), "op": "hello", "actor": actor,
            "outcome": Outcome.GRANTED.value, "protocol": PROTOCOL_VERSION,
        })
        return True

    async def _handle_request(self, conn: _Connection, line: bytes) -> None:
        actor = conn.actor
        # rid survives the except clause whenever the line decoded far
        # enough to carry one, so even a malformed request (bad op,
        # missing txn) gets a reply the client can correlate — an
        # uncorrelatable ``id: null`` error would strand a waiter.
        rid = None
        try:
            message = decode(line)
            rid = request_id(message)
            op = message.get("op")
            if op not in OPS:
                raise ProtocolError(f"unknown op {op!r}")
            txn = require_str(message, "txn")
        except ProtocolError as exc:
            self.audit.append("protocol", actor, Outcome.ERROR.value,
                              reason=str(exc))
            conn.send({
                "id": rid, "op": "protocol",
                "outcome": Outcome.ERROR.value, "reason": str(exc),
            })
            return

        if self._draining:
            self.audit.append(op, actor, Outcome.ERROR.value, txn=txn,
                              reason="service draining")
            conn.send({
                "id": rid, "op": op, "txn": txn,
                "outcome": Outcome.ERROR.value, "reason": "service draining",
            })
            return

        # Inline authorization: the owner-only check runs before the
        # kernel sees the request.  A denial is audited here — the kernel
        # was never consulted, so no lock state can have changed.
        denial = self.auth.check(op, actor, txn)
        if denial is not None:
            self.audit.append(op, actor, Outcome.DENIED.value, txn=txn,
                              reason=denial)
            conn.send({
                "id": rid, "op": op, "txn": txn,
                "outcome": Outcome.DENIED.value, "reason": denial,
            })
            return

        if op == "locks":
            await self._op_locks(conn, rid, actor, txn)
            return
        await self._op_mutating(conn, message, rid, op, actor, txn)

    async def _op_locks(
        self, conn: _Connection, rid: object, actor: str, txn: str
    ) -> None:
        """Holder-only visibility: an owner sees its own holdings and
        nothing else (non-owners were already denied above; unknown
        transactions read as holding nothing)."""
        async with self._kernel_lock:
            held = self.kernel.held(txn)
        self.audit.append("locks", actor, Outcome.GRANTED.value, txn=txn)
        conn.send({
            "id": rid, "op": "locks", "txn": txn,
            "outcome": Outcome.GRANTED.value,
            "locks": sorted(
                [str(e), m.value] for e, m in held.items()
            ),
        })

    async def _op_mutating(
        self,
        conn: _Connection,
        message: Dict[str, object],
        rid: object,
        op: str,
        actor: str,
        txn: str,
    ) -> None:
        assert op in MUTATING_OPS
        if op == "acquire":
            try:
                entity = require_str(message, "entity")
                mode = parse_mode(message.get("mode"))
            except ProtocolError as exc:
                self.audit.append(op, actor, Outcome.ERROR.value, txn=txn,
                                  reason=str(exc))
                conn.send({
                    "id": rid, "op": op, "txn": txn,
                    "outcome": Outcome.ERROR.value, "reason": str(exc),
                })
                return
            # Backpressure: a parked acquire owns an in-flight slot until
            # its wake fires; at the cap, the connection's read loop stops
            # here and the client is simply not read from.
            await conn.inflight.acquire()
            parked = _Parked(conn, rid)
            async with self._kernel_lock:
                response = self.kernel.acquire(
                    txn, entity, mode, on_wake=parked, actor=actor
                )
            if response.outcome is not Outcome.BLOCKED:
                # Never parked (or resolved synchronously during deadlock
                # resolution, in which case the wake already released it).
                conn.inflight.release()
            reply: Dict[str, object] = {
                "id": rid, "op": op, "txn": txn, "entity": entity,
                "mode": mode.value, "outcome": response.outcome.value,
            }
            if response.reason is not None:
                reply["reason"] = response.reason
            if response.blockers:
                # Visibility: a client learns how *many* conflicts park
                # it, never which transactions hold them.
                reply["conflicts"] = len(response.blockers)
            conn.send(reply)
            return

        if op == "release":
            try:
                entity = require_str(message, "entity")
            except ProtocolError as exc:
                self.audit.append(op, actor, Outcome.ERROR.value, txn=txn,
                                  reason=str(exc))
                conn.send({
                    "id": rid, "op": op, "txn": txn,
                    "outcome": Outcome.ERROR.value, "reason": str(exc),
                })
                return
            async with self._kernel_lock:
                response = self.kernel.release(txn, entity, actor=actor)
            reply = {
                "id": rid, "op": op, "txn": txn, "entity": entity,
                "outcome": response.outcome.value,
            }
            if response.reason is not None:
                reply["reason"] = response.reason
            conn.send(reply)
            return

        async with self._kernel_lock:
            if op == "begin":
                response = self.kernel.begin(txn, actor=actor)
                if response.ok:
                    self.auth.register(txn, actor)
            elif op == "commit":
                response = self.kernel.commit(txn, actor=actor)
            else:  # abort
                response = self.kernel.abort(txn, actor=actor)
        reply = {
            "id": rid, "op": op, "txn": txn,
            "outcome": response.outcome.value,
        }
        if response.reason is not None:
            reply["reason"] = response.reason
        conn.send(reply)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    async def drain(self) -> Tuple[str, ...]:
        """Graceful shutdown (idempotent); returns the names of the live
        transactions the kernel aborted."""
        self._draining = True
        if self._tcp_server is not None:
            self._tcp_server.close()
        async with self._kernel_lock:
            # Parked callbacks fire here: blocked clients get their
            # terminal wake events before the connections close.
            drained = self.kernel.drain()
        for conn in sorted(self._conns, key=lambda c: c.seq):
            conn.send({"event": "drain"})
            conn.close()
        for task in tuple(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._tcp_server is not None:
            await self._tcp_server.wait_closed()
        return drained


class ServiceClient:
    """Client-side handle: sends requests, matches responses by id, and
    buffers unsolicited ``wake``/``drain`` events arriving in between."""

    def __init__(self, reader, writer, actor: str) -> None:
        self.actor = actor
        self._reader = reader
        self._writer = writer
        self._events: Deque[Dict[str, object]] = deque()
        self._responses: Dict[object, Dict[str, object]] = {}
        self._next_id = 0

    # -- plumbing -------------------------------------------------------

    async def _pump_once(self) -> None:
        """Read one message off the wire into the right buffer (events
        and responses interleave freely: a wake for an old request may
        arrive while a newer response is awaited, and vice versa)."""
        line = await self._reader.readline()
        if not line:
            raise ConnectionError(
                f"connection closed (actor {self.actor!r})"
            )
        message = decode(line)
        if "event" in message:
            self._events.append(message)
        else:
            self._responses[message.get("id")] = message

    async def _send(self, message: Dict[str, object]) -> None:
        self._writer.write(encode(message))
        await self._writer.drain()

    # -- protocol -------------------------------------------------------

    async def hello(self) -> Dict[str, object]:
        await self._send({"op": "hello", "actor": self.actor})
        while not self._responses:
            await self._pump_once()
        (_, reply), = self._responses.items()
        self._responses.clear()
        return reply

    def send_raw(self, op: str, **fields: object) -> object:
        """Fire a request without awaiting its response (the response id
        is returned; collect it later with :meth:`response_for`)."""
        rid = self._next_id
        self._next_id += 1
        self._writer.write(encode({"op": op, "id": rid, **fields}))
        return rid

    async def request(self, op: str, **fields: object) -> Dict[str, object]:
        """Send one request and return its response, buffering any events
        that arrive first (fetch them with :meth:`next_event`)."""
        rid = self._next_id
        self._next_id += 1
        await self._send({"op": op, "id": rid, **fields})
        return await self.response_for(rid)

    async def response_for(self, rid: object) -> Dict[str, object]:
        while rid not in self._responses:
            await self._pump_once()
        return self._responses.pop(rid)

    async def next_event(self) -> Dict[str, object]:
        """The next unsolicited event (buffered or read fresh)."""
        while not self._events:
            await self._pump_once()
        return self._events.popleft()

    async def wait_wake(self, rid: object) -> Dict[str, object]:
        """Block until the wake event for request ``rid`` arrives."""
        while True:
            event = await self.next_event()
            if event.get("event") == "wake" and event.get("id") == rid:
                return event

    async def close(self) -> None:
        self._writer.close()
        if hasattr(self._writer, "wait_closed"):
            await self._writer.wait_closed()
