"""Canonical nonserializable schedules — Theorem 1 of the paper.

Theorem 1 characterises unsafe locked transaction systems: a system is unsafe
iff there exist transactions ``T_1, …, T_k`` (``k > 1``), a distinguished
``T_c`` and an entity ``A*`` such that

1. ``T_c`` locks ``A*`` after it has unlocked some entity, and
2. with ``T'_c`` the prefix of ``T_c`` up to (excluding) the ``(L A*)`` step,
   there are prefixes ``T'_i`` of the remaining transactions such that the
   partial schedule ``S'`` executing ``T'_1 … T'_k`` serially satisfies:

   (a) every sink of ``D(S')`` unlocks ``A*`` having previously locked it in
       a mode that conflicts with the mode of ``T_c``'s pending lock, and
   (b) ``S'`` can be extended to a complete legal and proper schedule.

:class:`CanonicalWitness` packages such a candidate; :meth:`CanonicalWitness.problems`
checks every condition (including the dynamic-database condition (2b), decided
by completion search); :func:`find_canonical_witness` searches a transaction
system for a witness — the canonical-schedules *decision procedure* whose
verdicts the test-suite compares against brute force, empirically validating
the theorem.

Section 3.3's exclusive-locks-only specialisation (``D(S')`` has a *unique*
sink which unlocks ``A*``) is exposed via
:meth:`CanonicalWitness.satisfies_exclusive_variant`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import SearchBudgetExceeded, VerificationError
from .completion import DEFAULT_BUDGET, find_completion
from .operations import LockMode, Operation
from .schedules import Event, Schedule
from .serializability import SerializabilityGraph, serializability_graph
from .states import StructuralState
from .steps import Entity, Step
from .transactions import Transaction


@dataclass(frozen=True)
class CanonicalWitness:
    """A candidate canonical nonserializable schedule.

    Attributes
    ----------
    transactions:
        The full transactions ``T_1, …, T_k`` in the serial order of their
        prefixes in ``S'``.
    c_index:
        Position of the distinguished transaction ``T_c`` in that order
        (0-based).  Unlike the static theorem, ``T_c`` need not be first.
    entity:
        The entity ``A*`` whose locking closes the cycle.
    lock_mode:
        The mode in which ``T_c`` locks ``A*``.
    prefix_lengths:
        ``T'_i`` lengths by transaction name; ``T_c``'s must equal the index
        of its ``(L A*)`` step.
    completion:
        Optional evidence for condition (2b): a complete legal proper
        schedule having ``S'`` as a prefix.  When absent, condition (2b) is
        decided by completion search.
    """

    transactions: Tuple[Transaction, ...]
    c_index: int
    entity: Entity
    lock_mode: LockMode
    prefix_lengths: Mapping[str, int]
    completion: Optional[Schedule] = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # Derived pieces
    # ------------------------------------------------------------------

    @property
    def tc(self) -> Transaction:
        """The distinguished transaction ``T_c``."""
        return self.transactions[self.c_index]

    @property
    def order(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.transactions)

    def lock_step(self) -> Step:
        """The pending ``(L A*)`` step of ``T_c``."""
        return self.tc.steps[self.prefix_lengths[self.tc.name]]

    def serial_prefix_schedule(self) -> Schedule:
        """The canonical partial schedule ``S' = T'_1 T'_2 … T'_k``."""
        return Schedule.serial_prefixes(
            list(self.transactions), dict(self.prefix_lengths), list(self.order)
        )

    def graph(self) -> SerializabilityGraph:
        """``D(S')``."""
        return serializability_graph(self.serial_prefix_schedule())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def problems(
        self,
        initial: StructuralState = StructuralState.empty(),
        budget: int = DEFAULT_BUDGET,
    ) -> List[str]:
        """Check every condition of Theorem 1; return human-readable
        descriptions of the violated ones (empty list == valid witness)."""
        out: List[str] = []
        names = [t.name for t in self.transactions]
        if len(set(names)) != len(names):
            return ["duplicate transactions in witness"]
        if len(self.transactions) < 2:
            out.append("Theorem 1 requires k > 1 transactions")

        tc = self.tc
        cut = self.prefix_lengths.get(tc.name)
        if cut is None or not 0 <= cut < len(tc.steps):
            return out + [f"prefix length for {tc.name} does not precede a next step"]
        pending = tc.steps[cut]
        if not pending.is_lock or pending.entity != self.entity:
            out.append(
                f"next step of {tc.name} after its prefix is {pending}, "
                f"not a lock of {self.entity!r}"
            )
            return out
        if pending.lock_mode is not self.lock_mode:
            out.append(
                f"{tc.name} locks {self.entity!r} in mode {pending.lock_mode}, "
                f"witness claims {self.lock_mode}"
            )

        # Condition 1: T_c locks A* after it has unlocked some entity.
        if not any(s.is_unlock for s in tc.steps[:cut]):
            out.append(
                f"condition 1: {tc.name} has not unlocked anything before "
                f"locking {self.entity!r}"
            )

        # All other prefixes must be nonempty (a transaction contributing no
        # steps does not belong in the witness).
        for t in self.transactions:
            n = self.prefix_lengths.get(t.name, 0)
            if t.name != tc.name and not 1 <= n <= len(t.steps):
                out.append(f"prefix length {n} invalid for {t.name}")
        if out:
            return out

        sprime = self.serial_prefix_schedule()
        # S' must be a legal, proper partial schedule (implied by 2b but
        # checked eagerly for better diagnostics).
        violation = sprime.legality_violation()
        if violation is not None:
            out.append(f"S' is not legal: {violation}")
        violation = sprime.properness_violation(initial)
        if violation is not None:
            out.append(f"S' is not proper: {violation}")
        if out:
            return out

        graph = serializability_graph(sprime)
        sinks = graph.sinks()
        if tc.name in sinks:
            out.append(
                f"T'_c ({tc.name}) is a sink of D(S'); it would have to lock "
                f"{self.entity!r} twice"
            )

        # Condition 2a: every sink conflict-unlocks A*.
        for name in sorted(sinks - {tc.name}, key=repr):
            prefix = sprime.projection(name)
            mode = prefix.lock_mode_of(self.entity)
            unlocked = bool(prefix.unlock_positions(self.entity))
            if mode is None or not unlocked:
                out.append(
                    f"condition 2a: sink {name} does not lock-and-unlock "
                    f"{self.entity!r} in its prefix"
                )
            elif not mode.conflicts_with(self.lock_mode):
                out.append(
                    f"condition 2a: sink {name} locked {self.entity!r} in mode "
                    f"{mode}, which does not conflict with {self.lock_mode}"
                )

        # Condition 2b: S' extends to a complete legal proper schedule.
        if self.completion is not None:
            if self.completion.events[: len(sprime.events)] != sprime.events:
                out.append("provided completion does not extend S'")
            elif not self.completion.is_complete:
                out.append("provided completion is not complete")
            elif not self.completion.is_legal():
                out.append("provided completion is not legal")
            elif not self.completion.is_proper(initial):
                out.append("provided completion is not proper")
        else:
            if find_completion(sprime, initial, budget) is None:
                out.append(
                    "condition 2b: S' has no complete legal and proper extension"
                )
        return out

    def is_valid(
        self,
        initial: StructuralState = StructuralState.empty(),
        budget: int = DEFAULT_BUDGET,
    ) -> bool:
        """True iff this witness satisfies every condition of Theorem 1."""
        return not self.problems(initial, budget)

    def satisfies_exclusive_variant(self) -> bool:
        """Section 3.3: with only exclusive locks, condition (2a) simplifies
        to "``D(S')`` has a unique sink which unlocks ``A*``"."""
        graph = self.graph()
        sinks = graph.sinks()
        if len(sinks) != 1:
            return False
        (sink,) = sinks
        prefix = self.serial_prefix_schedule().projection(sink)
        return bool(prefix.unlock_positions(self.entity))

    # ------------------------------------------------------------------
    # Realisation (the If direction)
    # ------------------------------------------------------------------

    def realize(
        self,
        initial: StructuralState = StructuralState.empty(),
        budget: int = DEFAULT_BUDGET,
    ) -> Schedule:
        """Produce a complete, legal, proper, **nonserializable** schedule
        from this witness — the constructive content of the If direction of
        Theorem 1 (any legal proper completion of ``S'`` is nonserializable).
        """
        from .serializability import is_serializable

        completion = self.completion
        if completion is None:
            completion = find_completion(self.serial_prefix_schedule(), initial, budget)
            if completion is None:
                raise VerificationError(
                    "witness has no completion; condition (2b) fails"
                )
        if is_serializable(completion):
            raise VerificationError(
                "completion of a canonical witness is serializable; the "
                "witness does not satisfy Theorem 1"
            )
        return completion

    def describe(self) -> str:
        """A multi-line human-readable account of the witness."""
        lines = [
            f"canonical witness: T_c = {self.tc.name} locks "
            f"{self.lock_step()} after prefix of length "
            f"{self.prefix_lengths[self.tc.name]}",
            f"serial order: {' -> '.join(self.order)} (c at position {self.c_index})",
            f"D(S') = {self.graph()}",
        ]
        sprime = self.serial_prefix_schedule()
        lines.append("S':")
        lines.append(sprime.format_rows(self.order))
        return "\n".join(lines)


@dataclass
class WitnessSearchStats:
    """Counters from :func:`find_canonical_witness`, reported by benches."""

    candidates_considered: int = 0
    schedules_built: int = 0
    completions_searched: int = 0


def _condition1_cuts(txn: Transaction) -> Iterable[Tuple[int, Step]]:
    """Positions ``p`` in ``txn`` where step ``p`` is a LOCK and some UNLOCK
    occurs before ``p`` — the candidate ``(L A*)`` steps of a ``T_c``."""
    seen_unlock = False
    for i, s in enumerate(txn.steps):
        if s.is_unlock:
            seen_unlock = True
        elif s.is_lock and seen_unlock:
            yield i, s


def find_canonical_witness(
    transactions: Sequence[Transaction],
    initial: StructuralState = StructuralState.empty(),
    budget: int = DEFAULT_BUDGET,
    stats: Optional[WitnessSearchStats] = None,
    max_partners: Optional[int] = None,
) -> Optional[CanonicalWitness]:
    """Search a transaction system for a valid canonical witness.

    This is the Theorem-1 decision procedure: it enumerates the distinguished
    transaction ``T_c`` (restricted, via condition 1, to non-two-phase
    transactions and their post-unlock lock steps), then partner subsets,
    serial orders and prefix lengths, checking conditions (2a) and (2b) for
    each candidate ``S'``.  Returns the first valid witness or ``None``.

    ``max_partners`` bounds ``k - 1``; by default all subsets are tried.
    Exponential — intended for the small systems where Theorem 1's structure
    is being validated, not as a production scheduler.
    """
    if stats is None:
        stats = WitnessSearchStats()
    txns = list(transactions)
    by_name = {t.name: t for t in txns}
    if len(by_name) != len(txns):
        raise VerificationError("transactions must have distinct names")

    for tc in txns:
        for cut, pending in _condition1_cuts(tc):
            entity = pending.entity
            mode = pending.lock_mode
            assert mode is not None
            others = [t for t in txns if t.name != tc.name]
            limit = len(others) if max_partners is None else min(max_partners, len(others))
            for size in range(1, limit + 1):
                for subset in itertools.combinations(others, size):
                    # Prefix length choices for each partner: 1..len.
                    ranges = [range(1, len(t.steps) + 1) for t in subset]
                    for lengths in itertools.product(*ranges):
                        prefix_lengths = {
                            t.name: n for t, n in zip(subset, lengths)
                        }
                        prefix_lengths[tc.name] = cut
                        for perm in itertools.permutations(subset):
                            for c_pos in range(len(perm) + 1):
                                ordered = list(perm[:c_pos]) + [tc] + list(perm[c_pos:])
                                stats.candidates_considered += 1
                                witness = CanonicalWitness(
                                    transactions=tuple(ordered),
                                    c_index=c_pos,
                                    entity=entity,
                                    lock_mode=mode,
                                    prefix_lengths=dict(prefix_lengths),
                                )
                                stats.schedules_built += 1
                                try:
                                    if witness.is_valid(initial, budget):
                                        return witness
                                except SearchBudgetExceeded:
                                    raise
    return None
