"""Search for legal & proper completions of a partial schedule.

Condition (2b) of Theorem 1 asks whether a partial schedule "can be extended
to a complete legal and proper schedule".  This module answers that question
by depth-first search over the remaining steps, with three soundness-critical
observations:

1. **Legality and properness are prefix-closed**, so an illegal/improper
   extension can be pruned immediately.
2. **The reachable search state is a function of the progress vector** (how
   many steps of each transaction have executed).  Held locks are a function
   of each transaction's own prefix; and any two *proper* orders of the same
   step multiset leave the database in the same structural state, because
   properness forces INSERT/DELETE steps on each entity to alternate.
   Hence "completable from here?" can be memoised on the progress vector.
3. A schedule is *complete* when every transaction that has started has
   finished; the search may start additional transactions when their
   INSERTs/DELETEs are needed to make other transactions' steps defined.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..exceptions import SearchBudgetExceeded
from .operations import LockMode, Operation
from .schedules import Event, Schedule
from .states import StructuralState
from .steps import Entity

#: Default node budget for completion searches.
DEFAULT_BUDGET = 200_000


class _CompletionSearch:
    """One DFS instance; see module docstring for the invariants."""

    def __init__(self, schedule: Schedule, initial: StructuralState, budget: int,
                 require_all: bool = False):
        self.schedule = schedule
        self.transactions = schedule.transactions
        self.initial = initial
        self.budget = budget
        self.require_all = require_all
        self.nodes = 0
        self.dead: Set[Tuple[int, ...]] = set()
        self.names = sorted(self.transactions)

        # Reconstruct the mutable search state from the existing prefix.
        self.progress: Dict[str, int] = schedule.progress()
        self.holders: Dict[Entity, Dict[str, LockMode]] = {}
        state = initial
        for event in schedule.events:
            state = self._apply(event, state)
        self.state = state
        self.extension: List[Event] = []

    # ------------------------------------------------------------------

    def _apply(self, event: Event, state: StructuralState) -> StructuralState:
        step = event.step
        mode = step.lock_mode
        if step.is_lock and mode is not None:
            current = self.holders.setdefault(step.entity, {})
            prev = current.get(event.txn)
            if prev is None or mode is LockMode.EXCLUSIVE:
                current[event.txn] = mode
        elif step.is_unlock and mode is not None:
            current = self.holders.get(step.entity, {})
            if current.get(event.txn) is mode:
                del current[event.txn]
        if step.op is Operation.INSERT:
            return StructuralState(state.entities | {step.entity})
        if step.op is Operation.DELETE:
            return StructuralState(state.entities - {step.entity})
        return state

    def _undo(self, event: Event, prior_mode: Optional[LockMode],
              prior_state: StructuralState) -> None:
        step = event.step
        if (step.is_lock or step.is_unlock) and step.lock_mode is not None:
            current = self.holders.setdefault(step.entity, {})
            if prior_mode is None:
                current.pop(event.txn, None)
            else:
                current[event.txn] = prior_mode
        self.state = prior_state

    def _admissible(self, txn: str) -> Optional[Event]:
        """The next event of ``txn`` if executing it now keeps the schedule
        legal and proper; ``None`` otherwise."""
        idx = self.progress[txn]
        steps = self.transactions[txn].steps
        if idx >= len(steps):
            return None
        step = steps[idx]
        if not self.state.defines(step):
            return None
        mode = step.lock_mode
        if step.is_lock and mode is not None:
            for other, other_mode in self.holders.get(step.entity, {}).items():
                if other != txn and mode.conflicts_with(other_mode):
                    return None
        return Event(txn, idx, step)

    def _done(self) -> bool:
        if self.require_all:
            return all(
                self.progress[name] == len(self.transactions[name].steps)
                for name in self.names
            )
        return all(
            self.progress[name] in (0, len(self.transactions[name].steps))
            for name in self.names
        )

    def run(self) -> Optional[List[Event]]:
        if self._dfs():
            return list(self.extension)
        return None

    def _dfs(self) -> bool:
        if self._done():
            return True
        key = tuple(self.progress[name] for name in self.names)
        if key in self.dead:
            return False
        self.nodes += 1
        if self.nodes > self.budget:
            raise SearchBudgetExceeded(self.budget)
        for txn in self.names:
            event = self._admissible(txn)
            if event is None:
                continue
            prior_mode = self.holders.get(event.step.entity, {}).get(txn)
            prior_state = self.state
            self.state = self._apply(event, self.state)
            self.progress[txn] += 1
            self.extension.append(event)
            if self._dfs():
                return True
            self.extension.pop()
            self.progress[txn] -= 1
            self._undo(event, prior_mode, prior_state)
        self.dead.add(key)
        return False


def find_completion(
    schedule: Schedule,
    initial: StructuralState = StructuralState.empty(),
    budget: int = DEFAULT_BUDGET,
    require_all: bool = False,
) -> Optional[Schedule]:
    """Extend ``schedule`` to a complete legal & proper schedule, if possible.

    The input must itself be a legal & proper partial schedule.  With
    ``require_all`` every transaction of the system must finish; otherwise
    (the paper's notion of a schedule "of some transactions") only the
    transactions that have started must finish, though the search may start
    others when properness demands it.

    Returns the completed schedule, or ``None`` when no completion exists.
    Raises :class:`SearchBudgetExceeded` when the search is cut off — callers
    must treat that as "unknown", never as "no".
    """
    search = _CompletionSearch(schedule, initial, budget, require_all)
    extension = search.run()
    if extension is None:
        return None
    return schedule.with_events(schedule.events + tuple(extension))


def is_completable(
    schedule: Schedule,
    initial: StructuralState = StructuralState.empty(),
    budget: int = DEFAULT_BUDGET,
    require_all: bool = False,
) -> bool:
    """Decision form of :func:`find_completion`."""
    return find_completion(schedule, initial, budget, require_all) is not None
