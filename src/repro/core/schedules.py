"""Schedules: interleavings of transactions (Section 2 of the paper).

A **schedule** of a transaction system is an ordering of the steps of some
transactions that preserves each transaction's internal order.  This module
represents schedules as sequences of :class:`Event` objects — a step tagged
with the transaction it belongs to and its position within that transaction —
so that steps keep their identity under the permutations of Lemmas 1 and 2.

Key predicates, straight from the paper:

* **legal** — no prefix exists in which two distinct transactions hold
  conflicting locks on the same entity;
* **proper for G** — every step is defined in the structural state in which
  it executes, starting from ``G`` (READ/WRITE/DELETE need the entity
  present, INSERT needs it absent);
* **complete** — every participating transaction has contributed all of its
  steps; otherwise the schedule is *partial* (a prefix of a schedule).

Schedules are immutable; all mutators return new objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..exceptions import (
    IllegalScheduleError,
    ImproperScheduleError,
    MalformedScheduleError,
)
from .operations import LockMode
from .states import StructuralState
from .steps import Entity, Step
from .transactions import Transaction, transactions_by_name


@dataclass(frozen=True)
class Event:
    """One scheduled step: step ``index`` of transaction ``txn``.

    Two events are equal iff they are the *same* step of the *same*
    transaction — this identity is what the ``move``/transpose machinery
    permutes.
    """

    txn: str
    index: int
    step: Step

    def __str__(self) -> str:
        return f"{self.txn}:{self.step}"

    def conflicts_with(self, other: "Event") -> bool:
        """Events conflict iff they belong to *different* transactions and
        their steps conflict (share an entity, ops not both in {R, LS, US})."""
        return self.txn != other.txn and self.step.conflicts_with(other.step)


class Schedule:
    """An immutable (possibly partial) schedule over a transaction system.

    ``transactions`` maps names to the *full* transactions of the system;
    the event list may cover any prefix of each.  Construction validates that
    per-transaction events appear in order 0, 1, 2, … without gaps.
    """

    __slots__ = ("_events", "_transactions", "_progress")

    def __init__(
        self,
        transactions: Iterable[Transaction],
        events: Iterable[Event] = (),
    ):
        self._transactions: Dict[str, Transaction] = transactions_by_name(
            list(transactions)
        )
        evts = tuple(events)
        progress: Dict[str, int] = {name: 0 for name in self._transactions}
        for e in evts:
            txn = self._transactions.get(e.txn)
            if txn is None:
                raise MalformedScheduleError(
                    f"event {e} references unknown transaction {e.txn!r}"
                )
            expected = progress[e.txn]
            if e.index != expected:
                raise MalformedScheduleError(
                    f"event {e} out of order: expected step {expected} of {e.txn}"
                )
            if e.index >= len(txn.steps) or txn.steps[e.index] != e.step:
                raise MalformedScheduleError(
                    f"event {e} does not match step {e.index} of {e.txn}"
                )
            progress[e.txn] = expected + 1
        self._events = evts
        self._progress = progress

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_order(
        cls, transactions: Sequence[Transaction], order: Sequence[str]
    ) -> "Schedule":
        """Build a schedule by naming, for each successive event, the
        transaction whose next step executes.

        This is how the paper's two-row figures translate to code::

            Schedule.from_order([t1, t2], ["T1", "T2", "T1", "T2", ...])
        """
        by_name = transactions_by_name(list(transactions))
        cursor = {name: 0 for name in by_name}
        events: List[Event] = []
        for name in order:
            if name not in by_name:
                raise MalformedScheduleError(f"unknown transaction {name!r} in order")
            idx = cursor[name]
            steps = by_name[name].steps
            if idx >= len(steps):
                raise MalformedScheduleError(
                    f"order schedules more steps of {name} than it has ({len(steps)})"
                )
            events.append(Event(name, idx, steps[idx]))
            cursor[name] = idx + 1
        return cls(transactions, events)

    @classmethod
    def serial(
        cls,
        transactions: Sequence[Transaction],
        order: Optional[Sequence[str]] = None,
    ) -> "Schedule":
        """The serial schedule executing the (complete) transactions one
        after another, in ``order`` (default: given sequence order)."""
        by_name = transactions_by_name(list(transactions))
        names = list(order) if order is not None else [t.name for t in transactions]
        events: List[Event] = []
        for name in names:
            txn = by_name[name]
            events.extend(Event(name, i, s) for i, s in enumerate(txn.steps))
        return cls(transactions, events)

    @classmethod
    def serial_prefixes(
        cls,
        transactions: Sequence[Transaction],
        prefix_lengths: Mapping[str, int],
        order: Sequence[str],
    ) -> "Schedule":
        """The partial schedule ``T'_1 T'_2 … T'_k`` executing a *prefix* of
        each transaction serially — the shape of the canonical schedules of
        Theorem 1."""
        by_name = transactions_by_name(list(transactions))
        events: List[Event] = []
        for name in order:
            txn = by_name[name]
            n = prefix_lengths.get(name, len(txn.steps))
            if not 0 <= n <= len(txn.steps):
                raise MalformedScheduleError(
                    f"prefix length {n} out of range for {name}"
                )
            events.extend(Event(name, i, txn.steps[i]) for i in range(n))
        return cls(transactions, events)

    # ------------------------------------------------------------------
    # Sequence protocol and basic accessors
    # ------------------------------------------------------------------

    @property
    def events(self) -> Tuple[Event, ...]:
        return self._events

    @property
    def transactions(self) -> Dict[str, Transaction]:
        return dict(self._transactions)

    def transaction(self, name: str) -> Transaction:
        return self._transactions[name]

    @property
    def transaction_names(self) -> Tuple[str, ...]:
        return tuple(self._transactions)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, idx: int) -> Event:
        return self._events[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self._events == other._events
            and self._transactions == other._transactions
        )

    def __hash__(self) -> int:
        return hash((self._events, tuple(sorted(self._transactions.items(),
                                                key=lambda kv: kv[0]))))

    def __str__(self) -> str:
        return " ".join(str(e) for e in self._events)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    def progress(self) -> Dict[str, int]:
        """How many steps of each transaction have executed."""
        return dict(self._progress)

    @property
    def is_complete(self) -> bool:
        """True iff every participating transaction has executed fully."""
        return all(
            self._progress[name] == len(txn.steps)
            for name, txn in self._transactions.items()
        )

    def is_serial(self) -> bool:
        """True iff the events form blocks: once a transaction's events stop,
        they never resume.  Partial serial schedules (serial executions of
        prefixes) also count."""
        seen_done: Set[str] = set()
        current: Optional[str] = None
        for e in self._events:
            if e.txn != current:
                if e.txn in seen_done:
                    return False
                if current is not None:
                    seen_done.add(current)
                current = e.txn
        return True

    def active_transactions(self) -> Tuple[str, ...]:
        """Names of transactions that have executed at least one step."""
        return tuple(n for n, k in self._progress.items() if k > 0)

    def prefix(self, length: int) -> "Schedule":
        """The schedule consisting of the first ``length`` events."""
        if not 0 <= length <= len(self._events):
            raise ValueError(f"prefix length {length} out of range")
        return Schedule(self._transactions.values(), self._events[:length])

    def extended(self, event: Event) -> "Schedule":
        """This schedule with one more event appended."""
        return Schedule(self._transactions.values(), self._events + (event,))

    def extended_by_steps(self, txn_name: str, count: int = 1) -> "Schedule":
        """Append the next ``count`` steps of ``txn_name``."""
        sched = self
        for _ in range(count):
            idx = sched._progress[txn_name]
            step = sched._transactions[txn_name].steps[idx]
            sched = sched.extended(Event(txn_name, idx, step))
        return sched

    def next_event_of(self, txn_name: str) -> Optional[Event]:
        """The next unexecuted step of ``txn_name`` as an event, or None."""
        idx = self._progress[txn_name]
        txn = self._transactions[txn_name]
        if idx >= len(txn.steps):
            return None
        return Event(txn_name, idx, txn.steps[idx])

    def projection(self, txn_name: str) -> Transaction:
        """The executed prefix of ``txn_name`` as a transaction (the paper's
        ``T'_i``)."""
        return self._transactions[txn_name].prefix(self._progress[txn_name])

    def with_events(self, events: Sequence[Event]) -> "Schedule":
        """A schedule over the same transaction system with a different event
        sequence (used by the transform machinery)."""
        return Schedule(self._transactions.values(), events)

    # ------------------------------------------------------------------
    # Legality
    # ------------------------------------------------------------------

    def legality_violation(self) -> Optional[str]:
        """Describe the first legality violation, or None if legal.

        A schedule is legal iff there is no prefix in which one transaction
        holds an exclusive lock on an entity while another holds a shared or
        exclusive lock on it.  A violation can only first arise at a LOCK
        step, so it suffices to check conflicts when locks are acquired.
        """
        holders: Dict[Entity, Dict[str, LockMode]] = {}
        for pos, e in enumerate(self._events):
            mode = e.step.lock_mode
            if e.step.is_lock and mode is not None:
                current = holders.setdefault(e.step.entity, {})
                for other, other_mode in current.items():
                    if other != e.txn and mode.conflicts_with(other_mode):
                        return (
                            f"event {pos} {e}: {e.txn} acquires {mode} lock on "
                            f"{e.step.entity!r} while {other} holds {other_mode}"
                        )
                prev = current.get(e.txn)
                if prev is None or mode is LockMode.EXCLUSIVE:
                    current[e.txn] = mode
            elif e.step.is_unlock and mode is not None:
                current = holders.get(e.step.entity, {})
                if current.get(e.txn) is mode:
                    del current[e.txn]
        return None

    def is_legal(self) -> bool:
        """True iff no two transactions ever hold conflicting locks."""
        return self.legality_violation() is None

    def assert_legal(self) -> None:
        violation = self.legality_violation()
        if violation is not None:
            raise IllegalScheduleError(violation)

    def held_locks(self) -> Dict[str, Dict[Entity, LockMode]]:
        """Locks held by each transaction at the end of the schedule."""
        return {
            name: self.projection(name).held_locks()
            for name in self._transactions
        }

    def lock_holders(self) -> Dict[Entity, Dict[str, LockMode]]:
        """Current holders per entity at the end of the schedule."""
        out: Dict[Entity, Dict[str, LockMode]] = {}
        for name, locks in self.held_locks().items():
            for entity, mode in locks.items():
                out.setdefault(entity, {})[name] = mode
        return out

    # ------------------------------------------------------------------
    # Properness
    # ------------------------------------------------------------------

    def properness_violation(
        self, initial: StructuralState = StructuralState.empty()
    ) -> Optional[str]:
        """Describe the first improper step, or None if the schedule is
        proper for ``initial``."""
        state = initial
        for pos, e in enumerate(self._events):
            if not state.defines(e.step):
                detail = (
                    "entity absent" if e.step.op.requires_present else "entity present"
                )
                return (
                    f"event {pos} {e}: step undefined in state {state} ({detail})"
                )
            state = state.apply(e.step)
        return None

    def is_proper(self, initial: StructuralState = StructuralState.empty()) -> bool:
        """True iff every step is defined in the structural state in which it
        executes, starting from ``initial``."""
        return self.properness_violation(initial) is None

    def assert_proper(self, initial: StructuralState = StructuralState.empty()) -> None:
        violation = self.properness_violation(initial)
        if violation is not None:
            raise ImproperScheduleError(violation)

    def final_state(
        self, initial: StructuralState = StructuralState.empty()
    ) -> StructuralState:
        """The structural state after executing the whole schedule (raises if
        the schedule is improper)."""
        state = initial
        for e in self._events:
            state = state.apply(e.step)
        return state

    def structural_trace(
        self, initial: StructuralState = StructuralState.empty()
    ) -> List[StructuralState]:
        """States ``[G_0, …, G_n]`` before/after each event (raises if
        improper)."""
        states = [initial]
        for e in self._events:
            states.append(states[-1].apply(e.step))
        return states

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format_rows(self, order: Optional[Sequence[str]] = None) -> str:
        """Render the schedule in the paper's two-row figure style: one row
        per transaction, one column per event, time flowing left to right."""
        names = list(order) if order is not None else sorted(self._transactions)
        cells = {name: [] for name in names}
        width = []
        for e in self._events:
            text = str(e.step)
            width.append(max(len(text), 1))
            for name in names:
                cells[name].append(text if name == e.txn else "")
        lines = []
        label_w = max((len(n) for n in names), default=0) + 1
        for name in names:
            row = [f"{name}:".ljust(label_w)]
            for w, cell in zip(width, cells[name]):
                row.append(cell.ljust(w))
            lines.append(" ".join(row).rstrip())
        return "\n".join(lines)


def entities_of_schedule(schedule: Schedule) -> FrozenSet[Entity]:
    """All entities touched by any event of the schedule."""
    return frozenset(e.step.entity for e in schedule.events)


def validate_schedule(
    schedule: Schedule,
    initial: StructuralState = StructuralState.empty(),
    require_complete: bool = False,
) -> None:
    """One-stop validation: legality + properness (+ completeness).

    Raises the appropriate :mod:`repro.exceptions` error on failure; returns
    None on success.
    """
    schedule.assert_legal()
    schedule.assert_proper(initial)
    if require_complete and not schedule.is_complete:
        raise MalformedScheduleError("schedule is not complete")
