"""Conflict serializability and the serializability graph ``D(S)``.

Per the paper (Section 2): the serializability graph ``D(S)`` of a schedule
``S`` has a node for each transaction and an edge ``(T_i, T_j)`` if a step of
``T_i`` precedes, in ``S``, a conflicting step of ``T_j``.  ``S`` is
(conflict) serializable iff ``D(S)`` is acyclic [EGLT76].

This module builds ``D(S)``, tests acyclicity, extracts serialization orders
(topological sorts), identifies the *sources* and *sinks* that Theorem 1
reasons about, and — for cross-validation in tests — decides serializability
by the definitional route as well: existence of a serial schedule ordering
all conflicting pairs the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .schedules import Event, Schedule


@dataclass(frozen=True)
class SerializabilityGraph:
    """The conflict graph ``D(S)``: nodes are transaction names; edges record
    which transaction's conflicting step came first.

    ``edge_witnesses`` retains, for each edge, one pair of conflicting events
    proving it — invaluable when explaining nonserializability witnesses.
    """

    nodes: FrozenSet[str]
    edges: FrozenSet[Tuple[str, str]]
    edge_witnesses: Tuple[Tuple[Tuple[str, str], Tuple[Event, Event]], ...] = field(
        default=(), compare=False
    )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def successors(self, node: str) -> FrozenSet[str]:
        return frozenset(b for a, b in self.edges if a == node)

    def predecessors(self, node: str) -> FrozenSet[str]:
        return frozenset(a for a, b in self.edges if b == node)

    def sources(self) -> FrozenSet[str]:
        """Nodes with no incoming edges."""
        targets = {b for _, b in self.edges}
        return frozenset(n for n in self.nodes if n not in targets)

    def sinks(self) -> FrozenSet[str]:
        """Nodes with no outgoing edges — the transactions Theorem 1's
        condition (2a) constrains."""
        origins = {a for a, _ in self.edges}
        return frozenset(n for n in self.nodes if n not in origins)

    def witness_for(self, edge: Tuple[str, str]) -> Optional[Tuple[Event, Event]]:
        """One conflicting event pair realising ``edge``, if recorded."""
        for e, w in self.edge_witnesses:
            if e == edge:
                return w
        return None

    # ------------------------------------------------------------------
    # Acyclicity / orders
    # ------------------------------------------------------------------

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def find_cycle(self) -> Optional[List[str]]:
        """Return some cycle as a node list ``[a, b, …, a]``, or None."""
        color: Dict[str, int] = {n: 0 for n in self.nodes}  # 0 white 1 grey 2 black
        parent: Dict[str, Optional[str]] = {}
        succ: Dict[str, List[str]] = {n: [] for n in self.nodes}
        for a, b in sorted(self.edges, key=repr):
            succ[a].append(b)

        for root in sorted(self.nodes, key=repr):
            if color[root] != 0:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [(root, iter(succ[root]))]
            color[root] = 1
            parent[root] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == 0:
                        color[nxt] = 1
                        parent[nxt] = node
                        stack.append((nxt, iter(succ[nxt])))
                        advanced = True
                        break
                    if color[nxt] == 1:
                        # Found a back edge node -> nxt; reconstruct cycle.
                        cycle = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]  # type: ignore[assignment]
                            cycle.append(cur)
                        cycle.reverse()
                        cycle.append(cycle[0])
                        return cycle
                if not advanced:
                    color[node] = 2
                    stack.pop()
        return None

    def topological_sort(self) -> List[str]:
        """One topological order of the nodes (deterministic: ties broken by
        repr).  Raises ``ValueError`` if the graph is cyclic."""
        indeg: Dict[str, int] = {n: 0 for n in self.nodes}
        succ: Dict[str, List[str]] = {n: [] for n in self.nodes}
        for a, b in self.edges:
            indeg[b] += 1
            succ[a].append(b)
        ready = sorted((n for n, d in indeg.items() if d == 0), key=repr)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in sorted(succ[node], key=repr):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
            ready.sort(key=repr)
        if len(order) != len(self.nodes):
            raise ValueError("graph is cyclic; no topological order exists")
        return order

    def all_topological_sorts(self, limit: int = 10_000) -> List[List[str]]:
        """All topological orders (up to ``limit``), for exhaustive tests."""
        indeg: Dict[str, int] = {n: 0 for n in self.nodes}
        succ: Dict[str, List[str]] = {n: [] for n in self.nodes}
        for a, b in self.edges:
            indeg[b] += 1
            succ[a].append(b)
        out: List[List[str]] = []
        order: List[str] = []

        def backtrack() -> bool:
            if len(out) >= limit:
                return False
            if len(order) == len(self.nodes):
                out.append(list(order))
                return True
            for n in sorted(self.nodes, key=repr):
                if indeg[n] == 0 and n not in order:
                    order.append(n)
                    for nxt in succ[n]:
                        indeg[nxt] -= 1
                    if not backtrack():
                        return False
                    for nxt in succ[n]:
                        indeg[nxt] += 1
                    order.pop()
            return True

        backtrack()
        return out

    def __str__(self) -> str:
        parts = [f"{a}->{b}" for a, b in sorted(self.edges, key=repr)]
        lonely = sorted(self.nodes - {x for e in self.edges for x in e}, key=repr)
        parts.extend(str(n) for n in lonely)
        return "D(S){" + ", ".join(parts) + "}"


def serializability_graph(schedule: Schedule) -> SerializabilityGraph:
    """Build ``D(S)`` for a schedule, with one witness pair per edge.

    Only transactions that have executed at least one step in ``S`` appear as
    nodes (a transaction the schedule never touches cannot constrain the
    serialization order).
    """
    events = schedule.events
    nodes = frozenset(schedule.active_transactions())
    edges: Set[Tuple[str, str]] = set()
    witnesses: List[Tuple[Tuple[str, str], Tuple[Event, Event]]] = []
    # Group events per entity to avoid the full quadratic sweep over events
    # of unrelated entities.
    by_entity: Dict[object, List[Event]] = {}
    for e in events:
        by_entity.setdefault(e.step.entity, []).append(e)
    for entity_events in by_entity.values():
        n = len(entity_events)
        for i in range(n):
            first = entity_events[i]
            for j in range(i + 1, n):
                second = entity_events[j]
                if first.conflicts_with(second):
                    edge = (first.txn, second.txn)
                    if edge not in edges:
                        edges.add(edge)
                        witnesses.append((edge, (first, second)))
    return SerializabilityGraph(nodes, frozenset(edges), tuple(witnesses))


def is_serializable(schedule: Schedule) -> bool:
    """Conflict serializability via acyclicity of ``D(S)`` [EGLT76]."""
    return serializability_graph(schedule).is_acyclic()


def serialization_order(schedule: Schedule) -> List[str]:
    """A serialization order (topological sort of ``D(S)``).  Raises
    ``ValueError`` when the schedule is not serializable."""
    return serializability_graph(schedule).topological_sort()


def equivalent_serial_schedule(schedule: Schedule) -> Schedule:
    """A serial schedule conflict-equivalent to ``schedule``.

    Only meaningful for complete schedules; partial schedules are serialized
    as serial executions of the executed prefixes.
    """
    order = serialization_order(schedule)
    prefixes = [schedule.projection(name) for name in order]
    inactive = [
        t for n, t in schedule.transactions.items()
        if n not in set(order)
    ]
    return Schedule.serial_prefixes(
        list(schedule.transactions.values()),
        {p.name: len(p.steps) for p in prefixes}
        | {t.name: 0 for t in inactive},
        order,
    )


def conflict_equivalent(s1: Schedule, s2: Schedule) -> bool:
    """Definitional conflict equivalence: same events, and every conflicting
    pair ordered identically.  Used to cross-validate the graph-based test."""
    if sorted(s1.events, key=repr) != sorted(s2.events, key=repr):
        return False
    pos1 = {e: i for i, e in enumerate(s1.events)}
    pos2 = {e: i for i, e in enumerate(s2.events)}
    events = list(s1.events)
    for i, a in enumerate(events):
        for b in events[i + 1 :]:
            if a.conflicts_with(b):
                if (pos1[a] < pos1[b]) != (pos2[a] < pos2[b]):
                    return False
    return True


def is_serializable_by_definition(schedule: Schedule, limit: int = 50_000) -> bool:
    """Decide serializability by the definition: search serial schedules of
    the same (executed) transaction prefixes for one that is conflict
    equivalent.  Exponential — only for cross-checks on small schedules."""
    import itertools

    active = schedule.active_transactions()
    count = 0
    for perm in itertools.permutations(active):
        count += 1
        if count > limit:
            raise ValueError("permutation limit exceeded")
        serial = Schedule.serial_prefixes(
            list(schedule.transactions.values()),
            {n: schedule.progress()[n] for n in schedule.transactions},
            list(perm),
        )
        if conflict_equivalent(schedule, serial):
            return True
    return False
