"""Core model of the paper: steps, transactions, schedules, serializability,
and the Theorem-1 canonical-schedule machinery."""

from .canonical import (
    CanonicalWitness,
    WitnessSearchStats,
    find_canonical_witness,
)
from .completion import find_completion, is_completable
from .interaction import (
    InteractionGraph,
    StaticHeuristicVerdict,
    static_chordless_heuristic,
)
from .operations import (
    D,
    I,
    LS,
    LX,
    LockMode,
    Operation,
    R,
    US,
    UX,
    W,
    operations_conflict,
    parse_operation,
)
from .safety import (
    SafetyVerdict,
    SearchStats,
    decide_safety,
    find_nonserializable_schedule,
    is_safe_bruteforce,
    is_safe_canonical,
)
from .schedules import Event, Schedule, validate_schedule
from .serializability import (
    SerializabilityGraph,
    conflict_equivalent,
    equivalent_serial_schedule,
    is_serializable,
    is_serializable_by_definition,
    serializability_graph,
    serialization_order,
)
from .states import DatabaseState, StructuralState, ValueState
from .steps import Entity, Step, parse_step, parse_steps, step
from .transactions import (
    Transaction,
    assert_well_formed,
    transactions_by_name,
    two_phase_locked,
)
from .transforms import (
    CanonicalizationTrace,
    canonicalize,
    is_sink_of_prefix,
    move,
    split_at_first_cycle,
    transpose,
)
from .twophase import (
    TwoPhaseReport,
    all_two_phase,
    analyze_two_phase,
    candidate_distinguished_transactions,
)

__all__ = [
    "CanonicalWitness",
    "CanonicalizationTrace",
    "D",
    "DatabaseState",
    "Entity",
    "Event",
    "I",
    "InteractionGraph",
    "LS",
    "LX",
    "LockMode",
    "Operation",
    "R",
    "SafetyVerdict",
    "Schedule",
    "SearchStats",
    "SerializabilityGraph",
    "StaticHeuristicVerdict",
    "Step",
    "StructuralState",
    "Transaction",
    "TwoPhaseReport",
    "US",
    "UX",
    "ValueState",
    "W",
    "WitnessSearchStats",
    "all_two_phase",
    "analyze_two_phase",
    "assert_well_formed",
    "candidate_distinguished_transactions",
    "canonicalize",
    "conflict_equivalent",
    "decide_safety",
    "equivalent_serial_schedule",
    "find_canonical_witness",
    "find_completion",
    "find_nonserializable_schedule",
    "is_completable",
    "is_safe_bruteforce",
    "is_safe_canonical",
    "is_serializable",
    "is_serializable_by_definition",
    "is_sink_of_prefix",
    "move",
    "operations_conflict",
    "parse_operation",
    "parse_step",
    "parse_steps",
    "serializability_graph",
    "serialization_order",
    "split_at_first_cycle",
    "static_chordless_heuristic",
    "step",
    "transactions_by_name",
    "transpose",
    "two_phase_locked",
    "validate_schedule",
]
