"""Structural and value states of a dynamic database (Section 2).

The paper distinguishes two components of database state:

* the **structural state** ``G`` — *which* entities currently exist.  Only
  INSERT and DELETE change it.  A READ/WRITE/DELETE step is *defined* in
  ``G`` iff its entity exists in ``G``; an INSERT step is defined iff its
  entity does **not** exist.  Lock and unlock steps are always defined —
  the paper explicitly allows locking an entity before inserting it.
* the **value state** — the assignment of values to the existing entities.
  Only WRITE changes it (and INSERT initialises it; DELETE removes it).

:class:`StructuralState` is immutable: applying steps produces new states, so
the history of states ``G_1, G_2, …`` used throughout the DDAG/DTR proofs can
be retained cheaply.  :class:`ValueState` is a thin immutable mapping used by
the simulator and the examples; the safety theory never needs it (properness
and serializability depend only on structure and ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..exceptions import ImproperScheduleError
from .operations import Operation
from .steps import Entity, Step


@dataclass(frozen=True)
class StructuralState:
    """An immutable set of existing entities — a structural state ``G``."""

    entities: FrozenSet[Entity] = frozenset()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, *entities: Entity) -> "StructuralState":
        """Build a state containing exactly the given entities."""
        return cls(frozenset(entities))

    @classmethod
    def empty(cls) -> "StructuralState":
        """The empty database, the initial state in most of the paper's
        examples (e.g. the schedules of Section 2 "begin when the database is
        empty")."""
        return cls(frozenset())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __contains__(self, entity: Entity) -> bool:
        return entity in self.entities

    def __iter__(self) -> Iterator[Entity]:
        return iter(self.entities)

    def __len__(self) -> int:
        return len(self.entities)

    def defines(self, step: Step) -> bool:
        """Is ``step`` defined in this structural state?

        READ/WRITE/DELETE require the entity to exist; INSERT requires it to
        be absent; lock/unlock steps are always defined (§2: "before
        inserting an entity a transaction must lock it even though it does
        not actually exist in the database").
        """
        if step.op.requires_present:
            return step.entity in self.entities
        if step.op.requires_absent:
            return step.entity not in self.entities
        return True

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def apply(self, step: Step) -> "StructuralState":
        """Return the state after executing ``step``.

        Raises :class:`ImproperScheduleError` if the step is not defined
        here, mirroring the paper's ``S(G) is undefined`` condition.
        """
        if not self.defines(step):
            raise ImproperScheduleError(
                f"step {step} is not defined in structural state {self}"
            )
        if step.op is Operation.INSERT:
            return StructuralState(self.entities | {step.entity})
        if step.op is Operation.DELETE:
            return StructuralState(self.entities - {step.entity})
        return self

    def apply_all(self, steps: Iterable[Step]) -> "StructuralState":
        """Fold :meth:`apply` over a sequence of steps — the paper's
        ``S(G)``.  Raises on the first undefined step."""
        state = self
        for s in steps:
            state = state.apply(s)
        return state

    def trace(self, steps: Iterable[Step]) -> List["StructuralState"]:
        """Return the list of intermediate states ``[G_0, G_1, …, G_n]``
        visited while applying ``steps``; ``G_0`` is this state.

        The DDAG and DTR correctness arguments constantly refer to "the state
        of the graph when transaction i begins"; this helper materialises
        those snapshots.
        """
        states = [self]
        for s in steps:
            states.append(states[-1].apply(s))
        return states

    def __str__(self) -> str:
        inner = ", ".join(sorted(map(str, self.entities)))
        return "{" + inner + "}"


@dataclass(frozen=True)
class ValueState:
    """An immutable assignment of values to (a subset of) existing entities.

    The safety theory never inspects values — only the simulator and the
    examples use them, to demonstrate that nonserializable schedules really do
    corrupt data while serializable ones do not.
    """

    values: Tuple[Tuple[Entity, Hashable], ...] = ()

    @classmethod
    def from_mapping(cls, mapping: Mapping[Entity, Hashable]) -> "ValueState":
        return cls(tuple(sorted(mapping.items(), key=lambda kv: repr(kv[0]))))

    def as_dict(self) -> Dict[Entity, Hashable]:
        return dict(self.values)

    def get(self, entity: Entity, default: Hashable = None) -> Hashable:
        return self.as_dict().get(entity, default)

    def set(self, entity: Entity, value: Hashable) -> "ValueState":
        d = self.as_dict()
        d[entity] = value
        return ValueState.from_mapping(d)

    def remove(self, entity: Entity) -> "ValueState":
        d = self.as_dict()
        d.pop(entity, None)
        return ValueState.from_mapping(d)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.values)
        return "{" + inner + "}"


@dataclass
class DatabaseState:
    """A mutable pairing of structural and value state used by the simulator.

    ``apply`` executes a data step, maintaining both components; a WRITE
    records ``value`` (defaulting to a monotone version counter so that every
    write is distinguishable), and a READ returns the current value.
    """

    structure: StructuralState = field(default_factory=StructuralState.empty)
    values: ValueState = field(default_factory=ValueState)
    _version: int = 0

    def apply(self, step: Step, value: Optional[Hashable] = None) -> Optional[Hashable]:
        """Execute one data step; returns the read value for READ steps."""
        self.structure = self.structure.apply(step)
        self._version += 1
        if step.op is Operation.READ:
            return self.values.get(step.entity)
        if step.op is Operation.WRITE:
            self.values = self.values.set(
                step.entity, value if value is not None else f"v{self._version}"
            )
        elif step.op is Operation.INSERT:
            self.values = self.values.set(
                step.entity, value if value is not None else f"init{self._version}"
            )
        elif step.op is Operation.DELETE:
            self.values = self.values.remove(step.entity)
        return None

    def snapshot(self) -> Tuple[StructuralState, ValueState]:
        """An immutable snapshot of the current (structure, values) pair."""
        return self.structure, self.values


def is_defined_sequence(steps: Iterable[Step], initial: StructuralState) -> bool:
    """True iff every step of the sequence is defined in the structural state
    in which it executes — i.e. the paper's ``S(G)`` is defined."""
    state = initial
    for s in steps:
        if not state.defines(s):
            return False
        state = state.apply(s)
    return True


def first_undefined_step(
    steps: Iterable[Step], initial: StructuralState
) -> Optional[Tuple[int, Step, StructuralState]]:
    """Locate the first step undefined in its execution state.

    Returns ``(position, step, state_before)`` or ``None`` if the whole
    sequence is defined.  This powers the diagnostics in properness errors.
    """
    state = initial
    for i, s in enumerate(steps):
        if not state.defines(s):
            return i, s, state
        state = state.apply(s)
    return None
