"""Schedule transformations: Lemma 1, Lemma 2, and the canonicalisation
pipeline used in the Only-If direction of Theorem 1.

* :func:`transpose` swaps two adjacent events of different transactions.
  Lemma 1: if the two steps do not conflict and the schedule was legal and
  proper, the result is legal and proper with the same ``D(S)``.
* :func:`move` implements the paper's ``move(S, S', T')``: the steps of
  transaction ``T'`` inside the prefix ``S'`` are moved to follow all other
  steps of ``S'``, preserving the relative order of steps inside and outside
  ``T'``.  Lemma 2: if ``T'`` is a sink of ``D(S')`` and ``S`` was legal and
  proper, the result is legal and proper with the same ``D(S)``.
* :func:`split_at_first_cycle` computes the paper's ``S⁻`` (longest prefix
  with acyclic ``D``) and ``S⁺`` (shortest prefix with a cycle), identifying
  the distinguished transaction ``T_c`` and entity ``A*``.
* :func:`canonicalize` runs the full Only-If construction: minimise the set
  ``M(S)`` by repeated moves, then serialise the ``S⁻`` prefixes in
  topological order, producing a :class:`~repro.core.canonical.CanonicalWitness`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..exceptions import ModelError
from .operations import LockMode
from .schedules import Event, Schedule
from .serializability import SerializabilityGraph, serializability_graph
from .steps import Entity


def transpose(schedule: Schedule, position: int, require_nonconflicting: bool = True) -> Schedule:
    """Swap the adjacent events at ``position`` and ``position + 1``.

    The two events must belong to different transactions (otherwise the
    result would violate program order).  With ``require_nonconflicting``
    (the Lemma 1 precondition) the events must also not conflict.
    """
    events = schedule.events
    if not 0 <= position < len(events) - 1:
        raise IndexError(f"no adjacent pair at position {position}")
    first, second = events[position], events[position + 1]
    if first.txn == second.txn:
        raise ModelError(
            f"cannot transpose events {first} and {second} of the same transaction"
        )
    if require_nonconflicting and first.conflicts_with(second):
        raise ModelError(f"events {first} and {second} conflict; Lemma 1 does not apply")
    swapped = events[:position] + (second, first) + events[position + 2 :]
    return schedule.with_events(swapped)


def move(schedule: Schedule, prefix_length: int, txn_name: str) -> Schedule:
    """The paper's ``move(S, S', T')`` permutation.

    ``S'`` is the prefix of the first ``prefix_length`` events; ``T'`` is the
    subsequence of ``S'`` belonging to ``txn_name``.  The result places the
    events of ``S' \\ T'`` first, then the events of ``T'``, then the suffix,
    preserving relative order inside each group — exactly the formal
    definition in Section 3.2.
    """
    if not 0 <= prefix_length <= len(schedule.events):
        raise IndexError(f"prefix length {prefix_length} out of range")
    prefix = schedule.events[:prefix_length]
    suffix = schedule.events[prefix_length:]
    moved = tuple(e for e in prefix if e.txn == txn_name)
    kept = tuple(e for e in prefix if e.txn != txn_name)
    return schedule.with_events(kept + moved + suffix)


def is_sink_of_prefix(schedule: Schedule, prefix_length: int, txn_name: str) -> bool:
    """Is ``txn_name`` a sink of ``D(S')`` for the given prefix?  (The Lemma 2
    precondition.)"""
    graph = serializability_graph(schedule.prefix(prefix_length))
    return txn_name in graph.nodes and txn_name in graph.sinks()


def split_at_first_cycle(
    schedule: Schedule,
) -> Optional[Tuple[int, Event]]:
    """Find the paper's ``S⁻``/``S⁺`` split.

    Returns ``(minus_length, closing_event)`` where ``minus_length`` is the
    length of ``S⁻`` (the longest prefix whose ``D`` is acyclic) and
    ``closing_event`` is the event whose execution first creates a cycle
    (``S⁺ = S⁻`` extended with it).  Returns ``None`` when ``D(S)`` is
    acyclic, i.e. the schedule is serializable.

    Incremental construction: edges only ever get added as the prefix grows,
    so we add the events one at a time and test for a cycle through the new
    event's transaction.
    """
    edges: Set[Tuple[str, str]] = set()
    nodes: Set[str] = set()
    past: List[Event] = []
    for i, e in enumerate(schedule.events):
        nodes.add(e.txn)
        for earlier in past:
            if earlier.conflicts_with(e):
                edges.add((earlier.txn, e.txn))
        graph = SerializabilityGraph(frozenset(nodes), frozenset(edges))
        if not graph.is_acyclic():
            return i, e
        past.append(e)
    return None


class CanonicalizationTrace:
    """Diagnostics collected while canonicalising a schedule.

    ``minimization_moves`` records the transactions moved while shrinking
    ``M(S)``; ``serialization_moves`` the transactions moved while
    serialising the prefix (in the order they were moved, i.e. reverse
    topological order).
    """

    def __init__(self) -> None:
        self.minimization_moves: List[str] = []
        self.serialization_moves: List[str] = []
        self.intermediate_schedules: List[Schedule] = []


def _conflict_unlockers(
    prefix: Schedule, entity: Entity, lock_mode: LockMode
) -> Set[str]:
    """Transactions that, within ``prefix``, unlock ``entity`` in a mode that
    conflicts with ``lock_mode`` (the mode of ``T_c``'s pending lock)."""
    out: Set[str] = set()
    for e in prefix.events:
        if (
            e.step.is_unlock
            and e.step.entity == entity
            and e.step.lock_mode is not None
            and e.step.lock_mode.conflicts_with(lock_mode)
        ):
            out.add(e.txn)
    return out


def _blocked_set(
    prefix: Schedule, graph: SerializabilityGraph, entity: Entity, lock_mode: LockMode
) -> Set[str]:
    """The paper's ``M(S)`` (refined with lock modes): nodes of ``D(S⁻)``
    that neither conflict-unlock ``A*`` in ``S⁻`` nor precede, in ``D(S⁻)``,
    a node that does."""
    unlockers = _conflict_unlockers(prefix, entity, lock_mode)
    # Transitive closure of "precedes an unlocker": walk predecessors.
    reaching: Set[str] = set(unlockers)
    changed = True
    while changed:
        changed = False
        for a, b in graph.edges:
            if b in reaching and a not in reaching:
                reaching.add(a)
                changed = True
    return set(graph.nodes) - reaching


def canonicalize(
    schedule: Schedule,
    trace: Optional[CanonicalizationTrace] = None,
):
    """Run the Only-If construction of Theorem 1 on a complete, legal,
    proper, **nonserializable** schedule.

    Returns a :class:`repro.core.canonical.CanonicalWitness` whose serial
    prefix schedule ``S'``, distinguished transaction ``T_c``, and entity
    ``A*`` satisfy conditions (1), (2a) and (2b) of the theorem; the witness
    carries the final transformed schedule as its completion evidence.

    Raises :class:`ModelError` if the schedule is serializable (no ``S⁻``
    split exists) or if the cycle-closing step is not a lock step (which
    cannot happen for well-formed, legal inputs — see the discussion in
    ``transforms``' tests).
    """
    from .canonical import CanonicalWitness  # local import to avoid a cycle

    split = split_at_first_cycle(schedule)
    if split is None:
        raise ModelError("schedule is serializable; nothing to canonicalise")
    _, closing = split
    if not closing.step.is_lock:
        raise ModelError(
            f"cycle-closing event {closing} is not a lock step; the input is "
            f"not a legal schedule of well-formed transactions"
        )
    tc = closing.txn
    entity = closing.step.entity
    lock_mode = closing.step.lock_mode
    assert lock_mode is not None

    current = schedule
    # --------------------------------------------------------------
    # Phase 1: minimise M(S) by moving sinks of D(S⁻) that are in M
    # past the (L A*) step (move over the S⁺ prefix).
    # --------------------------------------------------------------
    while True:
        split = split_at_first_cycle(current)
        assert split is not None, "moves must preserve nonserializability"
        minus_len, closing_now = split
        assert closing_now.txn == tc and closing_now.step.entity == entity, (
            "moves must preserve the earliest cycle's closing step"
        )
        prefix = current.prefix(minus_len)
        graph = serializability_graph(prefix)
        blocked = _blocked_set(prefix, graph, entity, lock_mode)
        if not blocked:
            break
        movable = sorted(blocked & set(graph.sinks()), key=repr)
        assert movable, "nonempty M(S) must contain a sink of D(S⁻)"
        victim = movable[0]
        current = move(current, minus_len + 1, victim)
        if trace is not None:
            trace.minimization_moves.append(victim)
            trace.intermediate_schedules.append(current)

    # --------------------------------------------------------------
    # Phase 2: serialise the S⁻ prefixes in topological order by moving
    # T'_k, then T'_{k-1}, … to the back of the shrinking prefix.
    # --------------------------------------------------------------
    split = split_at_first_cycle(current)
    assert split is not None
    minus_len, _ = split
    graph = serializability_graph(current.prefix(minus_len))
    topo = graph.topological_sort()
    boundary = minus_len
    for name in reversed(topo):
        current = move(current, boundary, name)
        if trace is not None:
            trace.serialization_moves.append(name)
            trace.intermediate_schedules.append(current)
        # The prefix for the next move is everything before the first moved
        # event of `name`: the events of earlier-topological transactions.
        moved_count = sum(
            1 for e in current.events[:boundary] if e.txn == name
        )
        boundary -= moved_count

    # --------------------------------------------------------------
    # Assemble the witness.
    # --------------------------------------------------------------
    split = split_at_first_cycle(current)
    assert split is not None
    minus_len, closing_now = split
    assert closing_now.txn == tc and closing_now.step.entity == entity
    prefix = current.prefix(minus_len)
    prefix_lengths: Dict[str, int] = prefix.progress()
    order = [name for name in topo]
    txns = [current.transaction(name) for name in order]
    c_index = order.index(tc)
    return CanonicalWitness(
        transactions=tuple(txns),
        c_index=c_index,
        entity=entity,
        lock_mode=lock_mode,
        prefix_lengths={n: prefix_lengths.get(n, 0) for n in order},
        completion=current,
    )
