"""Safety deciders for locked transaction systems.

A transaction system is **safe** when every legal and proper schedule of it
is (conflict) serializable.  This module offers two independent deciders:

* :func:`find_nonserializable_schedule` — **brute force**: depth-first search
  over all legal & proper interleavings, looking for a complete schedule with
  a cyclic ``D(S)``.  Sound and complete for finite systems; exponential.
* :func:`decide_safety` — runs brute force and, via
  :func:`repro.core.canonical.find_canonical_witness`, the Theorem-1
  characterisation, cross-checking that the two verdicts agree (they must, by
  Theorem 1; the test-suite uses this as an empirical proof check).

The brute-force search prunes on two facts: legality/properness are
prefix-closed, and the future of a search node is fully determined by the
progress vector plus the accumulated conflict-graph edges (which earlier
events exist is exactly the progress vector).  Once the conflict graph goes
cyclic, unsafety reduces to completability, decided by
:mod:`repro.core.completion`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import SearchBudgetExceeded
from .canonical import CanonicalWitness, WitnessSearchStats, find_canonical_witness
from .completion import DEFAULT_BUDGET, find_completion
from .operations import LockMode
from .schedules import Event, Schedule
from .serializability import SerializabilityGraph
from .states import StructuralState
from .steps import Entity
from .transactions import Transaction


@dataclass
class SearchStats:
    """Counters from the brute-force search (compared against the canonical
    search in the search-space benchmark)."""

    nodes_explored: int = 0
    states_pruned: int = 0
    completions_invoked: int = 0


class _UnsafetySearch:
    """DFS for a complete, legal, proper, nonserializable schedule."""

    def __init__(
        self,
        transactions: Sequence[Transaction],
        initial: StructuralState,
        budget: int,
        stats: SearchStats,
    ):
        self.transactions = {t.name: t for t in transactions}
        self.names = sorted(self.transactions)
        self.initial = initial
        self.budget = budget
        self.stats = stats
        self.progress: Dict[str, int] = {n: 0 for n in self.names}
        self.holders: Dict[Entity, Dict[str, LockMode]] = {}
        self.state = initial
        self.events: List[Event] = []
        self.edges: Set[Tuple[str, str]] = set()
        self.visited: Set[Tuple[Tuple[int, ...], frozenset]] = set()

    # ------------------------------------------------------------------

    def _admissible(self, txn: str) -> Optional[Event]:
        idx = self.progress[txn]
        steps = self.transactions[txn].steps
        if idx >= len(steps):
            return None
        step = steps[idx]
        if not self.state.defines(step):
            return None
        mode = step.lock_mode
        if step.is_lock and mode is not None:
            for other, other_mode in self.holders.get(step.entity, {}).items():
                if other != txn and mode.conflicts_with(other_mode):
                    return None
        return Event(txn, idx, step)

    def _new_edges(self, event: Event) -> Set[Tuple[str, str]]:
        added: Set[Tuple[str, str]] = set()
        for earlier in self.events:
            if earlier.conflicts_with(event):
                edge = (earlier.txn, event.txn)
                if edge not in self.edges:
                    added.add(edge)
        return added

    def _cyclic(self) -> bool:
        nodes = frozenset(n for n in self.names if self.progress[n] > 0)
        return not SerializabilityGraph(nodes, frozenset(self.edges)).is_acyclic()

    def _schedule(self) -> Schedule:
        return Schedule(self.transactions.values(), tuple(self.events))

    def run(self) -> Optional[Schedule]:
        return self._dfs()

    def _dfs(self) -> Optional[Schedule]:
        key = (
            tuple(self.progress[n] for n in self.names),
            frozenset(self.edges),
        )
        if key in self.visited:
            self.stats.states_pruned += 1
            return None
        self.visited.add(key)
        self.stats.nodes_explored += 1
        if self.stats.nodes_explored > self.budget:
            raise SearchBudgetExceeded(self.budget)

        if self._cyclic():
            # Nonserializability is locked in: any legal proper completion is
            # a nonserializable schedule of the system.
            self.stats.completions_invoked += 1
            completed = find_completion(self._schedule(), self.initial, self.budget)
            return completed  # None -> dead branch; edges only ever grow.

        for txn in self.names:
            event = self._admissible(txn)
            if event is None:
                continue
            added = self._new_edges(event)
            prior_mode = self.holders.get(event.step.entity, {}).get(txn)
            prior_state = self.state
            # apply
            step = event.step
            mode = step.lock_mode
            if step.is_lock and mode is not None:
                self.holders.setdefault(step.entity, {})[txn] = (
                    LockMode.EXCLUSIVE
                    if prior_mode is LockMode.EXCLUSIVE
                    else mode
                )
            elif step.is_unlock and mode is not None:
                current = self.holders.get(step.entity, {})
                if current.get(txn) is mode:
                    del current[txn]
            self.state = self.state.apply(step)
            self.progress[txn] += 1
            self.events.append(event)
            self.edges |= added

            found = self._dfs()
            if found is not None:
                return found

            # undo
            self.edges -= added
            self.events.pop()
            self.progress[txn] -= 1
            self.state = prior_state
            if (step.is_lock or step.is_unlock) and step.lock_mode is not None:
                holders = self.holders.setdefault(step.entity, {})
                if prior_mode is None:
                    holders.pop(txn, None)
                else:
                    holders[txn] = prior_mode
        return None


def find_nonserializable_schedule(
    transactions: Sequence[Transaction],
    initial: StructuralState = StructuralState.empty(),
    budget: int = DEFAULT_BUDGET,
    stats: Optional[SearchStats] = None,
) -> Optional[Schedule]:
    """Brute-force search for a complete, legal, proper, nonserializable
    schedule of (some of) the given transactions.

    Returns such a schedule (the direct unsafety witness) or ``None`` when
    the system is safe.  Raises :class:`SearchBudgetExceeded` when the search
    is cut off.
    """
    if stats is None:
        stats = SearchStats()
    search = _UnsafetySearch(transactions, initial, budget, stats)
    return search.run()


def is_safe_bruteforce(
    transactions: Sequence[Transaction],
    initial: StructuralState = StructuralState.empty(),
    budget: int = DEFAULT_BUDGET,
) -> bool:
    """Safety by exhaustive schedule search."""
    return find_nonserializable_schedule(transactions, initial, budget) is None


def is_safe_canonical(
    transactions: Sequence[Transaction],
    initial: StructuralState = StructuralState.empty(),
    budget: int = DEFAULT_BUDGET,
) -> bool:
    """Safety by the Theorem-1 characterisation: safe iff no canonical
    witness exists."""
    return find_canonical_witness(transactions, initial, budget) is None


@dataclass
class SafetyVerdict:
    """The combined result of both deciders.

    ``agree`` must always be True by Theorem 1; the benchmark harness and the
    property tests assert this over corpora of random systems.
    """

    safe_bruteforce: bool
    safe_canonical: bool
    schedule_witness: Optional[Schedule] = None
    canonical_witness: Optional[CanonicalWitness] = None
    bruteforce_stats: SearchStats = field(default_factory=SearchStats)
    canonical_stats: WitnessSearchStats = field(default_factory=WitnessSearchStats)

    @property
    def agree(self) -> bool:
        return self.safe_bruteforce == self.safe_canonical

    @property
    def safe(self) -> bool:
        return self.safe_bruteforce


def decide_safety(
    transactions: Sequence[Transaction],
    initial: StructuralState = StructuralState.empty(),
    budget: int = DEFAULT_BUDGET,
) -> SafetyVerdict:
    """Run both deciders and report the combined verdict with witnesses."""
    bf_stats = SearchStats()
    cn_stats = WitnessSearchStats()
    schedule = find_nonserializable_schedule(transactions, initial, budget, bf_stats)
    witness = find_canonical_witness(transactions, initial, budget, cn_stats)
    return SafetyVerdict(
        safe_bruteforce=schedule is None,
        safe_canonical=witness is None,
        schedule_witness=schedule,
        canonical_witness=witness,
        bruteforce_stats=bf_stats,
        canonical_stats=cn_stats,
    )
