"""Interaction graphs and chordless cycles — the static-case machinery that
Section 3.1 shows to be *insufficient* for dynamic databases.

In the static setting [Yan82] one defines an **interaction graph**: a node
per transaction and one (undirected, parallel-edge-preserving) edge *per pair
of conflicting steps* between two transactions.  There, it suffices to check
canonical schedules of transaction subsets forming **chordless cycles** of
the interaction graph — a cycle with no extra edge of the multigraph joining
two of its nodes, where two parallel edges between the same pair of nodes
form a 2-node cycle.

The paper's Fig. 2 refutes this shortcut for dynamic databases: a system
whose interaction graph has a *pair* of edges between every two transactions
(so the only chordless cycles are 2-node ones), where no 2-transaction
subsystem has any proper schedule at all, yet a proper legal nonserializable
schedule of all three transactions exists.  This module provides the graph,
the chordless-cycle enumeration, and the (unsound-for-dynamic) heuristic
decider that the benchmark exposes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .schedules import Schedule
from .serializability import is_serializable
from .states import StructuralState
from .steps import Step, conflicting_pairs
from .transactions import Transaction


@dataclass(frozen=True)
class InteractionGraph:
    """Undirected multigraph of step-level conflicts between transactions.

    ``multiplicity`` maps an unordered transaction pair (stored sorted) to
    the number of conflicting step pairs between them.
    """

    nodes: Tuple[str, ...]
    multiplicity: Tuple[Tuple[Tuple[str, str], int], ...]

    @classmethod
    def of(cls, transactions: Sequence[Transaction]) -> "InteractionGraph":
        """Build the graph, counting conflicting **data** step pairs.

        Lock/unlock steps are projected away: in the static theory the
        interaction structure of two transactions is their data-access
        overlap (well-formed locking would otherwise inflate every shared
        entity into a bundle of lock-step conflicts and no pair could ever
        be a single edge).
        """
        names = tuple(sorted(t.name for t in transactions))
        by_name = {t.name: t.data_steps for t in transactions}
        mult: Dict[Tuple[str, str], int] = {}
        for a, b in itertools.combinations(names, 2):
            count = sum(1 for _ in conflicting_pairs(by_name[a], by_name[b]))
            if count:
                mult[(a, b)] = count
        return cls(names, tuple(sorted(mult.items())))

    def multiplicity_of(self, a: str, b: str) -> int:
        key = (a, b) if a <= b else (b, a)
        return dict(self.multiplicity).get(key, 0)

    def neighbours(self, node: str) -> FrozenSet[str]:
        out: Set[str] = set()
        for (a, b), _ in self.multiplicity:
            if a == node:
                out.add(b)
            elif b == node:
                out.add(a)
        return frozenset(out)

    # ------------------------------------------------------------------
    # Chordless cycles
    # ------------------------------------------------------------------

    def two_node_cycles(self) -> List[Tuple[str, str]]:
        """Pairs joined by at least two parallel edges (2-node cycles)."""
        return [pair for pair, count in self.multiplicity if count >= 2]

    def chordless_cycles(self) -> List[Tuple[str, ...]]:
        """All chordless cycles, as node tuples.

        A 2-node cycle is a pair with ≥2 parallel edges.  A cycle on ``m ≥ 3``
        nodes uses one edge between consecutive nodes; it is *chordless* when
        the multigraph contains no other edge between any two of its nodes —
        i.e. no edge between non-consecutive nodes and no parallel duplicate
        between consecutive ones.  (This is why doubling every edge of a
        triangle kills the triangle as a chordless cycle: the duplicates are
        chords.)
        """
        cycles: List[Tuple[str, ...]] = list(self.two_node_cycles())
        mult = dict(self.multiplicity)

        def edge_count(a: str, b: str) -> int:
            return mult.get((a, b) if a <= b else (b, a), 0)

        for size in range(3, len(self.nodes) + 1):
            for subset in itertools.combinations(self.nodes, size):
                # Try every cyclic order of the subset (fix the first node and
                # orient to avoid counting rotations/reflections twice).
                rest = subset[1:]
                for perm in itertools.permutations(rest):
                    if len(perm) > 1 and perm[0] > perm[-1]:
                        continue  # reflection
                    cycle = (subset[0],) + perm
                    consecutive = {
                        frozenset((cycle[i], cycle[(i + 1) % size]))
                        for i in range(size)
                    }
                    if not all(
                        edge_count(*sorted(pair)) >= 1 for pair in consecutive
                    ):
                        continue
                    chord = False
                    for a, b in itertools.combinations(subset, 2):
                        needed = 1 if frozenset((a, b)) in consecutive else 0
                        if edge_count(*sorted((a, b))) > needed:
                            chord = True
                            break
                    if not chord:
                        cycles.append(cycle)
        return cycles


@dataclass(frozen=True)
class StaticHeuristicVerdict:
    """Result of the (dynamic-unsound) chordless-cycle heuristic."""

    declared_safe: bool
    cycles_checked: Tuple[Tuple[str, ...], ...]
    counterexample: Schedule | None = None


def static_chordless_heuristic(
    transactions: Sequence[Transaction],
    initial: StructuralState = StructuralState.empty(),
    budget: int = 200_000,
) -> StaticHeuristicVerdict:
    """The static-database shortcut: only check subsystems that form
    chordless cycles of the interaction graph.

    For static databases this is sound [Yan82].  For dynamic databases it is
    **not** — the Fig. 2 system makes it declare "safe" while a proper legal
    nonserializable schedule of all three transactions exists.  The Fig. 2
    benchmark runs this side by side with the sound deciders.
    """
    from .safety import find_nonserializable_schedule

    graph = InteractionGraph.of(transactions)
    by_name = {t.name: t for t in transactions}
    checked: List[Tuple[str, ...]] = []
    for cycle in graph.chordless_cycles():
        checked.append(cycle)
        subsystem = [by_name[n] for n in cycle]
        schedule = find_nonserializable_schedule(subsystem, initial, budget)
        if schedule is not None:
            return StaticHeuristicVerdict(False, tuple(checked), schedule)
    return StaticHeuristicVerdict(True, tuple(checked), None)
