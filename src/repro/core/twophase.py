"""Two-phase locking analysis.

Condition 1 of Theorem 1 requires the distinguished transaction ``T_c`` to
lock an entity *after* it has unlocked some entity — i.e. to violate the
two-phase rule.  Hence, as the paper notes, "if all transactions obey
two-phase locking we can immediately conclude that the transaction system is
safe".  This module packages that shortcut and a few related diagnostics
used by the verifier and the policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .steps import Step
from .transactions import Transaction


@dataclass(frozen=True)
class TwoPhaseReport:
    """Result of analysing a transaction for two-phase structure.

    ``violations`` lists ``(unlock_index, lock_index)`` pairs where a LOCK
    step follows an UNLOCK step — the exact shape condition 1 of Theorem 1
    looks for.  ``lock_point`` is the index of the last LOCK step (the
    transaction's *locked point*), ``None`` for lock-free transactions.
    """

    name: str
    is_two_phase: bool
    violations: Tuple[Tuple[int, int], ...]
    lock_point: Optional[int]

    def first_violation(self) -> Optional[Tuple[int, int]]:
        return self.violations[0] if self.violations else None


def analyze_two_phase(txn: Transaction) -> TwoPhaseReport:
    """Analyse one transaction: locate every post-unlock lock step."""
    first_unlock: Optional[int] = None
    violations: List[Tuple[int, int]] = []
    for i, s in enumerate(txn.steps):
        if s.is_unlock and first_unlock is None:
            first_unlock = i
        elif s.is_lock and first_unlock is not None:
            violations.append((first_unlock, i))
    return TwoPhaseReport(
        name=txn.name,
        is_two_phase=not violations,
        violations=tuple(violations),
        lock_point=txn.locked_point(),
    )


def all_two_phase(transactions: Sequence[Transaction]) -> bool:
    """True iff every transaction obeys two-phase locking.

    When this holds the system is safe with no further search — no candidate
    ``T_c`` can satisfy condition 1 of Theorem 1.
    """
    return all(analyze_two_phase(t).is_two_phase for t in transactions)


def candidate_distinguished_transactions(
    transactions: Sequence[Transaction],
) -> List[Transaction]:
    """The transactions that could serve as ``T_c`` in a canonical witness:
    exactly the non-two-phase ones."""
    return [t for t in transactions if not analyze_two_phase(t).is_two_phase]


def growing_phase(txn: Transaction) -> Tuple[Step, ...]:
    """The steps up to and including the locked point (the growing phase)."""
    point = txn.locked_point()
    if point is None:
        return ()
    return txn.steps[: point + 1]


def shrinking_phase(txn: Transaction) -> Tuple[Step, ...]:
    """The steps strictly after the locked point (the shrinking phase)."""
    point = txn.locked_point()
    if point is None:
        return txn.steps
    return txn.steps[point + 1 :]
