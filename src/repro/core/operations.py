"""Operations of the dynamic-database model (Section 2 of the paper).

The paper's plain transactions draw operations from ``O = {R, W, I, D}``
(READ, WRITE, INSERT, DELETE).  Locked transactions extend this with four
locking operations, giving ``OL = {R, W, I, D, LS, LX, US, UX}``:

* ``LS`` / ``LX`` — LOCK-SHARED / LOCK-EXCLUSIVE,
* ``US`` / ``UX`` — UNLOCK-SHARED / UNLOCK-EXCLUSIVE.

This module defines the :class:`Operation` enumeration, the :class:`LockMode`
enumeration, and the *conflict* relation between operations:

    Two steps conflict if they operate on a common entity and the operations
    of the two steps are not both in ``{R, LS, US}``.       (paper, Section 2)

The INSERT and DELETE operations change the *structural* state of the
database; WRITE changes the *value* state; READ changes nothing.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class Operation(enum.Enum):
    """One of the eight operations of ``OL``.

    The enum value is the paper's abbreviation, which is also what
    :meth:`__str__` returns so that schedules print exactly like the paper's
    figures, e.g. ``(I a)`` or ``(LX 4)``.
    """

    READ = "R"
    WRITE = "W"
    INSERT = "I"
    DELETE = "D"
    LOCK_SHARED = "LS"
    LOCK_EXCLUSIVE = "LX"
    UNLOCK_SHARED = "US"
    UNLOCK_EXCLUSIVE = "UX"

    def __str__(self) -> str:
        return self.value

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------

    @property
    def is_data(self) -> bool:
        """True for the four data operations ``O = {R, W, I, D}``."""
        return self in _DATA_OPS

    @property
    def is_lock(self) -> bool:
        """True for ``LS`` and ``LX``."""
        return self in _LOCK_OPS

    @property
    def is_unlock(self) -> bool:
        """True for ``US`` and ``UX``."""
        return self in _UNLOCK_OPS

    @property
    def is_structural(self) -> bool:
        """True for ``I`` and ``D`` — the operations that change which
        entities exist (the structural state)."""
        return self in (Operation.INSERT, Operation.DELETE)

    @property
    def lock_mode(self) -> "LockMode | None":
        """The lock mode involved in a lock/unlock operation, else ``None``."""
        if self in (Operation.LOCK_SHARED, Operation.UNLOCK_SHARED):
            return LockMode.SHARED
        if self in (Operation.LOCK_EXCLUSIVE, Operation.UNLOCK_EXCLUSIVE):
            return LockMode.EXCLUSIVE
        return None

    @property
    def requires_present(self) -> bool:
        """True if the operation is defined only on an entity present in the
        structural state (``R``, ``W``, ``D``)."""
        return self in (Operation.READ, Operation.WRITE, Operation.DELETE)

    @property
    def requires_absent(self) -> bool:
        """True if the operation is defined only on an absent entity (``I``)."""
        return self is Operation.INSERT


# Short aliases matching the paper's notation.
R = Operation.READ
W = Operation.WRITE
I = Operation.INSERT  # noqa: E741 - deliberately named after the paper's abbreviation
D = Operation.DELETE
LS = Operation.LOCK_SHARED
LX = Operation.LOCK_EXCLUSIVE
US = Operation.UNLOCK_SHARED
UX = Operation.UNLOCK_EXCLUSIVE

_DATA_OPS: FrozenSet[Operation] = frozenset({R, W, I, D})
_LOCK_OPS: FrozenSet[Operation] = frozenset({LS, LX})
_UNLOCK_OPS: FrozenSet[Operation] = frozenset({US, UX})

#: Operations that never conflict with each other: a pair of steps on a common
#: entity conflicts unless *both* operations are in this set (paper, §2).
NON_CONFLICTING: FrozenSet[Operation] = frozenset({R, LS, US})

#: The plain-transaction alphabet ``O``.
DATA_OPERATIONS: FrozenSet[Operation] = _DATA_OPS

#: The locked-transaction alphabet ``OL``.
ALL_OPERATIONS: FrozenSet[Operation] = frozenset(Operation)


class LockMode(enum.Enum):
    """Shared or exclusive lock mode."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def __str__(self) -> str:
        return self.value

    def conflicts_with(self, other: "LockMode") -> bool:
        """Lock-mode compatibility: only SHARED/SHARED is compatible."""
        return self is LockMode.EXCLUSIVE or other is LockMode.EXCLUSIVE

    @property
    def lock_op(self) -> Operation:
        """The LOCK operation acquiring this mode."""
        return LX if self is LockMode.EXCLUSIVE else LS

    @property
    def unlock_op(self) -> Operation:
        """The UNLOCK operation releasing this mode."""
        return UX if self is LockMode.EXCLUSIVE else US


def operations_conflict(op1: Operation, op2: Operation) -> bool:
    """Return True if two operations conflict when applied to a common entity.

    Implements the paper's definition verbatim: the operations conflict unless
    both belong to ``{R, LS, US}``.  Note that this makes, e.g., ``LX``
    conflict with ``LS`` and ``W`` conflict with ``R`` — and also makes the
    structural operations ``I``/``D`` conflict with everything, which is what
    forces insertions and deletions to serialize against all access to the
    affected entity.
    """
    return not (op1 in NON_CONFLICTING and op2 in NON_CONFLICTING)


def parse_operation(text: str) -> Operation:
    """Parse the paper's abbreviation (``"R"``, ``"LX"``, …) into an
    :class:`Operation`.

    Raises ``ValueError`` for unknown abbreviations.  Parsing is
    case-insensitive so that ``"lx"`` also works in hand-written tests.
    """
    try:
        return Operation(text.upper())
    except ValueError:
        valid = ", ".join(sorted(op.value for op in Operation))
        raise ValueError(f"unknown operation {text!r}; expected one of: {valid}") from None
