"""Steps: the atoms of transactions and schedules (Section 2 of the paper).

A *step* is a pair ``(a, e)`` where ``a`` is an operation and ``e`` an
entity.  Entities are arbitrary hashable Python values; the examples and
tests use short strings (``"a"``, ``"b"``) or integers matching the paper's
figures, while the DDAG policy uses tuples to model edges.

The module also provides the step-level conflict predicate and a small
parser for the compact textual notation used throughout the tests, e.g.
``"(I a)"`` or ``"LX 4"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, List, Tuple

from .operations import LockMode, Operation, operations_conflict, parse_operation

#: Entities may be any hashable value.  Strings/ints in most code; the DDAG
#: policy uses ``("edge", u, v)`` tuples for edge entities.
Entity = Hashable


@dataclass(frozen=True, order=False)
class Step:
    """A single step ``(op, entity)``.

    Instances are immutable and hashable so they can be used in sets and as
    dict keys.  Equality is structural: two ``(R a)`` steps are equal even if
    they belong to different transactions — schedule-level identity is
    provided by :class:`repro.core.schedules.Event`, which pairs a step with
    its transaction and position.
    """

    op: Operation
    entity: Entity

    def __str__(self) -> str:
        return f"({self.op} {self.entity})"

    def __repr__(self) -> str:
        return f"Step({self.op.name}, {self.entity!r})"

    # ------------------------------------------------------------------
    # Classification (delegates to Operation)
    # ------------------------------------------------------------------

    @property
    def is_data(self) -> bool:
        """True for READ/WRITE/INSERT/DELETE steps."""
        return self.op.is_data

    @property
    def is_lock(self) -> bool:
        """True for LS/LX steps."""
        return self.op.is_lock

    @property
    def is_unlock(self) -> bool:
        """True for US/UX steps."""
        return self.op.is_unlock

    @property
    def lock_mode(self) -> LockMode | None:
        """The lock mode of a lock/unlock step, else ``None``."""
        return self.op.lock_mode

    def conflicts_with(self, other: "Step") -> bool:
        """Two steps conflict iff they share an entity and their operations
        are not both in ``{R, LS, US}`` (paper, §2)."""
        return self.entity == other.entity and operations_conflict(self.op, other.op)


def step(op: Operation | str, entity: Entity) -> Step:
    """Convenience constructor accepting either an :class:`Operation` or its
    textual abbreviation: ``step("LX", "a") == Step(LOCK_EXCLUSIVE, "a")``."""
    if isinstance(op, str):
        op = parse_operation(op)
    return Step(op, entity)


def steps_conflict(s1: Step, s2: Step) -> bool:
    """Module-level alias of :meth:`Step.conflicts_with` for functional use."""
    return s1.conflicts_with(s2)


def parse_step(text: str) -> Step:
    """Parse one step from the paper's notation.

    Accepts ``"(I a)"``, ``"I a"``, and ``"(LX 4)"`` forms.  Bare integers
    are converted to ``int`` entities so parsed steps compare equal to
    programmatically-built ones in the figure reproductions.
    """
    body = text.strip()
    if body.startswith("(") and body.endswith(")"):
        body = body[1:-1]
    parts = body.split()
    if len(parts) != 2:
        raise ValueError(f"cannot parse step from {text!r}; expected '(OP entity)'")
    op = parse_operation(parts[0])
    raw_entity = parts[1]
    entity: Entity = int(raw_entity) if raw_entity.lstrip("-").isdigit() else raw_entity
    return Step(op, entity)


def parse_steps(text: str) -> List[Step]:
    """Parse a whitespace-separated sequence of parenthesised steps.

    Example::

        parse_steps("(I a) (I b) (W c) (I d)")
        # [Step(INSERT, 'a'), Step(INSERT, 'b'), Step(WRITE, 'c'), Step(INSERT, 'd')]
    """
    out: List[Step] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            if depth == 0:
                current = []
            else:
                current.append(ch)
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced parentheses in {text!r}")
            if depth == 0:
                out.append(parse_step("".join(current)))
            else:
                current.append(ch)
        elif depth > 0:
            current.append(ch)
        elif not ch.isspace():
            raise ValueError(f"unexpected character {ch!r} outside parentheses in {text!r}")
    if depth != 0:
        raise ValueError(f"unbalanced parentheses in {text!r}")
    return out


def entities_of(steps: Iterable[Step]) -> frozenset:
    """The set of entities mentioned by a sequence of steps."""
    return frozenset(s.entity for s in steps)


def conflicting_pairs(
    steps_a: Iterable[Step], steps_b: Iterable[Step]
) -> Iterator[Tuple[Step, Step]]:
    """Yield every conflicting pair ``(sa, sb)`` with ``sa`` from the first
    sequence and ``sb`` from the second.

    Used to build interaction graphs and for brute-force cross-checks of the
    serializability graph.
    """
    bs = list(steps_b)
    for sa in steps_a:
        for sb in bs:
            if sa.conflicts_with(sb):
                yield sa, sb
