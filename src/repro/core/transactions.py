"""Transactions and locked transactions (Section 2 of the paper).

A **transaction** is a finite sequence of steps over ``O × U`` (data steps
only).  A **locked transaction** additionally contains lock and unlock steps,
i.e. a sequence over ``OL × U``.

A locked transaction is **well formed** when

* every INSERT/DELETE/WRITE on an entity ``A`` happens while the transaction
  holds an *exclusive* lock on ``A`` in the prefix up to that point, and
* every READ on ``A`` happens while it holds a *shared or exclusive* lock.

The paper additionally assumes throughout that a transaction **locks an
entity at most once** (a policy allowing double locking is trivially unsafe
[Yan82]); :meth:`Transaction.locks_entity_at_most_once` checks that
assumption, and :func:`assert_well_formed` can enforce both at once.

The class also exposes the lock-theoretic vocabulary the proofs use: held
locks after a prefix, unlock positions, the *locked point* (the instant the
transaction acquires its last lock — central to altruistic locking), and
two-phase-ness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import MalformedTransactionError
from .operations import LockMode, Operation
from .steps import Entity, Step, parse_steps


@dataclass(frozen=True)
class Transaction:
    """An immutable, named sequence of steps.

    ``name`` identifies the transaction inside schedules (the paper's
    ``T_1, T_2, …``).  The same class represents both plain and locked
    transactions; :meth:`is_locked` distinguishes them.
    """

    name: str
    steps: Tuple[Step, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_text(cls, name: str, text: str) -> "Transaction":
        """Build a transaction from the paper's notation::

            Transaction.from_text("T1", "(I a) (I b) (W c) (I d)")
        """
        return cls(name, tuple(parse_steps(text)))

    @classmethod
    def of(cls, name: str, steps: Iterable[Step]) -> "Transaction":
        return cls(name, tuple(steps))

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __getitem__(self, idx: int) -> Step:
        return self.steps[idx]

    def __str__(self) -> str:
        body = " ".join(str(s) for s in self.steps)
        return f"{self.name}: {body}"

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    def prefix(self, length: int) -> "Transaction":
        """The prefix consisting of the first ``length`` steps, named
        ``{name}'`` in keeping with the paper's ``T'_i`` notation when proper,
        or keeping the name when the prefix is the whole transaction."""
        if not 0 <= length <= len(self.steps):
            raise ValueError(
                f"prefix length {length} out of range for {self.name} "
                f"with {len(self.steps)} steps"
            )
        if length == len(self.steps):
            return self
        return Transaction(self.name, self.steps[:length])

    def is_prefix_of(self, other: "Transaction") -> bool:
        """True iff this transaction's steps form a prefix of ``other``'s."""
        return self.steps == other.steps[: len(self.steps)]

    def is_subsequence_of(self, other: "Transaction") -> bool:
        """True iff this transaction's steps embed order-preservingly into
        ``other``'s steps.  A locking policy ``P(T, T̄)`` requires ``T`` to be
        a subsequence of the well-formed locked transaction ``T̄``."""
        it = iter(other.steps)
        return all(any(mine == theirs for theirs in it) for mine in self.steps)

    @property
    def data_steps(self) -> Tuple[Step, ...]:
        """The subsequence of READ/WRITE/INSERT/DELETE steps."""
        return tuple(s for s in self.steps if s.is_data)

    def unlocked_projection(self, name: Optional[str] = None) -> "Transaction":
        """The plain transaction obtained by erasing lock/unlock steps."""
        return Transaction(name or self.name, self.data_steps)

    @property
    def entities(self) -> frozenset:
        """All entities mentioned by any step."""
        return frozenset(s.entity for s in self.steps)

    @property
    def is_locked(self) -> bool:
        """True if the transaction contains at least one lock/unlock step."""
        return any(not s.is_data for s in self.steps)

    # ------------------------------------------------------------------
    # Lock accounting
    # ------------------------------------------------------------------

    def held_locks(self, upto: Optional[int] = None) -> Dict[Entity, LockMode]:
        """Locks held after executing the prefix of length ``upto``
        (default: the whole transaction).

        A transaction *holds* an exclusive (shared) lock on ``A`` in a prefix
        if the prefix contains an ``(LX A)`` (``(LS A)``) step not followed by
        the matching unlock (§2).  If a transaction both shared- and
        exclusive-locks the same entity (possible only when the lock-once
        assumption is waived) the exclusive mode wins.
        """
        end = len(self.steps) if upto is None else upto
        held: Dict[Entity, LockMode] = {}
        for s in self.steps[:end]:
            mode = s.lock_mode
            if s.is_lock and mode is not None:
                if s.entity in held and held[s.entity] is LockMode.EXCLUSIVE:
                    continue
                held[s.entity] = mode
            elif s.is_unlock and mode is not None:
                if held.get(s.entity) is mode:
                    del held[s.entity]
        return held

    def holds_lock(self, entity: Entity, upto: Optional[int] = None) -> Optional[LockMode]:
        """The mode in which the prefix holds a lock on ``entity``, or None."""
        return self.held_locks(upto).get(entity)

    def lock_positions(self, entity: Entity) -> List[int]:
        """Indices of all LS/LX steps on ``entity``."""
        return [i for i, s in enumerate(self.steps) if s.is_lock and s.entity == entity]

    def unlock_positions(self, entity: Entity) -> List[int]:
        """Indices of all US/UX steps on ``entity``."""
        return [i for i, s in enumerate(self.steps) if s.is_unlock and s.entity == entity]

    def locked_entities(self) -> frozenset:
        """Entities on which the transaction takes any lock."""
        return frozenset(s.entity for s in self.steps if s.is_lock)

    def lock_mode_of(self, entity: Entity) -> Optional[LockMode]:
        """The mode of the first lock taken on ``entity``, or None."""
        for s in self.steps:
            if s.is_lock and s.entity == entity:
                return s.lock_mode
        return None

    def first_lock_index(self) -> Optional[int]:
        """Index of the first lock step, or None if the transaction never
        locks.  The first-locked entity is the ``B_i`` of the DDAG/DTR
        proofs."""
        for i, s in enumerate(self.steps):
            if s.is_lock:
                return i
        return None

    def first_locked_entity(self) -> Optional[Entity]:
        """The first entity locked (``B`` in Lemma 3), or None."""
        i = self.first_lock_index()
        return None if i is None else self.steps[i].entity

    def locked_point(self) -> Optional[int]:
        """Index of the transaction's last LOCK step — its *locked point*
        (Section 5).  ``None`` when the transaction takes no locks."""
        last = None
        for i, s in enumerate(self.steps):
            if s.is_lock:
                last = i
        return last

    def locks_entity_at_most_once(self) -> bool:
        """Check the paper's standing lock-once assumption."""
        seen = set()
        for s in self.steps:
            if s.is_lock:
                if s.entity in seen:
                    return False
                seen.add(s.entity)
        return True

    def is_two_phase(self) -> bool:
        """True iff no LOCK step follows an UNLOCK step (classic 2PL).

        Condition 1 of Theorem 1 requires the distinguished transaction
        ``T_c`` to violate exactly this; a system of two-phase transactions
        is immediately safe.
        """
        unlocked = False
        for s in self.steps:
            if s.is_unlock:
                unlocked = True
            elif s.is_lock and unlocked:
                return False
        return True

    # ------------------------------------------------------------------
    # Well-formedness
    # ------------------------------------------------------------------

    def well_formedness_violation(self) -> Optional[str]:
        """Describe the first well-formedness violation, or None if well
        formed.

        Checks, per Section 2: I/D/W under an exclusive lock; R under a
        shared or exclusive lock.  Additionally flags unlocks of locks not
        held (in the mode being released), which the model implies (an
        unlock step that releases nothing could never make the transaction
        "hold" or "not hold" coherently).
        """
        held: Dict[Entity, LockMode] = {}
        shared_also: set = set()
        for i, s in enumerate(self.steps):
            mode = s.lock_mode
            if s.is_lock and mode is not None:
                prev = held.get(s.entity)
                if prev is mode:
                    return f"step {i} {s}: already holds {mode} lock on {s.entity!r}"
                if prev is not None:
                    # Holding both modes simultaneously (upgrade); track both.
                    shared_also.add(s.entity)
                    held[s.entity] = LockMode.EXCLUSIVE
                else:
                    held[s.entity] = mode
            elif s.is_unlock and mode is not None:
                prev = held.get(s.entity)
                if prev is None:
                    return f"step {i} {s}: unlocks {s.entity!r} which is not locked"
                if prev is not mode and not (
                    s.entity in shared_also and mode is LockMode.SHARED
                ):
                    return (
                        f"step {i} {s}: unlocks {s.entity!r} in mode {mode} "
                        f"but holds it in mode {prev}"
                    )
                if s.entity in shared_also and mode is LockMode.SHARED:
                    shared_also.discard(s.entity)
                elif s.entity in shared_also and mode is LockMode.EXCLUSIVE:
                    shared_also.discard(s.entity)
                    held[s.entity] = LockMode.SHARED
                else:
                    del held[s.entity]
            elif s.op in (Operation.INSERT, Operation.DELETE, Operation.WRITE):
                if held.get(s.entity) is not LockMode.EXCLUSIVE:
                    return (
                        f"step {i} {s}: {s.op.name} on {s.entity!r} without an "
                        f"exclusive lock"
                    )
            elif s.op is Operation.READ:
                if s.entity not in held:
                    return f"step {i} {s}: READ of {s.entity!r} without any lock"
        return None

    def is_well_formed(self) -> bool:
        """True iff the locked transaction satisfies the §2 well-formedness
        rules.  A plain (lock-free) transaction with data steps is *not* well
        formed unless it is empty."""
        return self.well_formedness_violation() is None


def assert_well_formed(txn: Transaction, lock_once: bool = True) -> None:
    """Raise :class:`MalformedTransactionError` unless ``txn`` is well formed
    (and, when ``lock_once``, obeys the lock-once assumption)."""
    violation = txn.well_formedness_violation()
    if violation is not None:
        raise MalformedTransactionError(f"{txn.name}: {violation}")
    if lock_once and not txn.locks_entity_at_most_once():
        raise MalformedTransactionError(f"{txn.name}: locks an entity more than once")


def two_phase_locked(txn: Transaction, name: Optional[str] = None) -> Transaction:
    """Wrap a plain transaction in strict two-phase locking.

    All needed locks are acquired (in first-use order) before the data steps,
    and all are released afterwards.  READ-only entities get shared locks;
    anything written/inserted/deleted gets an exclusive lock.  The result is
    well formed and two-phase, the canonical *safe* baseline.
    """
    exclusive: List[Entity] = []
    shared: List[Entity] = []
    for s in txn.steps:
        if not s.is_data:
            raise MalformedTransactionError(
                f"{txn.name}: two_phase_locked expects a plain transaction"
            )
        if s.op is Operation.READ:
            if s.entity not in shared and s.entity not in exclusive:
                shared.append(s.entity)
        else:
            if s.entity in shared:
                shared.remove(s.entity)
            if s.entity not in exclusive:
                exclusive.append(s.entity)
    # Entities read before being written must still end up exclusive.
    shared = [e for e in shared if e not in exclusive]
    steps: List[Step] = []
    for e in exclusive:
        steps.append(Step(Operation.LOCK_EXCLUSIVE, e))
    for e in shared:
        steps.append(Step(Operation.LOCK_SHARED, e))
    steps.extend(txn.steps)
    for e in exclusive:
        steps.append(Step(Operation.UNLOCK_EXCLUSIVE, e))
    for e in shared:
        steps.append(Step(Operation.UNLOCK_SHARED, e))
    return Transaction(name or txn.name, tuple(steps))


def transactions_by_name(txns: Sequence[Transaction]) -> Dict[str, Transaction]:
    """Index a collection of transactions by name, rejecting duplicates."""
    out: Dict[str, Transaction] = {}
    for t in txns:
        if t.name in out:
            raise MalformedTransactionError(f"duplicate transaction name {t.name!r}")
        out[t.name] = t
    return out
