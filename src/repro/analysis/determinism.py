"""RPR001 — determinism hazards.

Four hazard classes, all of which have bitten (or would bite) the
naive/event byte-equivalence contract:

* **Unsorted set iteration** in ``repro.sim`` / ``repro.policies`` /
  ``repro.graphs`` — any order-dependent consumption (a ``for`` statement,
  a list/dict comprehension, ``list()``/``iter()``/``enumerate()``/
  ``join()``/``choice()`` …) of an expression inferred to be a
  ``set``/``frozenset``.  Under hash randomization the iteration order
  changes per process, so if it can reach a schedule, a wake-up set, or a
  reported row, two runs of the same seed diverge.  Consumption inside
  ``sorted()``/``set()``/``any()``/``min()`` … is order-insensitive and
  allowed; everything else needs ``sorted(...)`` or a
  ``# repro: noqa[RPR001] <why order cannot matter>``.
* **Bare ``random.*`` calls** — module-level randomness is shared,
  unseeded process state; all randomness must flow through an explicit
  seeded ``random.Random`` (the generators and the simulator RNG already
  do).
* **Wall-clock reads** (``time.time``/``perf_counter``/``datetime.now``…)
  outside the bench timing allowlist — wall time in simulation logic makes
  results machine-dependent.
* **Ordering via ``id()``** — CPython addresses vary per process; ``id``
  in a sort key or an ordering comparison is nondeterminism by
  construction.

The set-type inference is module-local and flow-insensitive: set
literals/comprehensions, ``set()``/``frozenset()`` calls, names assigned
from those, parameters/attributes annotated ``Set``/``FrozenSet``,
values of attributes annotated ``Dict[..., Set[...]]`` (a subscript,
``.get``, ``.pop``, or ``.values()`` item of such a dict is a set), set
binops, and calls of module functions whose return annotation is a set.
Unknown types are never flagged — the rule prefers false negatives to
noise.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import Finding, register_rule
from .engine import FileContext

CODE = "RPR001"

#: Module prefixes where unsorted set iteration can reach schedules,
#: wake-up sets, or reported rows.
SET_SCOPE_PREFIXES = ("repro.sim", "repro.policies", "repro.graphs")

#: Modules allowed to read the wall clock (bench timing sites).
WALL_CLOCK_ALLOW_PREFIXES = ("repro.bench", "benchmarks")

_SET_NAMES = {"set", "frozenset"}
_SET_ANN_NAMES = {"Set", "FrozenSet", "AbstractSet", "MutableSet", "set", "frozenset"}
_DICT_ANN_NAMES = {"Dict", "dict", "DefaultDict", "defaultdict", "Mapping", "MutableMapping"}
_SET_RETURNING_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}
_SAFE_CONSUMERS = {"sorted", "set", "frozenset", "any", "all", "sum", "min", "max", "len"}
_ORDERED_CONSUMERS = {"list", "tuple", "iter", "enumerate", "zip", "reversed", "next"}
_ORDERED_METHODS = {"extend", "join", "choice", "sample", "shuffle", "choices"}
_WALL_TIME_FUNCS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
}
_WALL_DATETIME_FUNCS = {"now", "utcnow", "today"}
_ORDER_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _in_scope(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _ann_kind(ann: Optional[ast.AST]) -> str:
    """Classify an annotation: ``'set'``, ``'dict_of_set'``, or ``''``."""
    if ann is None:
        return ""
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return ""
    if isinstance(ann, ast.Name) and ann.id in _SET_ANN_NAMES:
        return "set"
    if isinstance(ann, ast.Attribute) and ann.attr in _SET_ANN_NAMES:
        return "set"
    if isinstance(ann, ast.Subscript):
        base = ann.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if base_name in _SET_ANN_NAMES:
            return "set"
        if base_name in _DICT_ANN_NAMES:
            sl = ann.slice
            if isinstance(sl, ast.Index):  # pragma: no cover  (py<3.9 compat)
                sl = sl.value  # type: ignore[attr-defined]
            if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
                if _ann_kind(sl.elts[1]) == "set":
                    return "dict_of_set"
        if base_name == "Optional":
            return _ann_kind(ann.slice)
    return ""


class _SetTypes:
    """Module-local set-type environment (see module docstring)."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.set_attrs: Set[str] = set()
        self.dict_of_set_attrs: Set[str] = set()
        self.set_funcs: Set[str] = set()
        #: scope node -> names known set-typed / dict-of-set-typed there.
        self.scope_sets: Dict[ast.AST, Set[str]] = {}
        self.scope_dicts: Dict[ast.AST, Set[str]] = {}
        self._collect_declarations()
        # Two propagation passes resolve one level of aliasing
        # (``x = set(); y = x``) — enough in practice.
        for _ in range(2):
            self._collect_assignments()

    # -- declaration harvesting ------------------------------------------

    def _collect_declarations(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.AnnAssign):
                kind = _ann_kind(node.annotation)
                if not kind:
                    continue
                target = node.target
                if isinstance(target, ast.Attribute):
                    (self.set_attrs if kind == "set" else self.dict_of_set_attrs).add(
                        target.attr
                    )
                elif isinstance(target, ast.Name):
                    if isinstance(self.ctx.parent(node), ast.ClassDef):
                        (self.set_attrs if kind == "set"
                         else self.dict_of_set_attrs).add(target.id)
                    else:
                        scope = self._scope_of(node)
                        self._names(scope, kind).add(target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _ann_kind(node.returns) == "set":
                    self.set_funcs.add(node.name)
                for arg in list(node.args.args) + list(node.args.kwonlyargs):
                    kind = _ann_kind(arg.annotation)
                    if kind:
                        self._names(node, kind).add(arg.arg)

    def _collect_assignments(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Assign):
                kind = "set" if self.is_set(node.value) else (
                    "dict_of_set" if self._is_dict_of_set(node.value) else ""
                )
                if not kind:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._names(self._scope_of(node), kind).add(target.id)
                    elif isinstance(target, ast.Attribute):
                        (self.set_attrs if kind == "set"
                         else self.dict_of_set_attrs).add(target.attr)
            elif isinstance(node, ast.For):
                self._bind_loop_target(node.target, node.iter, node)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    self._bind_loop_target(gen.target, gen.iter, node)

    def _bind_loop_target(self, target: ast.AST, it: ast.AST, stmt: ast.AST) -> None:
        """``for k, vs in d.items()`` / ``for vs in d.values()`` over a
        dict-of-set binds the value name as a set."""
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute)):
            return
        if not self._is_dict_of_set(it.func.value):
            return
        scope = self._scope_of(stmt)
        if it.func.attr == "values" and isinstance(target, ast.Name):
            self._names(scope, "set").add(target.id)
        elif (
            it.func.attr == "items"
            and isinstance(target, ast.Tuple)
            and len(target.elts) == 2
            and isinstance(target.elts[1], ast.Name)
        ):
            self._names(scope, "set").add(target.elts[1].id)

    # -- environment helpers ---------------------------------------------

    def _scope_of(self, node: ast.AST) -> ast.AST:
        scope = self.ctx.enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        return scope if scope is not None else self.ctx.tree

    def _names(self, scope: ast.AST, kind: str) -> Set[str]:
        store = self.scope_sets if kind == "set" else self.scope_dicts
        return store.setdefault(scope, set())

    def _name_has_kind(self, node: ast.Name, kind: str) -> bool:
        store = self.scope_sets if kind == "set" else self.scope_dicts
        scope: Optional[ast.AST] = self._scope_of(node)
        while scope is not None:
            if node.id in store.get(scope, ()):
                return True
            scope = None if scope is self.ctx.tree else (
                self.ctx.enclosing(scope, ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda) or self.ctx.tree
            )
        return False

    # -- queries ----------------------------------------------------------

    def _is_dict_of_set(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in self.dict_of_set_attrs
        if isinstance(node, ast.Name):
            return self._name_has_kind(node, "dict_of_set")
        return False

    def is_set(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._name_has_kind(node, "set")
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_attrs
        if isinstance(node, ast.Subscript):
            return self._is_dict_of_set(node.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body) or self.is_set(node.orelse)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in _SET_NAMES or func.id in self.set_funcs:
                    return True
            elif isinstance(func, ast.Attribute):
                if func.attr in self.set_funcs:
                    return True
                if func.attr in _SET_RETURNING_METHODS and self.is_set(func.value):
                    return True
                if func.attr in ("get", "pop", "setdefault") and self._is_dict_of_set(
                    func.value
                ):
                    return True
        return False


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _consumed_safely(ctx: FileContext, node: ast.AST) -> bool:
    """Is ``node`` a direct argument of an order-insensitive consumer?"""
    parent = ctx.parent(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        name = _call_name(parent)
        return name in _SAFE_CONSUMERS
    return False


def _iter_set_iteration(ctx: FileContext, types: _SetTypes) -> Iterator[Finding]:
    msg = (
        "iteration over a set with nondeterministic order; wrap in sorted(...) "
        "or suppress with a reason order cannot reach output"
    )
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and types.is_set(node.iter):
            yield ctx.finding(CODE, node.iter, msg)
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            if not any(types.is_set(g.iter) for g in node.generators):
                continue
            if isinstance(node, ast.GeneratorExp) or _consumed_safely(ctx, node):
                # A genexp (or comp) feeding sorted()/set()/any()… directly
                # is order-insensitive at the only place it is consumed.
                if isinstance(node, ast.GeneratorExp) and not _consumed_safely(ctx, node):
                    yield ctx.finding(CODE, node, msg)
                continue
            yield ctx.finding(CODE, node, msg)
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _ORDERED_CONSUMERS or name in _ORDERED_METHODS:
                if any(types.is_set(arg) for arg in node.args):
                    if not _consumed_safely(ctx, node):
                        yield ctx.finding(CODE, node, msg)
        elif isinstance(node, ast.Starred) and types.is_set(node.value):
            yield ctx.finding(CODE, node, msg)


def _iter_random_calls(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr not in ("Random", "SystemRandom")
        ):
            yield ctx.finding(
                CODE,
                node,
                f"module-level random.{func.attr}() uses shared unseeded state; "
                "route randomness through an explicit seeded random.Random",
            )


def _iter_wall_clock(ctx: FileContext) -> Iterator[Finding]:
    if _in_scope(ctx.module, WALL_CLOCK_ALLOW_PREFIXES):
        return
    from_time_imports: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            from_time_imports.update(
                alias.asname or alias.name for alias in node.names
                if alias.name in _WALL_TIME_FUNCS
            )
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        flagged = None
        if isinstance(func, ast.Attribute):
            chain = _dotted(func)
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in _WALL_TIME_FUNCS
            ):
                flagged = chain
            elif func.attr in _WALL_DATETIME_FUNCS and chain is not None and (
                "datetime" in chain.split(".") or "date" in chain.split(".")
            ):
                flagged = chain
        elif isinstance(func, ast.Name) and func.id in from_time_imports:
            flagged = func.id
        if flagged is not None:
            yield ctx.finding(
                CODE,
                node,
                f"wall-clock read {flagged}() outside the bench timing "
                "allowlist makes results time-dependent",
            )


def _iter_id_ordering(ctx: FileContext) -> Iterator[Finding]:
    msg = "ordering via id() is address-dependent and differs across processes"
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.keyword) and node.arg == "key":
            if isinstance(node.value, ast.Name) and node.value.id == "id":
                yield ctx.finding(CODE, node.value, msg)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and (
            node.func.id == "id"
        ):
            for anc in ctx.ancestors(node):
                if isinstance(anc, ast.Compare) and any(
                    isinstance(op, _ORDER_CMP) for op in anc.ops
                ):
                    yield ctx.finding(CODE, node, msg)
                    break
                if isinstance(anc, ast.Lambda):
                    kw = ctx.parent(anc)
                    if isinstance(kw, ast.keyword) and kw.arg == "key":
                        yield ctx.finding(CODE, node, msg)
                        break
                if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break


@register_rule(
    CODE,
    "determinism-hazards",
    "unsorted set iteration / bare random.* / wall-clock reads / id() ordering",
)
def check_determinism(ctx: FileContext) -> List[Finding]:
    out: List[Finding] = []
    if _in_scope(ctx.module, SET_SCOPE_PREFIXES):
        out.extend(_iter_set_iteration(ctx, _SetTypes(ctx)))
    out.extend(_iter_random_calls(ctx))
    out.extend(_iter_wall_clock(ctx))
    out.extend(_iter_id_ordering(ctx))
    return out
