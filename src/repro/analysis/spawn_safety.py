"""RPR004 — spawn safety of the multiprocess grid.

``run_grid`` fans ``_SeedTask``s out to ``spawn`` workers, so everything a
task references must be importable and picklable in a fresh interpreter:
grid factories must be module-level functions registered under a stable
name, and the specs (``PolicySpec``/``WorkloadSpec``/``GridSpec``) must
not smuggle lambdas, closures, or local classes across the process
boundary (``WorkloadItem``s never cross it — workers rebuild them from
specs — so closures *inside* factory bodies are fine and are not
flagged).

Flagged:

* ``@register_grid_factory(...)`` on a def that is not at module level;
* assignment into ``GRID_FACTORIES`` anywhere but module level, or of a
  lambda;
* a ``lambda`` anywhere inside a ``PolicySpec``/``WorkloadSpec``/
  ``GridSpec``/``_SeedTask`` construction;
* passing a locally-defined function or class by name into one of those
  constructions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from .core import Finding, register_rule
from .engine import FileContext

CODE = "RPR004"

_REGISTRY_DECORATOR = "register_grid_factory"
_REGISTRY_NAME = "GRID_FACTORIES"
_SPEC_NAMES = {"PolicySpec", "WorkloadSpec", "GridSpec", "_SeedTask"}


def _decorator_name(dec: ast.AST) -> Optional[str]:
    if isinstance(dec, ast.Call):
        dec = dec.func
    if isinstance(dec, ast.Name):
        return dec.id
    if isinstance(dec, ast.Attribute):
        return dec.attr
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _local_defs(fn: ast.AST) -> Set[str]:
    """Names of functions/classes defined directly inside ``fn``'s body
    (one level is enough: passing them into a spec is the bug)."""
    out: Set[str] = set()
    for stmt in ast.walk(fn):
        if stmt is fn:
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(stmt.name)
    return out


def _check_registrations(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in node.decorator_list:
                if _decorator_name(dec) == _REGISTRY_DECORATOR and not isinstance(
                    ctx.parent(node), ast.Module
                ):
                    yield ctx.finding(
                        CODE,
                        node,
                        f"grid factory '{node.name}' is registered below module "
                        "level; spawn workers cannot import it",
                    )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == _REGISTRY_NAME
                ):
                    if isinstance(node.value, ast.Lambda):
                        yield ctx.finding(
                            CODE,
                            node.value,
                            f"lambda assigned into {_REGISTRY_NAME}; lambdas "
                            "do not pickle across spawn",
                        )
                    elif not isinstance(ctx.parent(node), ast.Module):
                        yield ctx.finding(
                            CODE,
                            node,
                            f"{_REGISTRY_NAME} mutated below module level; "
                            "spawn workers will not see the entry",
                        )


def _check_spec_calls(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and _call_name(node) in _SPEC_NAMES):
            continue
        spec = _call_name(node)
        enclosing_fn = ctx.enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)
        locals_here = _local_defs(enclosing_fn) if enclosing_fn is not None else set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Lambda):
                yield ctx.finding(
                    CODE,
                    sub,
                    f"lambda inside a {spec} construction; grid specs must "
                    "be picklable for spawn workers",
                )
            elif (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id in locals_here
            ):
                yield ctx.finding(
                    CODE,
                    sub,
                    f"locally-defined '{sub.id}' inside a {spec} construction; "
                    "spawn workers cannot unpickle non-module-level objects",
                )


@register_rule(
    CODE,
    "spawn-safety",
    "grid factories and specs must be module-level and picklable",
)
def check_spawn_safety(ctx: FileContext) -> List[Finding]:
    out = list(_check_registrations(ctx))
    out.extend(_check_spec_calls(ctx))
    return out
